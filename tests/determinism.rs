//! Seed-determinism guarantees: the entire pipeline — workload generation,
//! network simulation, engine evaluation — is a pure function of the
//! scenario seed. Two runs from the same seed must agree byte-for-byte on
//! the generated workload and exactly on the engine's observable results.

use rjoin::prelude::*;

fn test_scenario() -> Scenario {
    Scenario {
        nodes: 32,
        queries: 120,
        tuples: 80,
        joins: 2,
        relations: 6,
        attributes: 4,
        domain: 12,
        seed: 0xD5EE_D001,
        ..Scenario::small_test()
    }
}

/// Generated workloads are byte-identical across runs: the serialized JSON
/// of the full query and tuple lists matches exactly.
#[test]
fn same_seed_produces_byte_identical_workloads() {
    let scenario = test_scenario();

    let queries_a = serde_json::to_string(&scenario.generate_queries()).unwrap();
    let queries_b = serde_json::to_string(&scenario.generate_queries()).unwrap();
    assert_eq!(queries_a, queries_b, "query workload must be byte-identical");

    let tuples_a = serde_json::to_string(&scenario.generate_tuples(1)).unwrap();
    let tuples_b = serde_json::to_string(&scenario.generate_tuples(1)).unwrap();
    assert_eq!(tuples_a, tuples_b, "tuple workload must be byte-identical");

    // A fresh Scenario value with the same fields agrees too (nothing is
    // keyed off interior mutability or global state).
    let again = test_scenario();
    assert_eq!(queries_a, serde_json::to_string(&again.generate_queries()).unwrap());
    assert_eq!(tuples_a, serde_json::to_string(&again.generate_tuples(1)).unwrap());
}

/// The raw generators (not just the Scenario wrapper) are seed-deterministic
/// byte-for-byte.
#[test]
fn tuple_generator_is_byte_identical_across_runs() {
    let schema = WorkloadSchema::paper_default();
    let batch_a = TupleGenerator::new(schema.clone(), 0.9, 42).generate_batch(200, 1);
    let batch_b = TupleGenerator::new(schema, 0.9, 42).generate_batch(200, 1);
    assert_eq!(batch_a, batch_b);
    assert_eq!(serde_json::to_string(&batch_a).unwrap(), serde_json::to_string(&batch_b).unwrap());
}

fn run_engine_with(scenario: &Scenario, parallel: bool) -> (u64, u64, u64, Vec<Vec<Value>>) {
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog, scenario.nodes);
    let nodes = engine.node_ids().to_vec();
    let drain = |engine: &mut RJoinEngine| {
        if parallel {
            engine.run_until_quiescent_parallel().unwrap();
        } else {
            engine.run_until_quiescent().unwrap();
        }
    };
    let mut qids = Vec::new();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        qids.push(engine.submit_query(nodes[i % nodes.len()], q).unwrap());
    }
    drain(&mut engine);
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(nodes[i % nodes.len()], t).unwrap();
    }
    drain(&mut engine);

    let stats = engine.stats();
    let mut all_rows: Vec<Vec<Value>> =
        qids.iter().flat_map(|qid| engine.answers().rows_for(*qid)).collect();
    all_rows.sort();
    (stats.answers, stats.qpl_total, stats.traffic_total, all_rows)
}

fn run_engine(scenario: &Scenario) -> (u64, u64, u64, Vec<Vec<Value>>) {
    run_engine_with(scenario, false)
}

/// Two engine runs over the same scenario agree on answer counts, load and
/// traffic totals, and on the full multiset of delivered rows.
#[test]
fn same_seed_produces_identical_engine_results() {
    let scenario = test_scenario();
    let (answers_a, qpl_a, traffic_a, rows_a) = run_engine(&scenario);
    let (answers_b, qpl_b, traffic_b, rows_b) = run_engine(&scenario);

    assert!(answers_a > 0, "the determinism scenario should produce answers");
    assert_eq!(answers_a, answers_b, "answer counts must match across runs");
    assert_eq!(qpl_a, qpl_b, "query processing load must match across runs");
    assert_eq!(traffic_a, traffic_b, "traffic totals must match across runs");
    assert_eq!(rows_a, rows_b, "delivered rows must match across runs");
}

/// The tick-parallel engine driver is byte-identical to the sequential one:
/// every observable — answer count, loads, traffic, and the serialized JSON
/// of the full delivered-row multiset — matches exactly. Node-local handler
/// work is fanned out across threads, but all global effects are applied in
/// deterministic `(at, seq)` order, so parallelism must be invisible.
#[test]
fn parallel_mode_is_byte_identical_to_sequential_mode() {
    let scenario = test_scenario();
    let sequential = run_engine_with(&scenario, false);
    let parallel = run_engine_with(&scenario, true);

    assert!(sequential.0 > 0, "the determinism scenario should produce answers");
    assert_eq!(sequential.0, parallel.0, "answer counts must match across modes");
    assert_eq!(sequential.1, parallel.1, "query processing load must match across modes");
    assert_eq!(sequential.2, parallel.2, "traffic totals must match across modes");
    assert_eq!(
        serde_json::to_string(&sequential.3).unwrap(),
        serde_json::to_string(&parallel.3).unwrap(),
        "delivered rows must be byte-identical across modes"
    );
}

/// One engine run with a caller-chosen driver: `shards == 0` uses the
/// sequential driver, any other count drains through
/// `run_until_quiescent_parallel` with that shard count. Returns every
/// observable the suite compares: answer count, loads, traffic, the sorted
/// per-node load/traffic vectors and the sorted delivered-row multiset.
fn run_observables(
    scenario: &Scenario,
    config: EngineConfig,
    shards: usize,
) -> (u64, u64, u64, Vec<u64>, Vec<u64>, String) {
    let catalog = scenario.workload_schema().build_catalog();
    let config = if shards == 0 { config } else { config.with_shards(shards) };
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let nodes = engine.node_ids().to_vec();
    let drain = |engine: &mut RJoinEngine| {
        if shards == 0 {
            engine.run_until_quiescent().unwrap();
        } else {
            engine.run_until_quiescent_parallel().unwrap();
        }
    };
    let mut qids = Vec::new();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        qids.push(engine.submit_query(nodes[i % nodes.len()], q).unwrap());
    }
    drain(&mut engine);
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(nodes[i % nodes.len()], t).unwrap();
    }
    drain(&mut engine);

    let stats = engine.stats();
    let mut qpl_per_node: Vec<u64> = nodes.iter().map(|id| engine.qpl_per_node().get(id)).collect();
    qpl_per_node.sort_unstable();
    let mut traffic_per_node: Vec<u64> =
        nodes.iter().map(|id| engine.traffic().sent_by(*id)).collect();
    traffic_per_node.sort_unstable();
    let mut all_rows: Vec<Vec<Value>> =
        qids.iter().flat_map(|qid| engine.answers().rows_for(*qid)).collect();
    all_rows.sort();
    (
        stats.answers,
        stats.qpl_total,
        stats.traffic_total,
        qpl_per_node,
        traffic_per_node,
        serde_json::to_string(&all_rows).unwrap(),
    )
}

/// The sharded event-queue runtime is **byte-identical across shard counts
/// {1, 2, 4, 8}** — answers, QPL (total and per node), traffic (total and
/// per node) and the delivered-row multiset all match exactly, with shard
/// count 1 being the plain sequential driver.
///
/// The config pins down the two legitimate sources of divergence so the
/// identity is exact: `FirstInClause` placement consumes no randomness
/// (the sharded driver derives placement RNG per decision instead of from
/// the sequential global stream), and the ALTT makes same-tick
/// query/attribute-tuple arrivals order-symmetric (without it, an
/// attribute-level tuple is discarded by its handler, so whether a query
/// arriving in the *same tick* sees it depends on intra-tick order — the
/// exact completeness hole under delays that Section 4 introduces the ALTT
/// to close).
#[test]
fn sharded_driver_is_byte_identical_across_shard_counts() {
    let scenario = test_scenario();
    let config = || EngineConfig::with_placement(PlacementStrategy::FirstInClause).with_altt(100);
    let reference = run_observables(&scenario, config(), 0);
    assert!(reference.0 > 0, "the determinism scenario should produce answers");
    for shards in [1usize, 2, 4, 8] {
        let sharded = run_observables(&scenario, config(), shards);
        assert_eq!(
            reference, sharded,
            "shard count {shards} must be byte-identical to the sequential driver"
        );
    }
}

/// Under the default configuration (RIC-aware placement), sharded runs are
/// deterministic and **identical for every shard count > 1**, and their
/// answer multiset matches the sequential driver's (the RNG-stream and
/// RIC-pruning differences shift placement choices, i.e. traffic, but never
/// answers).
#[test]
fn sharded_default_config_agrees_across_shard_counts() {
    let scenario = test_scenario();
    let reference = run_observables(&scenario, EngineConfig::default(), 2);
    assert!(reference.0 > 0, "the determinism scenario should produce answers");
    for shards in [2usize, 4, 8] {
        let run_a = run_observables(&scenario, EngineConfig::default(), shards);
        let run_b = run_observables(&scenario, EngineConfig::default(), shards);
        assert_eq!(run_a, run_b, "repeated sharded runs at {shards} shards must be identical");
        assert_eq!(run_a, reference, "shard counts 2 and {shards} must agree exactly");
    }
    let sequential = run_observables(&scenario, EngineConfig::default(), 0);
    assert_eq!(
        sequential.5, reference.5,
        "sharded and sequential drivers must deliver the same answer multiset"
    );
}

/// `with_shards(1)` routes through the single-queue driver and stays
/// byte-identical to the plain sequential drain under the default config.
#[test]
fn with_shards_one_is_the_sequential_driver() {
    let scenario = test_scenario();
    let sequential = run_observables(&scenario, EngineConfig::default(), 0);
    let one_shard = run_observables(&scenario, EngineConfig::default(), 1);
    assert_eq!(sequential, one_shard);
}

/// The worker count is purely an execution choice: a 4-shard drain produces
/// byte-identical observables whether it runs on the cooperative scheduler
/// (1 worker), the pooled phase-parallel scheduler (2 or 3 workers — fewer
/// workers than shards) or one persistent thread per shard (4 workers).
#[test]
fn worker_count_never_changes_sharded_results() {
    let scenario = test_scenario();
    let reference = run_observables(&scenario, EngineConfig::default().with_workers(1), 4);
    assert!(reference.0 > 0, "the determinism scenario should produce answers");
    for workers in [2usize, 3, 4, 16] {
        let run = run_observables(&scenario, EngineConfig::default().with_workers(workers), 4);
        assert_eq!(reference, run, "worker count {workers} must not change any observable");
    }
}

/// Different seeds produce observably different workloads (sanity check that
/// the seed is actually threaded through, not ignored).
#[test]
fn different_seeds_differ() {
    let a = test_scenario();
    let b = Scenario { seed: a.seed + 1, ..a.clone() };
    assert_ne!(
        serde_json::to_string(&a.generate_tuples(1)).unwrap(),
        serde_json::to_string(&b.generate_tuples(1)).unwrap(),
        "changing the seed must change the workload"
    );
}
