//! Seed-determinism guarantees: the entire pipeline — workload generation,
//! network simulation, engine evaluation — is a pure function of the
//! scenario seed. Two runs from the same seed must agree byte-for-byte on
//! the generated workload and exactly on the engine's observable results.

use rjoin::prelude::*;

fn test_scenario() -> Scenario {
    Scenario {
        nodes: 32,
        queries: 120,
        tuples: 80,
        joins: 2,
        relations: 6,
        attributes: 4,
        domain: 12,
        seed: 0xD5EE_D001,
        ..Scenario::small_test()
    }
}

/// Generated workloads are byte-identical across runs: the serialized JSON
/// of the full query and tuple lists matches exactly.
#[test]
fn same_seed_produces_byte_identical_workloads() {
    let scenario = test_scenario();

    let queries_a = serde_json::to_string(&scenario.generate_queries()).unwrap();
    let queries_b = serde_json::to_string(&scenario.generate_queries()).unwrap();
    assert_eq!(queries_a, queries_b, "query workload must be byte-identical");

    let tuples_a = serde_json::to_string(&scenario.generate_tuples(1)).unwrap();
    let tuples_b = serde_json::to_string(&scenario.generate_tuples(1)).unwrap();
    assert_eq!(tuples_a, tuples_b, "tuple workload must be byte-identical");

    // A fresh Scenario value with the same fields agrees too (nothing is
    // keyed off interior mutability or global state).
    let again = test_scenario();
    assert_eq!(queries_a, serde_json::to_string(&again.generate_queries()).unwrap());
    assert_eq!(tuples_a, serde_json::to_string(&again.generate_tuples(1)).unwrap());
}

/// The raw generators (not just the Scenario wrapper) are seed-deterministic
/// byte-for-byte.
#[test]
fn tuple_generator_is_byte_identical_across_runs() {
    let schema = WorkloadSchema::paper_default();
    let batch_a = TupleGenerator::new(schema.clone(), 0.9, 42).generate_batch(200, 1);
    let batch_b = TupleGenerator::new(schema, 0.9, 42).generate_batch(200, 1);
    assert_eq!(batch_a, batch_b);
    assert_eq!(
        serde_json::to_string(&batch_a).unwrap(),
        serde_json::to_string(&batch_b).unwrap()
    );
}

fn run_engine_with(scenario: &Scenario, parallel: bool) -> (u64, u64, u64, Vec<Vec<Value>>) {
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog, scenario.nodes);
    let nodes = engine.node_ids().to_vec();
    let drain = |engine: &mut RJoinEngine| {
        if parallel {
            engine.run_until_quiescent_parallel().unwrap();
        } else {
            engine.run_until_quiescent().unwrap();
        }
    };
    let mut qids = Vec::new();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        qids.push(engine.submit_query(nodes[i % nodes.len()], q).unwrap());
    }
    drain(&mut engine);
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(nodes[i % nodes.len()], t).unwrap();
    }
    drain(&mut engine);

    let stats = engine.stats();
    let mut all_rows: Vec<Vec<Value>> =
        qids.iter().flat_map(|qid| engine.answers().rows_for(*qid)).collect();
    all_rows.sort();
    (stats.answers, stats.qpl_total, stats.traffic_total, all_rows)
}

fn run_engine(scenario: &Scenario) -> (u64, u64, u64, Vec<Vec<Value>>) {
    run_engine_with(scenario, false)
}

/// Two engine runs over the same scenario agree on answer counts, load and
/// traffic totals, and on the full multiset of delivered rows.
#[test]
fn same_seed_produces_identical_engine_results() {
    let scenario = test_scenario();
    let (answers_a, qpl_a, traffic_a, rows_a) = run_engine(&scenario);
    let (answers_b, qpl_b, traffic_b, rows_b) = run_engine(&scenario);

    assert!(answers_a > 0, "the determinism scenario should produce answers");
    assert_eq!(answers_a, answers_b, "answer counts must match across runs");
    assert_eq!(qpl_a, qpl_b, "query processing load must match across runs");
    assert_eq!(traffic_a, traffic_b, "traffic totals must match across runs");
    assert_eq!(rows_a, rows_b, "delivered rows must match across runs");
}

/// The tick-parallel engine driver is byte-identical to the sequential one:
/// every observable — answer count, loads, traffic, and the serialized JSON
/// of the full delivered-row multiset — matches exactly. Node-local handler
/// work is fanned out across threads, but all global effects are applied in
/// deterministic `(at, seq)` order, so parallelism must be invisible.
#[test]
fn parallel_mode_is_byte_identical_to_sequential_mode() {
    let scenario = test_scenario();
    let sequential = run_engine_with(&scenario, false);
    let parallel = run_engine_with(&scenario, true);

    assert!(sequential.0 > 0, "the determinism scenario should produce answers");
    assert_eq!(sequential.0, parallel.0, "answer counts must match across modes");
    assert_eq!(sequential.1, parallel.1, "query processing load must match across modes");
    assert_eq!(sequential.2, parallel.2, "traffic totals must match across modes");
    assert_eq!(
        serde_json::to_string(&sequential.3).unwrap(),
        serde_json::to_string(&parallel.3).unwrap(),
        "delivered rows must be byte-identical across modes"
    );
}

/// Different seeds produce observably different workloads (sanity check that
/// the seed is actually threaded through, not ignored).
#[test]
fn different_seeds_differ() {
    let a = test_scenario();
    let b = Scenario { seed: a.seed + 1, ..a.clone() };
    assert_ne!(
        serde_json::to_string(&a.generate_tuples(1)).unwrap(),
        serde_json::to_string(&b.generate_tuples(1)).unwrap(),
        "changing the seed must change the workload"
    );
}
