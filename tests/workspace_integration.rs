//! Cross-crate integration tests exercised through the `rjoin` facade: the
//! full pipeline from SQL text to answers delivered over the simulated DHT.

use rjoin::dht::balance;
use rjoin::prelude::*;

fn small_engine(nodes: usize) -> (RJoinEngine, Vec<Id>) {
    let schema = WorkloadSchema::paper_default();
    let engine = RJoinEngine::new(EngineConfig::default(), schema.build_catalog(), nodes);
    let ids = engine.node_ids().to_vec();
    (engine, ids)
}

#[test]
fn figure_one_walkthrough_delivers_the_paper_answer() {
    let mut catalog = Catalog::new();
    for rel in ["R", "S", "J", "M"] {
        catalog.register(Schema::new(rel, ["A", "B", "C"]).unwrap()).unwrap();
    }
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog, 48);
    let node = engine.node_ids()[0];

    let q =
        parse_query("SELECT S.B, M.A FROM R, S, J, M WHERE R.A = S.A AND S.B = J.B AND J.C = M.C")
            .unwrap();
    let qid = engine.submit_query(node, q).unwrap();
    engine.run_until_quiescent().unwrap();

    for (rel, values) in [("R", [2, 5, 8]), ("S", [2, 6, 3]), ("M", [9, 1, 2]), ("J", [7, 6, 2])] {
        let t = Tuple::new(rel, values.iter().map(|v| Value::from(*v)).collect(), engine.now() + 1);
        engine.publish_tuple(node, t).unwrap();
        engine.run_until_quiescent().unwrap();
    }

    assert_eq!(engine.answers().rows_for(qid), vec![vec![Value::from(6), Value::from(9)]]);
}

#[test]
fn zipf_workload_produces_answers_and_spreads_load() {
    let scenario = Scenario { nodes: 48, queries: 300, tuples: 120, ..Scenario::small_test() };
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog, scenario.nodes);
    let nodes = engine.node_ids().to_vec();

    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        engine.submit_query(nodes[i % nodes.len()], q).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(nodes[i % nodes.len()], t).unwrap();
    }
    engine.run_until_quiescent().unwrap();

    let stats = engine.stats();
    assert!(stats.answers > 0, "a skewed workload of this size must produce answers");
    assert!(stats.traffic_total > 0);
    assert!(
        stats.qpl_participants > scenario.nodes / 2,
        "most nodes should take part in query processing (got {})",
        stats.qpl_participants
    );
    // The paper's metric relationships hold: every stored item was counted,
    // and the per-key breakdown is consistent with the per-node totals.
    assert_eq!(engine.qpl_by_key_id().values().sum::<u64>(), stats.qpl_total);
    assert_eq!(engine.sl_by_key_id().values().sum::<u64>(), stats.sl_total);
    assert!(stats.current_storage.total() <= stats.sl_total);
}

#[test]
fn placement_strategies_rank_as_in_figure_two() {
    let scenario = Scenario { nodes: 48, queries: 400, tuples: 100, ..Scenario::small_test() };
    let catalog = scenario.workload_schema().build_catalog();

    let run = |placement| {
        let mut engine = RJoinEngine::new(
            EngineConfig::with_placement(placement),
            catalog.clone(),
            scenario.nodes,
        );
        let nodes = engine.node_ids().to_vec();
        for (i, q) in scenario.generate_queries().into_iter().enumerate() {
            engine.submit_query(nodes[i % nodes.len()], q).unwrap();
        }
        engine.run_until_quiescent().unwrap();
        for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
            engine.publish_tuple(nodes[i % nodes.len()], t).unwrap();
        }
        engine.run_until_quiescent().unwrap();
        engine.stats()
    };

    let rjoin = run(PlacementStrategy::RicAware);
    let random = run(PlacementStrategy::Random);
    let worst = run(PlacementStrategy::Worst);

    // Figure 2 shape: the adversarial strategy triggers the most query
    // processing and storage work. (At this test's tiny scale the RIC-aware
    // and random strategies are close — all input queries are placed before
    // any rate information exists — so the robust orderings are against the
    // worst-case baseline; the full gap is visible at the benchmark scales,
    // see EXPERIMENTS.md.)
    assert!(rjoin.qpl_total <= worst.qpl_total, "{} vs {}", rjoin.qpl_total, worst.qpl_total);
    assert!(random.qpl_total <= worst.qpl_total, "{} vs {}", random.qpl_total, worst.qpl_total);
    assert!(rjoin.sl_total <= worst.sl_total);
    assert!(rjoin.qpl.max() <= worst.qpl.max());
}

#[test]
fn sliding_windows_bound_live_state() {
    let base = Scenario { nodes: 48, queries: 200, tuples: 150, ..Scenario::small_test() };
    let run = |window| {
        let scenario = Scenario { window, ..base.clone() };
        let catalog = scenario.workload_schema().build_catalog();
        let mut engine = RJoinEngine::new(EngineConfig::default(), catalog, scenario.nodes);
        let nodes = engine.node_ids().to_vec();
        for (i, q) in scenario.generate_queries().into_iter().enumerate() {
            engine.submit_query(nodes[i % nodes.len()], q).unwrap();
        }
        engine.run_until_quiescent().unwrap();
        for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
            engine.publish_tuple(nodes[i % nodes.len()], t).unwrap();
        }
        engine.run_until_quiescent().unwrap();
        engine.stats()
    };

    let unwindowed = run(WindowSpec::None);
    let windowed = run(WindowSpec::sliding_tuples(25));
    assert!(
        windowed.current_storage.total() < unwindowed.current_storage.total(),
        "a small window must garbage-collect rewritten-query state ({} vs {})",
        windowed.current_storage.total(),
        unwindowed.current_storage.total()
    );
    assert!(windowed.qpl_total <= unwindowed.qpl_total);
}

#[test]
fn identifier_movement_reduces_hotspots_on_engine_loads() {
    let (mut engine, nodes) = small_engine(64);
    let scenario = Scenario { nodes: 64, queries: 400, tuples: 100, ..Scenario::small_test() };
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        engine.submit_query(nodes[i % nodes.len()], q).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(nodes[i % nodes.len()], t).unwrap();
    }
    engine.run_until_quiescent().unwrap();

    let key_loads = engine.qpl_by_key_id();
    let mut ring: Network<()> = Network::new(NetworkConfig::default());
    ring.bootstrap(64, "rjoin-node");
    let before = balance::node_loads(ring.dht(), &key_loads).unwrap();
    let max_before = *before.values().max().unwrap();

    balance::rebalance(ring.dht_mut(), &key_loads, 16).unwrap();
    let after = balance::node_loads(ring.dht(), &key_loads).unwrap();
    let max_after = *after.values().max().unwrap();

    assert!(max_after <= max_before);
    assert_eq!(before.values().sum::<u64>(), after.values().sum::<u64>());
}

#[test]
fn distinct_queries_have_no_duplicate_rows_end_to_end() {
    let scenario = Scenario {
        nodes: 32,
        queries: 100,
        tuples: 120,
        joins: 1,
        domain: 4,
        distinct: true,
        ..Scenario::small_test()
    };
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog, scenario.nodes);
    let nodes = engine.node_ids().to_vec();
    let mut qids = Vec::new();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        qids.push(engine.submit_query(nodes[i % nodes.len()], q).unwrap());
    }
    engine.run_until_quiescent().unwrap();
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(nodes[i % nodes.len()], t).unwrap();
    }
    engine.run_until_quiescent().unwrap();

    assert!(!engine.answers().is_empty());
    for qid in qids {
        assert!(!engine.answers().has_duplicate_rows(qid), "duplicates delivered for {qid}");
    }
}
