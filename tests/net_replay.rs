//! The record/replay harness: the deterministic simulator as an oracle
//! for the TCP transport.
//!
//! Each test records a scenario on the simulated engine, replays the same
//! queries and tuples over a loopback-TCP cluster, and asserts per-query
//! answer-**set** equality (keyed by submission index — the two runs own
//! queries differently). The per-query comparison is written as CSV under
//! `target/net_smoke/` — the artifact the `net-smoke` CI job uploads.

use rjoin::prelude::*;
use rjoin::replay::{replay_over_tcp, ChurnEvent, ChurnOp, ReplaySpec};
use rjoin::transport::ClusterConfig as TransportClusterConfig;
use std::path::PathBuf;
use std::time::Duration;

/// The oracle suite's 4-way-join workload shape, shrunk to a node count a
/// single test process can host as TCP listeners.
fn net_scenario(queries: usize, tuples: usize) -> Scenario {
    Scenario {
        nodes: 6,
        queries,
        tuples,
        joins: 3,
        theta: 0.9,
        relations: 6,
        attributes: 4,
        domain: 8,
        ..Scenario::small_test()
    }
}

fn cluster_config() -> TransportClusterConfig {
    TransportClusterConfig {
        settle_timeout: Duration::from_secs(120),
        ..TransportClusterConfig::default()
    }
}

fn csv_path(name: &str) -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    PathBuf::from(target).join("net_smoke").join(format!("{name}.csv"))
}

/// Simulated and TCP runs of the oracle's 4-way-join scenario must deliver
/// identical per-query answer sets.
#[test]
fn tcp_replay_matches_the_simulated_oracle_four_way() {
    let spec = ReplaySpec {
        scenario: net_scenario(12, 48),
        config: EngineConfig::default().with_value_level_only(true),
        churn: Vec::new(),
        cluster: cluster_config(),
    };
    let report = replay_over_tcp(&spec).expect("replay");
    report.write_csv(&csv_path("four_way")).expect("csv artifact");
    assert!(
        report.all_equal(),
        "answer sets diverge: sim={} tcp={} ({:?})",
        report.total_sim_rows(),
        report.total_tcp_rows(),
        report.outcomes.iter().filter(|o| !o.equal).collect::<Vec<_>>(),
    );
    assert!(report.total_sim_rows() > 0, "the workload should produce at least one answer");
}

/// The same equality must survive graceful churn on both sides: a join and
/// a leave interleaved with the tuple stream re-home live state without
/// losing or duplicating a single answer.
#[test]
fn tcp_replay_matches_the_simulated_oracle_under_graceful_churn() {
    let spec = ReplaySpec {
        scenario: net_scenario(15, 40),
        config: EngineConfig::default().with_value_level_only(true),
        churn: vec![
            ChurnEvent { after_tuple: 13, op: ChurnOp::Join },
            ChurnEvent { after_tuple: 27, op: ChurnOp::Leave },
        ],
        cluster: cluster_config(),
    };
    let report = replay_over_tcp(&spec).expect("replay");
    report.write_csv(&csv_path("churn")).expect("csv artifact");
    assert!(
        report.all_equal(),
        "answer sets diverge under churn: sim={} tcp={} ({:?})",
        report.total_sim_rows(),
        report.total_tcp_rows(),
        report.outcomes.iter().filter(|o| !o.equal).collect::<Vec<_>>(),
    );
    assert!(report.total_sim_rows() > 0, "the workload should produce at least one answer");
    assert!(report.moved > 0, "the graceful leave should re-home live state");
}
