//! # RJoin — Continuous Multi-Way Joins over Distributed Hash Tables
//!
//! A from-scratch Rust reproduction of *"Continuous Multi-Way Joins over
//! Distributed Hash Tables"* (Idreos, Liarou, Koubarakis — EDBT 2008),
//! including every substrate the paper depends on:
//!
//! * [`dht`] — a Chord simulation (identifier ring, finger tables, lookups,
//!   churn, identifier-movement load balancing),
//! * [`net`] — the discrete-event network with the `send` / `multiSend` /
//!   `sendDirect` API and per-node traffic accounting,
//! * [`relation`] — the relational data model (schemas, tuples, catalog),
//! * [`query`] — the continuous-query model: SQL parser, rewriting engine,
//!   index-key derivation, sliding windows,
//! * [`core`] — the RJoin algorithm itself (Procedures 1–3, RIC-aware
//!   placement, candidate-table caching, ALTT, duplicate elimination),
//! * [`transport`] — the algorithm off the simulator: node processes over
//!   `std::net` TCP, a service-facing [`Cluster`](prelude::Cluster) handle,
//!   graceful join/leave with state re-homing,
//! * [`workload`] — the paper's Zipf workload generators,
//! * [`metrics`] — distributions, cumulative series and report tables.
//!
//! This facade crate re-exports everything; the most common entry points are
//! available directly from the [`prelude`].
//!
//! ```
//! use rjoin::prelude::*;
//!
//! // Build the paper's default 10x10x100 schema and a small network.
//! let schema = WorkloadSchema::paper_default();
//! let mut engine = RJoinEngine::new(EngineConfig::default(), schema.build_catalog(), 32);
//! let node = engine.node_ids()[0];
//!
//! // Register a continuous 3-way join and stream a few tuples through it.
//! let q = parse_query("SELECT R0.A1, R2.A1 FROM R0, R1, R2 \
//!                      WHERE R0.A0 = R1.A0 AND R1.A1 = R2.A2").unwrap();
//! let qid = engine.submit_query(node, q).unwrap();
//!
//! let mut tuples = TupleGenerator::new(schema, 0.9, 42);
//! for t in tuples.generate_batch(200, 1) {
//!     engine.publish_tuple(node, t).unwrap();
//! }
//! engine.run_until_quiescent().unwrap();
//! println!("answers so far: {}", engine.answers().count_for(qid));
//! ```
//!
//! ## Networked mode
//!
//! The same algorithm runs over loopback (or real) TCP: a [`Cluster`]
//! launches one node process per ring member, queries and tuples are
//! dispatched through the identical pipeline code, and
//! [`Cluster::settle`] is the networked analogue of
//! `run_until_quiescent` — a conservation barrier over counted messages.
//! The deterministic simulator doubles as the oracle: [`replay`] records
//! a scenario on the simulated engine and asserts per-query answer-set
//! equality after replaying it over TCP.
//!
//! [`Cluster`]: prelude::Cluster
//! [`Cluster::settle`]: prelude::Cluster::settle
//!
//! ```no_run
//! use rjoin::prelude::*;
//!
//! let schema = WorkloadSchema::paper_default();
//! let mut cluster = Cluster::launch(
//!     EngineConfig::default(),
//!     schema.build_catalog(),
//!     4,                        // four node processes on loopback TCP
//!     ClusterConfig::default(),
//! )?;
//!
//! let q = parse_query("SELECT R0.A1, R2.A1 FROM R0, R1, R2 \
//!                      WHERE R0.A0 = R1.A0 AND R1.A1 = R2.A2")?;
//! let qid = cluster.submit_query(q)?;
//!
//! let mut tuples = TupleGenerator::new(schema, 0.9, 42);
//! for t in tuples.generate_batch(200, 1) {
//!     cluster.publish_tuple(t)?;
//! }
//! cluster.settle()?;            // wait for the network to go quiescent
//! println!("answers: {}", cluster.rows_for(qid).len());
//!
//! let newcomer = cluster.join_node()?;      // graceful join + re-homing
//! let moved = cluster.leave_node(newcomer)?; // graceful leave, no answer loss
//! println!("re-homed {moved} items");
//! cluster.shutdown();
//! # Ok::<(), rjoin::Error>(())
//! ```

mod error;
pub mod replay;

pub use error::Error;

pub use rjoin_core as core;
pub use rjoin_dht as dht;
pub use rjoin_metrics as metrics;
pub use rjoin_net as net;
pub use rjoin_query as query;
pub use rjoin_relation as relation;
pub use rjoin_transport as transport;
pub use rjoin_workload as workload;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::Error;
    pub use rjoin_core::{
        AnswerLog, EngineConfig, ExperimentStats, NodeId, PlacementStrategy, QueryId, RJoinEngine,
    };
    pub use rjoin_dht::{ChordNetwork, HashedKey, Id};
    pub use rjoin_metrics::{CumulativeSeries, Distribution, Table};
    pub use rjoin_net::{Network, NetworkConfig};
    pub use rjoin_query::{parse_query, JoinQuery, WindowSpec};
    pub use rjoin_relation::{Catalog, Schema, Tuple, Value};
    pub use rjoin_transport::{Cluster, ClusterConfig, NodeProcess, TransportError};
    pub use rjoin_workload::{
        QueryGenerator, Scenario, TupleGenerator, WorkloadSchema, ZipfSampler,
    };
}
