//! The facade's unified error type.

use rjoin_core::EngineError;
use rjoin_query::QueryError;
use rjoin_transport::TransportError;
use std::fmt;

/// Any error an RJoin deployment can raise: algorithm/validation errors
/// from the engine and connection-level errors from the TCP transport,
/// unified so service code holds one error type regardless of which
/// transport backs it.
///
/// `#[non_exhaustive]`: future transports add variants without a breaking
/// release.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An engine error: validation, planning, routing
    /// ([`QueryError`] and `DhtError` chain through here as sources).
    Engine(EngineError),
    /// A transport error: connection, framing, timeout.
    Transport(TransportError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Engine(e) => write!(f, "engine error: {e}"),
            Error::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Engine(e) => Some(e),
            Error::Transport(e) => Some(e),
        }
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<TransportError> for Error {
    fn from(e: TransportError) -> Self {
        Error::Transport(e)
    }
}

impl From<QueryError> for Error {
    fn from(e: QueryError) -> Self {
        Error::Engine(EngineError::Query(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn sources_chain_through_both_arms() {
        let e: Error = QueryError::EmptyFrom.into();
        let engine = e.source().expect("engine layer");
        assert!(engine.source().is_some(), "QueryError chains below EngineError");

        let e: Error = TransportError::Timeout { what: "settle".into() }.into();
        assert!(e.to_string().contains("transport"));
    }
}
