//! Record/replay: the deterministic simulator as an oracle for the TCP
//! transport.
//!
//! A [`ReplaySpec`] names a workload ([`Scenario`]), an engine
//! configuration, and an optional churn plan. [`replay_over_tcp`] runs the
//! workload twice:
//!
//! 1. **Record** — on the simulated engine ([`RJoinEngine::simulated`]),
//!    capturing the generated queries, tuples and per-query answers.
//! 2. **Replay** — on a loopback-TCP [`Cluster`], submitting the *same*
//!    queries and tuples (and applying the same churn plan) through the
//!    networked pipeline.
//!
//! The report compares per-query answer **sets**, keyed by submission
//! index: the two runs own queries differently (simulated queries are
//! owned by ring nodes, networked ones by the client endpoint) and
//! interleave deliveries differently, but Theorems 1 and 2 of the paper
//! promise the same answers — so set equality per query is exactly the
//! invariant a correct transport must preserve. Churn (graceful join and
//! leave with state re-homing) must not lose a single answer on either
//! side.

use crate::error::Error;
use rjoin_core::{EngineConfig, RJoinEngine};
use rjoin_dht::Id;
use rjoin_relation::Value;
use rjoin_transport::{Cluster, ClusterConfig};
use rjoin_workload::Scenario;
use std::io::{self, Write};
use std::path::Path;

/// A membership change applied between two tuple publications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// A node joins; buckets it now owns are re-homed to it.
    Join,
    /// A non-origin node leaves gracefully, draining all of its state.
    Leave,
}

/// One churn event: `op` is applied right before tuple `after_tuple` is
/// published.
#[derive(Debug, Clone, Copy)]
pub struct ChurnEvent {
    /// Index (into the scenario's tuple list) before which the change runs.
    pub after_tuple: usize,
    /// The membership change.
    pub op: ChurnOp,
}

/// What to replay: workload, configuration, churn plan, and the TCP
/// deployment parameters.
#[derive(Debug, Clone)]
pub struct ReplaySpec {
    /// The recorded workload.
    pub scenario: Scenario,
    /// Engine configuration, shared by both runs.
    pub config: EngineConfig,
    /// Membership changes applied (identically placed) in both runs.
    pub churn: Vec<ChurnEvent>,
    /// TCP deployment parameters of the replay side.
    pub cluster: ClusterConfig,
}

/// Per-query comparison of the two runs.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Submission index of the query.
    pub index: usize,
    /// Distinct rows the simulated run delivered.
    pub sim_rows: usize,
    /// Distinct rows the TCP run delivered.
    pub tcp_rows: usize,
    /// Whether the two answer sets are equal.
    pub equal: bool,
}

/// The result of one record/replay comparison.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// One outcome per submitted query, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Items re-homed by graceful leaves on the TCP side.
    pub moved: u64,
}

impl ReplayReport {
    /// Whether every query's answer set matched.
    pub fn all_equal(&self) -> bool {
        self.outcomes.iter().all(|o| o.equal)
    }

    /// Total distinct rows the simulated run delivered.
    pub fn total_sim_rows(&self) -> usize {
        self.outcomes.iter().map(|o| o.sim_rows).sum()
    }

    /// Total distinct rows the TCP run delivered.
    pub fn total_tcp_rows(&self) -> usize {
        self.outcomes.iter().map(|o| o.tcp_rows).sum()
    }

    /// Writes the per-query comparison as CSV (the `net-smoke` CI
    /// artifact).
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "query_index,sim_rows,tcp_rows,equal")?;
        for o in &self.outcomes {
            writeln!(f, "{},{},{},{}", o.index, o.sim_rows, o.tcp_rows, o.equal)?;
        }
        Ok(())
    }
}

/// Sorted, deduplicated row set — the unit of comparison.
fn row_set(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows.dedup();
    rows
}

/// A deterministic leaver pick: the highest-identifier live node that is
/// not `protect` (the simulated side protects the query-owning origin; the
/// networked side owns queries at the client, so nothing needs
/// protection there and `protect` simply never matches).
fn pick_leaver(ids: &[Id], protect: Id) -> Option<Id> {
    ids.iter().rev().copied().find(|id| *id != protect)
}

/// Records the scenario on the simulated engine, replays it over loopback
/// TCP, and compares per-query answer sets.
pub fn replay_over_tcp(spec: &ReplaySpec) -> Result<ReplayReport, Error> {
    let scenario = &spec.scenario;
    let catalog = scenario.workload_schema().build_catalog();
    let queries = scenario.generate_queries();

    // ---- Record: the simulated oracle run -------------------------------
    let mut engine = RJoinEngine::simulated(spec.config.clone(), catalog.clone(), scenario.nodes);
    // One origin owns every query: churn must never remove a query owner
    // (answers are delivered to it), and one protected node is easier to
    // reason about than many.
    let origin = engine.node_ids()[0];
    let mut sim_qids = Vec::with_capacity(queries.len());
    for q in &queries {
        sim_qids.push(engine.submit_query(origin, q.clone())?);
    }
    engine.run_until_quiescent()?;

    let tuples = scenario.generate_tuples(engine.now() + 1);
    let mut joins = 0usize;
    for (i, t) in tuples.iter().enumerate() {
        for event in spec.churn.iter().filter(|e| e.after_tuple == i) {
            engine.run_until_quiescent()?;
            match event.op {
                ChurnOp::Join => {
                    engine.join_node(&format!("replay-churn-{joins}"))?;
                    joins += 1;
                }
                ChurnOp::Leave => {
                    if let Some(leaver) = pick_leaver(engine.node_ids(), origin) {
                        engine.leave_node(leaver)?;
                    }
                }
            }
        }
        engine.publish_tuple(origin, t.clone())?;
    }
    engine.run_until_quiescent()?;

    // ---- Replay: the same workload over loopback TCP --------------------
    let mut cluster =
        Cluster::launch(spec.config.clone(), catalog, scenario.nodes, spec.cluster.clone())?;
    for q in &queries {
        cluster.submit_query(q.clone())?;
    }
    cluster.settle()?;

    let mut moved = 0u64;
    for (i, t) in tuples.iter().enumerate() {
        for event in spec.churn.iter().filter(|e| e.after_tuple == i) {
            match event.op {
                ChurnOp::Join => {
                    cluster.join_node()?;
                }
                ChurnOp::Leave => {
                    let ids: Vec<Id> = cluster.node_ids().iter().map(|n| n.id()).collect();
                    if let Some(leaver) = pick_leaver(&ids, cluster.client_id()) {
                        moved += cluster.leave_node(leaver)?;
                    }
                }
            }
        }
        cluster.publish_tuple(t.clone())?;
    }
    cluster.settle()?;

    // ---- Compare per-query answer sets by submission index --------------
    let tcp_qids = cluster.query_ids().to_vec();
    let mut outcomes = Vec::with_capacity(sim_qids.len());
    for (index, (sim_qid, tcp_qid)) in sim_qids.iter().zip(&tcp_qids).enumerate() {
        let sim = row_set(engine.answers().rows_for(*sim_qid));
        let tcp = row_set(cluster.rows_for(*tcp_qid));
        outcomes.push(QueryOutcome {
            index,
            sim_rows: sim.len(),
            tcp_rows: tcp.len(),
            equal: sim == tcp,
        });
    }
    cluster.shutdown();
    Ok(ReplayReport { outcomes, moved })
}
