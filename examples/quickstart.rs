//! Quickstart: the running example of the paper (Figure 1), executed on a
//! simulated Chord network.
//!
//! A node submits the continuous 4-way join
//!
//! ```sql
//! SELECT S.B, M.A FROM R, S, J, M
//! WHERE R.A = S.A AND S.B = J.B AND J.C = M.C
//! ```
//!
//! and four tuples arrive over time. RJoin rewrites and re-indexes the query
//! step by step; when the last piece falls into place the answer
//! `(S.B = 6, M.A = 9)` is delivered to the querying node.
//!
//! Run with: `cargo run --example quickstart`

use rjoin::prelude::*;

fn main() {
    // Schema of the four relations used in the example.
    let mut catalog = Catalog::new();
    for rel in ["R", "S", "J", "M"] {
        catalog
            .register(Schema::new(rel, ["A", "B", "C"]).expect("valid schema"))
            .expect("unique relation names");
    }

    // A 64-node Chord network running RJoin with its default configuration
    // (RIC-aware placement, RIC reuse enabled).
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog, 64);
    let querying_node = engine.node_ids()[0];
    let publisher = engine.node_ids()[1];

    // Event 1: node x submits the continuous query.
    let query =
        parse_query("SELECT S.B, M.A FROM R, S, J, M WHERE R.A = S.A AND S.B = J.B AND J.C = M.C")
            .expect("well-formed SQL");
    let query_id = engine.submit_query(querying_node, query).expect("query accepted");
    engine.run_until_quiescent().expect("indexing succeeds");
    println!("submitted continuous query {query_id}");

    // Events 2-5: tuples arrive one by one (same values as Figure 1).
    let events: [(&str, [i64; 3]); 4] =
        [("R", [2, 5, 8]), ("S", [2, 6, 3]), ("M", [9, 1, 2]), ("J", [7, 6, 2])];
    for (i, (relation, values)) in events.iter().enumerate() {
        let pub_time = engine.now() + 1;
        let tuple =
            Tuple::new(*relation, values.iter().map(|v| Value::from(*v)).collect(), pub_time);
        println!("event {}: publishing {tuple}", i + 2);
        engine.publish_tuple(publisher, tuple).expect("tuple accepted");
        engine.run_until_quiescent().expect("processing succeeds");
        println!("         answers delivered so far: {}", engine.answers().count_for(query_id));
    }

    // The answer of Figure 1: S.B = 6, M.A = 9.
    let answers = engine.answers().rows_for(query_id);
    println!("\nfinal answers for {query_id}:");
    for row in &answers {
        println!("  {row:?}");
    }
    assert_eq!(answers, vec![vec![Value::from(6), Value::from(9)]]);

    let stats = engine.stats();
    println!("\nrun statistics: {}", stats.summary());
}
