//! Identifier-movement load balancing under RJoin (the Figure 9 experiment
//! in miniature).
//!
//! RJoin only uses the standard DHT `lookup` API, so any low-level DHT
//! optimisation can be plugged underneath it. This example runs a skewed
//! workload, measures the per-key query-processing load, and then applies
//! the Karger–Ruhl identifier-movement technique to show how the maximum
//! per-node load drops and how many more nodes end up sharing the work.
//!
//! Run with: `cargo run --release --example load_balancing`

use rjoin::dht::balance;
use rjoin::prelude::*;

fn main() {
    // A deliberately skewed workload: Zipf θ = 0.9 over relations and values.
    let scenario = Scenario {
        nodes: 96,
        queries: 800,
        tuples: 150,
        joins: 3,
        theta: 0.9,
        ..Scenario::small_test()
    };
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog, scenario.nodes);
    let nodes = engine.node_ids().to_vec();

    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        engine.submit_query(nodes[i % nodes.len()], q).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(nodes[i % nodes.len()], t).unwrap();
    }
    engine.run_until_quiescent().unwrap();

    // Per-key load observed during the run, keyed by ring identifier.
    let key_loads = engine.qpl_by_key_id();
    println!(
        "observed {} distinct index keys, total query processing load {}",
        key_loads.len(),
        engine.total_qpl()
    );

    // Rebuild the same ring and compare the load distribution with and
    // without identifier movement.
    let mut reference: Network<()> = Network::new(NetworkConfig::default());
    reference.bootstrap(scenario.nodes, "rjoin-node");

    let without = balance::node_loads(reference.dht(), &key_loads).unwrap();
    let without = Distribution::from_values(without.values().copied());

    let mut balanced = reference;
    let movements = balance::rebalance(balanced.dht_mut(), &key_loads, scenario.nodes / 4).unwrap();
    let with = balance::node_loads(balanced.dht(), &key_loads).unwrap();
    let with = Distribution::from_values(with.values().copied());

    let mut table = Table::new(
        "Identifier movement: query processing load",
        ["metric", "without", "with id movement"],
    );
    table.push_row(["max load", &without.max().to_string(), &with.max().to_string()]);
    table.push_row([
        "99th percentile",
        &without.percentile(99.0).to_string(),
        &with.percentile(99.0).to_string(),
    ]);
    table.push_row([
        "participating nodes",
        &without.participants().to_string(),
        &with.participants().to_string(),
    ]);
    table.push_row([
        "gini coefficient",
        &format!("{:.3}", without.gini()),
        &format!("{:.3}", with.gini()),
    ]);
    println!("\n{}", table.to_text());
    println!("identifier movements performed: {}", movements.len());

    assert!(with.max() <= without.max(), "id movement must not increase the maximum load");
}
