//! Wide-area network monitoring with continuous multi-way joins.
//!
//! The paper motivates RJoin with internet-scale monitoring applications
//! (distributed triggers, stream overlays). This example models a small
//! security-monitoring deployment: three event streams are published into
//! the DHT by many collectors, and analysts register continuous joins that
//! correlate them.
//!
//! * `Flows(Src, Dst, Port)`      — observed network flows
//! * `Alerts(Host, Signature, Severity)` — IDS alerts
//! * `Logins(Host, User, Outcome)`        — authentication events
//!
//! The continuous query
//!
//! ```sql
//! SELECT Alerts.Signature, Logins.User
//! FROM   Flows, Alerts, Logins
//! WHERE  Flows.Dst = Alerts.Host AND Alerts.Host = Logins.Host
//! ```
//!
//! reports every (signature, user) pair where a host that received a flow
//! also raised an IDS alert and saw a login — the classic "suspicious chain"
//! correlation — continuously, as events stream in.
//!
//! Run with: `cargo run --example network_monitoring`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rjoin::prelude::*;

fn main() {
    let mut catalog = Catalog::new();
    catalog.register(Schema::new("Flows", ["Src", "Dst", "Port"]).unwrap()).unwrap();
    catalog.register(Schema::new("Alerts", ["Host", "Signature", "Severity"]).unwrap()).unwrap();
    catalog.register(Schema::new("Logins", ["Host", "User", "Outcome"]).unwrap()).unwrap();

    // 128 monitoring nodes participate in the overlay.
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog, 128);
    let nodes = engine.node_ids().to_vec();

    // Three analysts register continuous correlation queries from different
    // nodes. The third one uses DISTINCT: it only wants each (signature,
    // user) pair once.
    let correlation = "SELECT Alerts.Signature, Logins.User FROM Flows, Alerts, Logins \
                       WHERE Flows.Dst = Alerts.Host AND Alerts.Host = Logins.Host";
    let failed_logins = "SELECT Logins.Host, Logins.User FROM Logins, Alerts \
                         WHERE Logins.Host = Alerts.Host AND Logins.Outcome = 0";
    let distinct_pairs = &format!("SELECT DISTINCT {}", &correlation["SELECT ".len()..]);

    let q_corr = engine.submit_query(nodes[0], parse_query(correlation).unwrap()).unwrap();
    let q_fail = engine.submit_query(nodes[1], parse_query(failed_logins).unwrap()).unwrap();
    let q_dist = engine.submit_query(nodes[2], parse_query(distinct_pairs).unwrap()).unwrap();
    engine.run_until_quiescent().unwrap();
    println!("registered 3 continuous monitoring queries");

    // Collectors publish a stream of events. Hosts are drawn from a small
    // pool so correlations actually occur.
    let mut rng = StdRng::seed_from_u64(2008);
    let hosts = 12i64;
    let users = 20i64;
    let signatures = 6i64;
    let events = 600usize;

    for i in 0..events {
        let publisher = nodes[i % nodes.len()];
        let t = engine.now() + 1;
        let tuple = match i % 3 {
            0 => Tuple::new(
                "Flows",
                vec![
                    Value::Int(rng.gen_range(0..hosts)),
                    Value::Int(rng.gen_range(0..hosts)),
                    Value::Int([22, 80, 443, 3389][rng.gen_range(0..4usize)]),
                ],
                t,
            ),
            1 => Tuple::new(
                "Alerts",
                vec![
                    Value::Int(rng.gen_range(0..hosts)),
                    Value::Int(rng.gen_range(0..signatures)),
                    Value::Int(rng.gen_range(1..=5)),
                ],
                t,
            ),
            _ => Tuple::new(
                "Logins",
                vec![
                    Value::Int(rng.gen_range(0..hosts)),
                    Value::Int(rng.gen_range(0..users)),
                    Value::Int(rng.gen_range(0..2)),
                ],
                t,
            ),
        };
        engine.publish_tuple(publisher, tuple).unwrap();
        engine.run_until_quiescent().unwrap();

        if (i + 1) % 150 == 0 {
            println!(
                "after {:4} events: correlation={:5} answers, failed-logins={:5}, distinct pairs={:4}",
                i + 1,
                engine.answers().count_for(q_corr),
                engine.answers().count_for(q_fail),
                engine.answers().count_for(q_dist),
            );
        }
    }

    let stats = engine.stats();
    println!("\nfinal counts");
    println!("  correlation query   : {} answers", engine.answers().count_for(q_corr));
    println!("  failed-login query  : {} answers", engine.answers().count_for(q_fail));
    println!("  DISTINCT correlation: {} answers", engine.answers().count_for(q_dist));
    assert!(
        engine.answers().count_for(q_dist) <= engine.answers().count_for(q_corr),
        "set semantics can never deliver more rows than bag semantics"
    );
    assert!(!engine.answers().has_duplicate_rows(q_dist));

    println!("\nload distribution across the {} monitoring nodes", stats.nodes);
    println!("  messages per node (avg) : {:.1}", stats.traffic_per_node_avg());
    println!("  busiest node QPL        : {}", stats.qpl.max());
    println!("  nodes sharing the work  : {}", stats.qpl_participants);
    println!("  mean answer latency     : {:.1} ticks", engine.answers().mean_latency());
}
