//! Sliding-window joins over sensor streams.
//!
//! Window restrictions are RJoin's garbage-collection mechanism (Section 5
//! of the paper): without them every tuple has to be combined with *all*
//! past tuples, so the stored state and the per-tuple cost keep growing.
//! This example runs the same sensor-fusion workload twice — once without
//! windows and once with a sliding window — and prints the difference in
//! stored state and processing load.
//!
//! Scenario: a building deployment publishes three streams keyed by room,
//!
//! * `Temp(Room, Celsius)`, `Smoke(Room, Level)`, `Badge(Room, Person)`
//!
//! and the facility service runs the continuous query "report a person badged
//! into a room where temperature and smoke readings were both observed":
//!
//! ```sql
//! SELECT Badge.Person, Temp.Celsius
//! FROM Temp, Smoke, Badge
//! WHERE Temp.Room = Smoke.Room AND Smoke.Room = Badge.Room
//! WINDOW SLIDING 40 TUPLES
//! ```
//!
//! Run with: `cargo run --example sliding_window_sensors`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rjoin::prelude::*;

fn catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register(Schema::new("Temp", ["Room", "Celsius"]).unwrap()).unwrap();
    catalog.register(Schema::new("Smoke", ["Room", "Level"]).unwrap()).unwrap();
    catalog.register(Schema::new("Badge", ["Room", "Person"]).unwrap()).unwrap();
    catalog
}

fn run(window: Option<u64>, readings: usize) -> (u64, u64, u64, usize) {
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog(), 64);
    let nodes = engine.node_ids().to_vec();

    let window_clause = match window {
        Some(w) => format!(" WINDOW SLIDING {w} TUPLES"),
        None => String::new(),
    };
    let sql = format!(
        "SELECT Badge.Person, Temp.Celsius FROM Temp, Smoke, Badge \
         WHERE Temp.Room = Smoke.Room AND Smoke.Room = Badge.Room{window_clause}"
    );
    let qid = engine.submit_query(nodes[0], parse_query(&sql).unwrap()).unwrap();
    engine.run_until_quiescent().unwrap();

    let mut rng = StdRng::seed_from_u64(7);
    let rooms = 10i64;
    for i in 0..readings {
        let t = engine.now() + 1;
        let room = Value::Int(rng.gen_range(0..rooms));
        let tuple = match i % 3 {
            0 => Tuple::new("Temp", vec![room, Value::Int(rng.gen_range(15..35))], t),
            1 => Tuple::new("Smoke", vec![room, Value::Int(rng.gen_range(0..5))], t),
            _ => Tuple::new("Badge", vec![room, Value::Int(rng.gen_range(0..50))], t),
        };
        engine.publish_tuple(nodes[i % nodes.len()], tuple).unwrap();
        engine.run_until_quiescent().unwrap();
    }

    let stats = engine.stats();
    (
        stats.qpl_total,
        stats.sl_total,
        stats.current_storage.total(),
        engine.answers().count_for(qid),
    )
}

fn main() {
    let readings = 450;
    println!("publishing {readings} sensor readings through a 64-node overlay\n");

    let (qpl_none, sl_none, live_none, answers_none) = run(None, readings);
    println!("without windows:");
    println!("  query processing load : {qpl_none}");
    println!("  cumulative storage    : {sl_none}");
    println!("  state still stored    : {live_none}");
    println!("  answers delivered     : {answers_none}\n");

    let (qpl_win, sl_win, live_win, answers_win) = run(Some(40), readings);
    println!("with a 40-tuple sliding window:");
    println!("  query processing load : {qpl_win}");
    println!("  cumulative storage    : {sl_win}");
    println!("  state still stored    : {live_win}");
    println!("  answers delivered     : {answers_win}\n");

    assert!(answers_win <= answers_none, "windows can only restrict the result");
    assert!(
        live_win <= live_none,
        "the sliding window must not retain more state than the unwindowed run"
    );
    println!(
        "the window keeps {:.0}% of the unwindowed live state and {:.0}% of its answers",
        100.0 * live_win as f64 / live_none.max(1) as f64,
        100.0 * answers_win as f64 / answers_none.max(1) as f64,
    );
}
