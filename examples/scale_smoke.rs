//! Scale smoke run: the long-horizon windowed workload at CI-friendly size.
//!
//! [`Scenario::scale_test`] is the ≥512-node / 10⁴-query / 10⁵-tuple
//! generator the O(active) state machinery (slab-backed stores + timer-wheel
//! expiry) is sized for. Running it in full takes minutes; this example runs
//! a reduced cut end-to-end and prints the run's statistics as CSV — answer
//! and traffic totals plus the slab/wheel gauges and the trigger-index
//! probe counters — so CI can archive the state-machinery trajectory next
//! to the bench numbers.
//!
//! Run with: `cargo run --release --example scale_smoke`
//!
//! `SCALE_SMOKE_FULL=1` runs the full `Scenario::scale_test()` preset
//! (minutes, not CI material); the output format is identical.

use rjoin::prelude::*;

/// Queries per shared sub-join pattern — the multi-query regime the scale
/// workload models (thousands of standing queries over a few hundred
/// distinct structures).
const OVERLAP: usize = 50;

fn main() {
    let full = std::env::var("SCALE_SMOKE_FULL").is_ok_and(|v| v == "1");
    let scenario = if full {
        Scenario::scale_test()
    } else {
        Scenario { nodes: 128, queries: 1_000, tuples: 4_000, ..Scenario::scale_test() }
    };
    let config = EngineConfig::default().with_subjoin_sharing(true).with_altt(256);
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();

    let queries = scenario.generate_overlapping_queries(scenario.queries / OVERLAP);
    for (i, q) in queries.into_iter().enumerate() {
        engine.submit_query(origins[i % origins.len()], q).unwrap();
    }
    engine.run_until_quiescent().unwrap();

    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(origins[i % origins.len()], t).unwrap();
    }
    engine.run_until_quiescent().unwrap();

    let stats = engine.stats();
    let state = stats.state;
    println!("metric,value");
    println!("nodes,{}", stats.nodes);
    println!("queries,{}", scenario.queries);
    println!("tuples,{}", scenario.tuples);
    println!("answers,{}", stats.answers);
    println!("traffic_total,{}", stats.traffic_total);
    println!("qpl_total,{}", stats.qpl_total);
    println!("stored_queries_current,{}", stats.stored_queries_current);
    println!("query_slab_live,{}", state.query_slab_live);
    println!("query_slab_high_water,{}", state.query_slab_high_water);
    println!("tuple_slab_live,{}", state.tuple_slab_live);
    println!("tuple_slab_high_water,{}", state.tuple_slab_high_water);
    println!("altt_slab_live,{}", state.altt_slab_live);
    println!("altt_slab_high_water,{}", state.altt_slab_high_water);
    println!("wheel_scheduled,{}", state.wheel_scheduled);
    println!("wheel_pops,{}", state.wheel_pops);
    println!("contact_expirations,{}", state.contact_expirations);
    let probe = stats.probe;
    println!("indexed_probes,{}", probe.indexed_probes);
    println!("linear_walks,{}", probe.linear_walks);
    println!("candidates_probed,{}", probe.candidates_probed);
    println!("residual_probed,{}", probe.residual_probed);
    println!("bucket_len_total,{}", probe.bucket_len_total);
    println!("index_entries_high_water,{}", probe.index_entries_high_water);

    // The point of the machinery, asserted where CI will trip on it: with
    // the wheel on, reclamation is deadline pops, and peak live state stays
    // a fraction of the run's cumulative volume.
    assert!(state.wheel_pops > 0, "the wheel must pop on a windowed long-horizon run");
    assert!(
        state.query_slab_high_water < stats.qpl_total,
        "peak live stored queries must stay below cumulative processing volume"
    );
    assert!(probe.indexed_probes > 0, "the trigger index must serve tuple arrivals by default");
    assert!(
        probe.candidates_probed <= probe.bucket_len_total,
        "the index must never hand out more candidates than a linear walk would scan"
    );
    eprintln!(
        "scale smoke ok: {} answers, {} wheel pops vs {} contact expirations, \
         {} candidates probed of {} bucket entries",
        stats.answers,
        state.wheel_pops,
        state.contact_expirations,
        probe.candidates_probed,
        probe.bucket_len_total
    );
}
