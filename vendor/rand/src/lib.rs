//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the workspace
//! vendors the small slice of `rand`'s 0.8 API that the repository actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer and float ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom`]'s `shuffle`/`choose`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — a high-quality, deterministic PRNG. Streams are **not**
//! bit-compatible with upstream `rand`, but every consumer in this workspace
//! only relies on determinism-under-seed, which holds.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 the
    /// way upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be used as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128 as u64;
                let offset = mul_shift(rng.next_u64(), span);
                ((self.start as i128) + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = mul_shift(rng.next_u64(), span + 1);
                ((start as i128) + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Multiplies a random word by the span and keeps the high 64 bits — Lemire's
/// unbiased-enough range reduction (bias < 2^-64, irrelevant at test scale).
#[inline]
fn mul_shift(word: u64, span: u64) -> u64 {
    (((word as u128) * (span as u128)) >> 64) as u64
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::prelude` look-alike for glob imports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.gen_range(0..1_000_000)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen_range(0..1_000_000)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: u64 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&y));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniformity_is_rough_but_real() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} too skewed");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
