//! Offline, API-compatible subset of `serde_json`: printing and parsing of
//! the vendored serde crate's [`serde::json::JsonValue`] tree.
//!
//! Supports the entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — with full JSON text syntax
//! (escapes, nested containers, all number shapes). Floats are printed via
//! Rust's shortest-round-trip formatting, so `f64` values survive
//! `to_string` → `from_str` exactly; non-finite floats print as `null` like
//! upstream.

use serde::json::{JsonError, JsonValue};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

pub use serde::json::JsonError as Error;

/// Alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Re-export of the tree type under upstream's name.
pub use serde::json::JsonValue as Value;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_json(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_json(), Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let tree = parse(text)?;
    T::deserialize_json(&tree)
}

/// Parses a JSON string into the raw tree.
pub fn parse(text: &str) -> Result<JsonValue> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_whitespace(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ------------------------------------------------------------------ printer

fn write_value(out: &mut String, v: &JsonValue, indent: Option<usize>, level: usize) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Int(x) => {
            let _ = write!(out, "{x}");
        }
        JsonValue::UInt(x) => {
            let _ = write!(out, "{x}");
        }
        JsonValue::Float(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form and always
                // contains a '.' or 'e', keeping the token a float on re-parse.
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        JsonValue::Str(s) => write_string(out, s),
        JsonValue::Array(items) => {
            write_seq(out, items.iter(), items.len(), indent, level, ('[', ']'), write_value)
        }
        JsonValue::Object(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            indent,
            level,
            ('{', '}'),
            |out, (name, value), ind, lvl| {
                write_string(out, name);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, value, ind, lvl);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, indent, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------- parser

fn skip_whitespace(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue> {
    skip_whitespace(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError("unexpected end of input".to_string())),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                skip_whitespace(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                if !items.is_empty() {
                    expect_byte(bytes, pos, b',')?;
                }
                items.push(parse_value(bytes, pos)?);
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            loop {
                skip_whitespace(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                if !fields.is_empty() {
                    expect_byte(bytes, pos, b',')?;
                    skip_whitespace(bytes, pos);
                }
                let name = parse_string(bytes, pos)?;
                skip_whitespace(bytes, pos);
                expect_byte(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((name, value));
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: JsonValue) -> Result<JsonValue> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError(format!("invalid literal at byte {pos}", pos = *pos)))
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, expected: u8) -> Result<()> {
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&expected) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError(format!("expected `{}` at byte {}", expected as char, *pos)))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError("unterminated string".to_string())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError("truncated \\u escape".to_string()))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError("invalid \\u escape".to_string()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError("invalid \\u escape".to_string()))?;
                        // Surrogate pairs are not needed for the workspace's
                        // own output (it never escapes above U+001F).
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| JsonError("invalid \\u code point".to_string()))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(JsonError(format!("invalid escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError("invalid UTF-8 in string".to_string()))?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError("invalid number".to_string()))?;
    if text.is_empty() || text == "-" {
        return Err(JsonError(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Ok(x) = text.parse::<i64>() {
            return Ok(JsonValue::Int(x));
        }
        if let Ok(x) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(x));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| JsonError(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        // Integral floats keep a float-shaped token.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>(&to_string(&2.0f64).unwrap()).unwrap(), 2.0);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}é漢";
        let json = to_string(&nasty.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), nasty);
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u64>>>(&json).unwrap(), v);

        let pairs: Vec<(String, i64)> = vec![("a".into(), 1), ("b".into(), -2)];
        let json = to_string(&pairs).unwrap();
        assert_eq!(from_str::<Vec<(String, i64)>>(&json).unwrap(), pairs);
    }

    #[test]
    fn pretty_output_is_indented_and_reparsable() {
        let v: Vec<Vec<u64>> = vec![vec![1, 2], vec![]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<i64>("").is_err());
        assert!(from_str::<i64>("12 trailing").is_err());
        assert!(from_str::<Vec<i64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
