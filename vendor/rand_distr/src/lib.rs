//! Offline, API-compatible subset of the `rand_distr` crate: just the
//! [`Zipf`] distribution and the [`Distribution`] trait, which the workload
//! property tests use as a reference implementation to validate the
//! workspace's own `ZipfSampler`.

use rand::{Rng, RngCore};

/// Types that sample values of type `T` from a fixed distribution.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Zipf::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfError {
    /// `n` was zero.
    ZeroElements,
    /// The exponent was negative or non-finite.
    BadExponent,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::ZeroElements => write!(f, "Zipf requires at least one element"),
            ZipfError::BadExponent => write!(f, "Zipf exponent must be finite and non-negative"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// The Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ 1 / k^s`, matching `rand_distr::Zipf`'s formulation (ranks start
/// at 1 and are returned as `f64`).
///
/// Sampling uses a precomputed cumulative table and binary search — `O(log n)`
/// per draw. Upstream uses rejection sampling; the sampled *distribution* is
/// the same, which is all the reference tests rely on.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates the distribution over `1..=n` with exponent `s`.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::ZeroElements);
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(ZipfError::BadExponent);
        }
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf { cumulative })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative table is finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        };
        (idx + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_parameters_are_rejected() {
        assert_eq!(Zipf::new(0, 1.0).unwrap_err(), ZipfError::ZeroElements);
        assert_eq!(Zipf::new(5, f64::NAN).unwrap_err(), ZipfError::BadExponent);
        assert_eq!(Zipf::new(5, -1.0).unwrap_err(), ZipfError::BadExponent);
    }

    #[test]
    fn samples_stay_in_range_and_favour_the_head() {
        let z = Zipf::new(20, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut head = 0usize;
        for _ in 0..20_000 {
            let v = z.sample(&mut rng);
            assert!((1.0..=20.0).contains(&v));
            if v == 1.0 {
                head += 1;
            }
        }
        // P(1) = 1/H_20 ≈ 0.278; allow a generous band.
        assert!((4_000..7_000).contains(&head), "head draws: {head}");
    }
}
