//! `Serialize`/`Deserialize` implementations for std types.

use crate::json::{JsonError, JsonValue};
use crate::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, Hash};

// ---------------------------------------------------------------- primitives

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self) -> JsonValue { JsonValue::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
                let wide: i128 = match *v {
                    JsonValue::Int(x) => x as i128,
                    JsonValue::UInt(x) => x as i128,
                    JsonValue::Float(x) if x.fract() == 0.0 => x as i128,
                    ref other => return Err(JsonError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| JsonError(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self) -> JsonValue {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    JsonValue::Int(wide as i64)
                } else {
                    JsonValue::UInt(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
                let wide: u128 = match *v {
                    JsonValue::Int(x) if x >= 0 => x as u128,
                    JsonValue::UInt(x) => x as u128,
                    JsonValue::Float(x) if x.fract() == 0.0 && x >= 0.0 => x as u128,
                    ref other => return Err(JsonError::expected("unsigned integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| JsonError(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self) -> JsonValue { JsonValue::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
                match *v {
                    JsonValue::Float(x) => Ok(x as $t),
                    JsonValue::Int(x) => Ok(x as $t),
                    JsonValue::UInt(x) => Ok(x as $t),
                    // serde_json renders non-finite floats as null.
                    JsonValue::Null => Ok(<$t>::NAN),
                    ref other => Err(JsonError::expected("number", other)),
                }
            }
        }
    )*};
}

serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(JsonError::expected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn serialize_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        let s = v.as_str().ok_or_else(|| JsonError::expected("single-char string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(JsonError::expected("single-char string", v)),
        }
    }
}

// ------------------------------------------------------------------ strings

impl Serialize for String {
    fn serialize_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string).ok_or_else(|| JsonError::expected("string", v))
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self) -> JsonValue {
        (**self).serialize_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self) -> JsonValue {
        (**self).serialize_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        T::deserialize_json(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize_json(&self) -> JsonValue {
        (**self).serialize_json()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        T::deserialize_json(v).map(std::rc::Rc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize_json(&self) -> JsonValue {
        (**self).serialize_json()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        T::deserialize_json(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self) -> JsonValue {
        match self {
            Some(x) => x.serialize_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::serialize_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self) -> JsonValue {
        self[..].serialize_json()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self) -> JsonValue {
        self[..].serialize_json()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::expected("array", v))?
            .iter()
            .map(T::deserialize_json)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::serialize_json).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        Vec::<T>::deserialize_json(v).map(VecDeque::from)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::serialize_json).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        Vec::<T>::deserialize_json(v).map(|items| items.into_iter().collect())
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn serialize_json(&self) -> JsonValue {
        // Deterministic output: sort by the rendered form.
        let mut items: Vec<JsonValue> = self.iter().map(Serialize::serialize_json).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        JsonValue::Array(items)
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        Vec::<T>::deserialize_json(v).map(|items| items.into_iter().collect())
    }
}

// Maps serialize as arrays of `[key, value]` pairs. Upstream serde_json only
// supports string keys in objects; the pair representation round-trips any
// key type without a string-conversion side channel.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_json(&self) -> JsonValue {
        JsonValue::Array(
            self.iter()
                .map(|(k, v)| JsonValue::Array(vec![k.serialize_json(), v.serialize_json()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        Vec::<(K, V)>::deserialize_json(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn serialize_json(&self) -> JsonValue {
        let mut pairs: Vec<JsonValue> = self
            .iter()
            .map(|(k, v)| JsonValue::Array(vec![k.serialize_json(), v.serialize_json()]))
            .collect();
        pairs.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        JsonValue::Array(pairs)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        Vec::<(K, V)>::deserialize_json(v).map(|pairs| pairs.into_iter().collect())
    }
}

// ------------------------------------------------------------------- tuples

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self) -> JsonValue {
                JsonValue::Array(vec![$(self.$idx.serialize_json()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
                let items = v.as_array().ok_or_else(|| JsonError::expected("tuple array", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(JsonError(format!(
                        "expected tuple of {expected} elements, found {}", items.len()
                    )));
                }
                Ok(($($name::deserialize_json(&items[$idx])?,)+))
            }
        }
    )*};
}

serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for () {
    fn serialize_json(&self) -> JsonValue {
        JsonValue::Null
    }
}

impl Deserialize for () {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Null => Ok(()),
            other => Err(JsonError::expected("null", other)),
        }
    }
}

impl Serialize for std::time::Duration {
    fn serialize_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("secs".to_string(), self.as_secs().serialize_json()),
            ("nanos".to_string(), self.subsec_nanos().serialize_json()),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        let secs = u64::deserialize_json(crate::json::field_or_null(v, "secs"))?;
        let nanos = u32::deserialize_json(crate::json::field_or_null(v, "nanos"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for JsonValue {
    fn serialize_json(&self) -> JsonValue {
        self.clone()
    }
}

impl Deserialize for JsonValue {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}
