//! The self-describing data model shared by the `serde` traits, the derive
//! macro's generated code, and `serde_json`'s text layer.

use std::fmt;

/// An in-memory JSON tree.
///
/// Object fields are kept as an insertion-ordered `Vec` (not a map) so that
/// struct round-trips preserve declaration order and `to_string_pretty`
/// output is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Signed integers (also produced by the parser for any integral literal
    /// that fits in `i64`).
    Int(i64),
    /// Unsigned integers above `i64::MAX`.
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Returns the object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Returns the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|fields| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v))
    }

    /// A short tag naming the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Int(_) | JsonValue::UInt(_) => "integer",
            JsonValue::Float(_) => "float",
            JsonValue::Str(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

/// Error produced when deserialization (or parsing) fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl JsonError {
    /// "expected X, found Y" constructor used by generated code.
    pub fn expected(what: &str, found: &JsonValue) -> Self {
        JsonError(format!("expected {what}, found {}", found.kind()))
    }

    /// Missing-field constructor used by generated code.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        JsonError(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// Unknown-variant constructor used by generated code.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        JsonError(format!("unknown variant `{variant}` for enum {ty}"))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for JsonError {}

/// Helper used by derived `Deserialize` impls: fetch a struct field, mapping
/// a missing entry to `Null` so `Option` fields deserialize to `None`.
pub fn field_or_null<'v>(v: &'v JsonValue, name: &str) -> &'v JsonValue {
    static NULL: JsonValue = JsonValue::Null;
    v.get_field(name).unwrap_or(&NULL)
}
