//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no access to a crates registry, so the workspace
//! vendors a serde work-alike that is *actually functional* — round-tripping
//! through `serde_json` works — while being a fraction of the size. Instead
//! of upstream's visitor-based zero-copy architecture, this implementation
//! funnels everything through one self-describing in-memory tree,
//! [`json::JsonValue`]:
//!
//! * [`Serialize`] renders a value into a [`json::JsonValue`],
//! * [`Deserialize`] rebuilds a value from a [`json::JsonValue`],
//! * `#[derive(Serialize, Deserialize)]` (from the vendored `serde_derive`)
//!   generates those impls with upstream-compatible shapes (externally tagged
//!   enums, transparent newtypes, objects for named-field structs).
//!
//! The `serde_json` vendor crate adds the text layer (printing/parsing).

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// A value that can be rendered into the self-describing JSON tree.
pub trait Serialize {
    /// Renders `self` as a [`json::JsonValue`].
    fn serialize_json(&self) -> json::JsonValue;
}

/// A value that can be rebuilt from the self-describing JSON tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from `v`.
    fn deserialize_json(v: &json::JsonValue) -> Result<Self, json::JsonError>;
}

mod impls;

/// `serde::de` stand-in so `use serde::de::...` paths keep compiling.
pub mod de {
    pub use crate::json::JsonError as Error;
    pub use crate::Deserialize;
}

/// `serde::ser` stand-in so `use serde::ser::...` paths keep compiling.
pub mod ser {
    pub use crate::Serialize;
}
