//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the benchmark-definition surface the workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, `criterion_group!`, `criterion_main!`) over a
//! simple wall-clock harness: each benchmark is warmed up, then timed over
//! enough iterations to fill a short measurement window, and the mean
//! time per iteration is printed. There is no statistical analysis, HTML
//! report, or comparison with saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{}/{}", function.into(), parameter) }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    measured: Option<Duration>,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean duration per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run a few times untimed.
        for _ in 0..3 {
            black_box(routine());
        }
        let window = measurement_window();
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= window && iters >= 10 {
                break;
            }
        }
        self.measured = Some(start.elapsed() / iters as u32);
        self.iters = iters;
    }
}

fn measurement_window() -> Duration {
    // CRITERION_MEASUREMENT_MS shortens runs in CI smoke tests.
    let ms = std::env::var("CRITERION_MEASUREMENT_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// The harness entry point; collects and prints results.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the harness sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// Ends the group (formatting separator only).
    pub fn finish(self) {
        println!();
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { measured: None, iters: 0 };
    f(&mut bencher);
    match bencher.measured {
        Some(per_iter) => println!(
            "bench {name:<50} {:>12} / iter  ({} iters)",
            format_duration(per_iter),
            bencher.iters
        ),
        None => println!("bench {name:<50} (no measurement: closure never called iter)"),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a bench harness function running each listed benchmark fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
