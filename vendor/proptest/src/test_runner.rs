//! The case-running loop behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Failure modes of one generated case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's assumptions did not hold; draw a fresh case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Number of passing cases required per property (`PROPTEST_CASES`
/// overrides; upstream defaults to 256, this harness to 64 for CI speed).
fn case_count() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64)
}

/// Runs `case` until the configured number of draws pass (the
/// `PROPTEST_CASES` environment variable, default 64), panicking on the first
/// failure. The RNG is seeded from the test's name (FNV-1a), so runs are
/// deterministic and failures reproduce without a persistence file.
pub fn run_cases(name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let cases = case_count();
    let mut rng = TestRng::seed_from_u64(fnv1a(name.as_bytes()));
    let mut passed = 0usize;
    let mut rejected = 0usize;
    while passed < cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= cases * 200,
                    "property `{name}`: too many rejected cases ({rejected}) — \
                     prop_assume! filter is too strict"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("property `{name}` failed after {passed} passing case(s):\n{message}");
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}
