//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;

/// Sizes accepted by collection strategies: an exact `usize` or a range.
pub trait SizeRange: Clone {
    fn pick_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn pick_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn pick_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick_len(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy producing `BTreeSet`s of distinct elements with a size drawn
/// from `size` (best effort: gives up growing after enough duplicate draws,
/// like upstream).
pub fn btree_set<S, Z>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
where
    S: Strategy,
    S::Value: Ord,
    Z: SizeRange,
{
    BTreeSetStrategy { element, size }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
where
    S: Strategy,
    S::Value: Ord,
    Z: SizeRange,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick_len(rng);
        let mut out = BTreeSet::new();
        let mut misses = 0usize;
        while out.len() < target && misses < 100 {
            if !out.insert(self.element.generate(rng)) {
                misses += 1;
            }
        }
        out
    }
}
