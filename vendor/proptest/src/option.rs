//! `proptest::option::of` — optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Wraps a strategy to produce `Option`s (3:1 biased to `Some`, matching
/// upstream's default weighting closely enough for these tests).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
