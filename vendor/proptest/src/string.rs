//! Regex-subset string generation for string-literal strategies.
//!
//! Supports the constructs the workspace's tests use: literal characters,
//! `[...]` character classes with ranges and plain members, and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (star/plus capped at 8 repeats).
//! `\\` escapes the next character.

use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Flattened member list of a `[...]` class.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count =
            if piece.min == piece.max { piece.min } else { rng.gen_range(piece.min..=piece.max) };
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(members) => {
                    out.push(members[rng.gen_range(0..members.len())]);
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                    + i;
                let members = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                Atom::Class(members)
            }
            '\\' => {
                i += 1;
                let c =
                    *chars.get(i).unwrap_or_else(|| panic!("dangling `\\` in pattern `{pattern}`"));
                i += 1;
                Atom::Literal(c)
            }
            '.' => {
                i += 1;
                Atom::Class(('a'..='z').chain('A'..='Z').chain('0'..='9').collect())
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo.trim().parse().expect("bad lower bound in {m,n}");
                        let hi = hi.trim().parse().expect("bad upper bound in {m,n}");
                        (lo, hi)
                    }
                    None => {
                        let n = body.trim().parse().expect("bad count in {n}");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty `[]` class in pattern `{pattern}`");
    let mut members = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range `{lo}-{hi}` in pattern `{pattern}`");
            members.extend(lo..=hi);
            i += 3;
        } else if body[i] == '\\' && i + 1 < body.len() {
            members.push(body[i + 1]);
            i += 2;
        } else {
            members.push(body[i]);
            i += 1;
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn patterns_used_by_the_workspace() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate_matching("[a-z]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let s = generate_matching("[A-Z][a-z0-9]{0,5}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 6);
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
            assert!(s.chars().skip(1).all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::seed_from_u64(2);
        assert_eq!(generate_matching("abc", &mut rng), "abc");
        assert_eq!(generate_matching("a{3}", &mut rng), "aaa");
        for _ in 0..50 {
            let s = generate_matching("x?y+", &mut rng);
            assert!(s.trim_start_matches('x').chars().all(|c| c == 'y'));
            assert!(s.contains('y'));
        }
    }
}
