//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream's value-tree model there is no shrinking: a strategy is
/// just a seeded generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a
    /// collection (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

// Integer and float ranges are strategies drawing uniformly from themselves.
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

// Tuples of strategies generate tuples of values.
macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// String literals are regex-subset strategies (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
