//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the property-testing surface its tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`, [`arbitrary::any`], range and
//! regex-literal strategies, [`collection`], `bool`,
//! [`option`], [`prop_oneof!`], `Just`, and the `prop_assert*` /
//! [`prop_assume!`] macros.
//!
//! Differences from upstream, deliberate for size:
//! * no shrinking — a failing case reports its inputs but is not minimized;
//! * each test runs a fixed number of cases (`PROPTEST_CASES` env var,
//!   default 64), seeded deterministically from the test's name, so failures
//!   reproduce across runs;
//! * string strategies support the regex subset the workspace uses
//!   (literals, `[...]` classes with ranges, `{n}`/`{m,n}`/`?`/`*`/`+`).

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// `proptest::bool` look-alike.
pub mod bool {
    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Upstream calls this `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            use rand::Rng;
            rng.gen_range(0u32..2) == 1
        }
    }
}

/// The glob-import module used by every test file.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random draws from the
/// strategies.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    let __body_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __body_result
                });
            }
        )*
    };
}

/// Fails the current case (without panicking the generator loop) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*))
            );
        }
    };
}

/// `prop_assert!(a == b)` with a diagnostic rendering of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)*);
    }};
}

/// `prop_assert!(a != b)` with a diagnostic rendering of both sides.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

/// Skips the current case (drawing a fresh one) when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Chooses uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
