//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        // Printable ASCII keeps failure output readable.
        rng.gen_range(0x20u32..0x7f) as u8 as char
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        rng.gen_range(-1.0e9..1.0e9)
    }
}
