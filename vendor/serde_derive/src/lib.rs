//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! The build environment has no registry access, so this derive is written
//! against bare `proc_macro` — no `syn`, no `quote`. It hand-parses the item
//! into a small shape model (struct: unit/newtype/tuple/named; enum: the same
//! four variant shapes) and emits impls of the vendored `serde::Serialize` /
//! `serde::Deserialize` traits with upstream-compatible representations:
//! objects for named fields, transparent newtypes, externally tagged enums.
//!
//! Supported grammar is deliberately the subset this workspace uses: type
//! generics with plain bounds (`<K: Eq + Hash>`), no lifetimes, no const
//! generics, no `where` clauses, no `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod parse;

use parse::{Data, Input, VariantKind};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Input::parse(input);
    let body = serialize_body(&item);
    let code = item.impl_block("::serde::Serialize", &body);
    code.parse().expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Input::parse(input);
    let body = deserialize_body(&item);
    let code = item.impl_block("::serde::Deserialize", &body);
    code.parse().expect("serde_derive generated invalid Deserialize impl")
}

/// Renders `JsonValue::Object(vec![(name, value), ...])` from rendered pairs.
fn object_expr(pairs: &[(String, String)]) -> String {
    let fields: Vec<String> = pairs
        .iter()
        .map(|(name, value)| format!("(::std::string::String::from({name:?}), {value})"))
        .collect();
    format!("::serde::json::JsonValue::Object(::std::vec![{}])", fields.join(", "))
}

fn serialize_body(item: &Input) -> String {
    let expr = match &item.data {
        Data::UnitStruct => "::serde::json::JsonValue::Null".to_string(),
        Data::NewtypeStruct => "::serde::Serialize::serialize_json(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::serialize_json(&self.{i})")).collect();
            format!("::serde::json::JsonValue::Array(::std::vec![{}])", items.join(", "))
        }
        Data::NamedStruct(fields) => {
            let pairs: Vec<(String, String)> = fields
                .iter()
                .map(|f| (f.clone(), format!("::serde::Serialize::serialize_json(&self.{f})")))
                .collect();
            object_expr(&pairs)
        }
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "Self::{vname} => \
                             ::serde::json::JsonValue::Str(::std::string::String::from({vname:?})),"
                        ),
                        VariantKind::Newtype => {
                            let payload = "::serde::Serialize::serialize_json(__x0)".to_string();
                            let obj = object_expr(&[(vname.clone(), payload)]);
                            format!("Self::{vname}(__x0) => {obj},")
                        }
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_json({b})"))
                                .collect();
                            let payload = format!(
                                "::serde::json::JsonValue::Array(::std::vec![{}])",
                                items.join(", ")
                            );
                            let obj = object_expr(&[(vname.clone(), payload)]);
                            format!("Self::{vname}({}) => {obj},", binders.join(", "))
                        }
                        VariantKind::Named(fields) => {
                            let pairs: Vec<(String, String)> = fields
                                .iter()
                                .map(|f| {
                                    (f.clone(), format!("::serde::Serialize::serialize_json({f})"))
                                })
                                .collect();
                            let payload = object_expr(&pairs);
                            let obj = object_expr(&[(vname.clone(), payload)]);
                            format!("Self::{vname} {{ {} }} => {obj},", fields.join(", "))
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!("fn serialize_json(&self) -> ::serde::json::JsonValue {{ {expr} }}")
}

/// Renders the field initializers for a named-field body deserialized from
/// the object expression `source`.
fn named_inits(ty: &str, fields: &[String], source: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize_json(\
                 ::serde::json::field_or_null({source}, {f:?}))\
                 .map_err(|e| ::serde::json::JsonError(\
                 ::std::format!(\"{ty}.{f}: {{e}}\")))?,"
            )
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders an expression deserializing a tuple payload of `n` items from the
/// array behind `source`, applied to constructor path `ctor`.
fn tuple_init(ty: &str, ctor: &str, n: usize, source: &str) -> String {
    let items: Vec<String> =
        (0..n).map(|i| format!("::serde::Deserialize::deserialize_json(&__items[{i}])?")).collect();
    format!(
        "{{ let __items = {source}.as_array()\
         .ok_or_else(|| ::serde::json::JsonError::expected(\"array\", {source}))?; \
         if __items.len() != {n} {{ \
         return Err(::serde::json::JsonError(::std::format!(\
         \"{ty}: expected {n} elements, found {{}}\", __items.len()))); }} \
         Ok({ctor}({})) }}",
        items.join(", ")
    )
}

fn deserialize_body(item: &Input) -> String {
    let ty = &item.name;
    let expr = match &item.data {
        Data::UnitStruct => format!(
            "match __v {{ ::serde::json::JsonValue::Null => Ok(Self), \
             other => Err(::serde::json::JsonError::expected({ty:?}, other)) }}"
        ),
        Data::NewtypeStruct => "Ok(Self(::serde::Deserialize::deserialize_json(__v)?))".to_string(),
        Data::TupleStruct(n) => tuple_init(ty, "Self", *n, "__v"),
        Data::NamedStruct(fields) => format!(
            "{{ if __v.as_object().is_none() {{ \
             return Err(::serde::json::JsonError::expected(\"object\", __v)); }} \
             Ok(Self {{ {} }}) }}",
            named_inits(ty, fields, "__v")
        ),
        Data::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => Ok(Self::{}),", v.name, v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    let arm_body = match &v.kind {
                        VariantKind::Unit => return None,
                        VariantKind::Newtype => format!(
                            "Ok(Self::{vname}(::serde::Deserialize::deserialize_json(__payload)?))"
                        ),
                        VariantKind::Tuple(n) => {
                            tuple_init(ty, &format!("Self::{vname}"), *n, "__payload")
                        }
                        VariantKind::Named(fields) => format!(
                            "{{ if __payload.as_object().is_none() {{ \
                             return Err(::serde::json::JsonError::expected(\"object\", __payload)); }} \
                             Ok(Self::{vname} {{ {} }}) }}",
                            named_inits(ty, fields, "__payload")
                        ),
                    };
                    Some(format!("{vname:?} => {arm_body},"))
                })
                .collect();
            format!(
                "match __v {{ \
                 ::serde::json::JsonValue::Str(__s) => match __s.as_str() {{ \
                 {} __other => Err(::serde::json::JsonError::unknown_variant({ty:?}, __other)) }}, \
                 ::serde::json::JsonValue::Object(__fields) if __fields.len() == 1 => {{ \
                 let (__tag, __payload) = &__fields[0]; \
                 match __tag.as_str() {{ \
                 {} __other => Err(::serde::json::JsonError::unknown_variant({ty:?}, __other)) }} }}, \
                 __other => Err(::serde::json::JsonError::expected({ty:?}, __other)) }}",
                unit_arms.join(" "),
                tagged_arms.join(" ")
            )
        }
    };
    format!(
        "fn deserialize_json(__v: &::serde::json::JsonValue) \
         -> ::std::result::Result<Self, ::serde::json::JsonError> {{ {expr} }}"
    )
}

/// Shared helper: renders a token tree sequence back to source text, keeping
/// joint punctuation glued (so `::` does not become `: :`).
fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let mut out = String::new();
    let mut glue_next = false;
    for tt in tokens {
        if !out.is_empty() && !glue_next {
            out.push(' ');
        }
        glue_next = matches!(tt, TokenTree::Punct(p) if p.spacing() == proc_macro::Spacing::Joint);
        match tt {
            TokenTree::Group(g) => {
                let (open, close) = match g.delimiter() {
                    Delimiter::Parenthesis => ("(", ")"),
                    Delimiter::Brace => ("{", "}"),
                    Delimiter::Bracket => ("[", "]"),
                    Delimiter::None => ("", ""),
                };
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                out.push_str(open);
                out.push_str(&tokens_to_string(&inner));
                out.push_str(close);
            }
            other => out.push_str(&other.to_string()),
        }
    }
    out
}
