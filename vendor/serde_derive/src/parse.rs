//! Hand-rolled parser from a derive input `TokenStream` to the shape model.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of the deriving item.
pub enum Data {
    UnitStruct,
    /// One-element tuple struct — serialized transparently.
    NewtypeStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

pub struct Variant {
    pub name: String,
    pub kind: VariantKind,
}

pub enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Named(Vec<String>),
}

/// Parsed derive input.
pub struct Input {
    pub name: String,
    /// Generic parameter declarations as written, e.g. `K : Eq + Hash`.
    pub generics_decl: String,
    /// Just the parameter names, e.g. `["K"]`.
    pub generic_params: Vec<String>,
    pub data: Data,
}

impl Input {
    pub fn parse(stream: TokenStream) -> Input {
        let tokens: Vec<TokenTree> = stream.into_iter().collect();
        let mut pos = 0;

        skip_attributes_and_visibility(&tokens, &mut pos);
        let keyword = expect_ident(&tokens, &mut pos);
        assert!(
            keyword == "struct" || keyword == "enum",
            "serde_derive: expected `struct` or `enum`, found `{keyword}`"
        );
        let name = expect_ident(&tokens, &mut pos);

        let (generics_decl, generic_params) = parse_generics(&tokens, &mut pos);

        let data = if keyword == "struct" {
            match tokens.get(pos) {
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    match count_tuple_fields(g.stream()) {
                        1 => Data::NewtypeStruct,
                        n => Data::TupleStruct(n),
                    }
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Data::NamedStruct(parse_named_fields(g.stream()))
                }
                other => panic!("serde_derive: unexpected struct body: {other:?}"),
            }
        } else {
            match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Data::Enum(parse_variants(g.stream()))
                }
                other => panic!("serde_derive: unexpected enum body: {other:?}"),
            }
        };

        Input { name, generics_decl, generic_params, data }
    }

    /// Renders `impl<...> TRAIT for Name<...> { body }`, adding the trait as
    /// an extra bound on every type parameter.
    pub fn impl_block(&self, trait_path: &str, body: &str) -> String {
        if self.generic_params.is_empty() {
            return format!("impl {trait_path} for {} {{ {body} }}", self.name);
        }
        let bounded: Vec<String> = split_top_level_commas_str(&self.generics_decl)
            .into_iter()
            .map(|param| {
                let param = param.trim().to_string();
                if param.contains(':') {
                    format!("{param} + {trait_path}")
                } else {
                    format!("{param}: {trait_path}")
                }
            })
            .collect();
        format!(
            "impl<{}> {trait_path} for {}<{}> {{ {body} }}",
            bounded.join(", "),
            self.name,
            self.generic_params.join(", ")
        )
    }
}

/// Skips `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

/// Parses an optional `<...>` generics list; returns (decl text, param names).
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> (String, Vec<String>) {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return (String::new(), Vec::new()),
    }
    *pos += 1;
    let mut depth = 1usize;
    let mut decl_tokens = Vec::new();
    while depth > 0 {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                depth += 1;
                decl_tokens.push(tokens[*pos].clone());
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                depth -= 1;
                if depth > 0 {
                    decl_tokens.push(tokens[*pos].clone());
                }
            }
            Some(tt) => decl_tokens.push(tt.clone()),
            None => panic!("serde_derive: unterminated generics list"),
        }
        *pos += 1;
    }

    let mut params = Vec::new();
    for segment in split_top_level_commas(&decl_tokens) {
        match segment.first() {
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                assert!(
                    word != "const",
                    "serde_derive: const generics are not supported by the vendored derive"
                );
                params.push(word);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                panic!("serde_derive: lifetimes are not supported by the vendored derive")
            }
            _ => {}
        }
    }
    (crate::tokens_to_string(&decl_tokens), params)
}

/// Splits a token slice on commas that sit outside any `<...>` nesting
/// (delimiter groups are atomic token trees, so only angles need tracking).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut segments = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for tt in tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                current.push(tt.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => {
                angle_depth -= 1;
                current.push(tt.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    segments.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(tt.clone()),
        }
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

fn split_top_level_commas_str(text: &str) -> Vec<String> {
    let mut segments = Vec::new();
    let mut current = String::new();
    let mut angle_depth = 0usize;
    for c in text.chars() {
        match c {
            '<' => {
                angle_depth += 1;
                current.push(c);
            }
            '>' if angle_depth > 0 => {
                angle_depth -= 1;
                current.push(c);
            }
            ',' if angle_depth == 0 => {
                if !current.trim().is_empty() {
                    segments.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        segments.push(current);
    }
    segments
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_top_level_commas(&tokens).len()
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    for segment in split_top_level_commas(&tokens) {
        let mut pos = 0;
        skip_attributes_and_visibility(&segment, &mut pos);
        if pos < segment.len() {
            fields.push(expect_ident(&segment, &mut pos));
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    for segment in split_top_level_commas(&tokens) {
        let mut pos = 0;
        skip_attributes_and_visibility(&segment, &mut pos);
        if pos >= segment.len() {
            continue;
        }
        let name = expect_ident(&segment, &mut pos);
        let kind = match segment.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_tuple_fields(g.stream()) {
                    1 => VariantKind::Newtype,
                    n => VariantKind::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde_derive: explicit discriminants are not supported")
            }
            None => VariantKind::Unit,
            other => panic!("serde_derive: unexpected token in variant: {other:?}"),
        };
        variants.push(Variant { name, kind });
    }
    variants
}
