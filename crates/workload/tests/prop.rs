//! Property-based tests for the workload generators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution as _, Zipf};
use rjoin_workload::{QueryGenerator, Scenario, TupleGenerator, WorkloadSchema, ZipfSampler};

proptest! {
    /// Our Zipf sampler's probabilities are a valid, monotonically
    /// non-increasing distribution for any (n, θ).
    #[test]
    fn zipf_probabilities_form_a_distribution(n in 1usize..200, theta in 0.0f64..2.0) {
        let z = ZipfSampler::new(n, theta);
        let sum: f64 = (0..n).map(|i| z.probability(i)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "probabilities sum to {sum}");
        for i in 1..n {
            prop_assert!(z.probability(i) <= z.probability(i - 1) + 1e-12);
        }
    }

    /// The head probability of our sampler matches the reference
    /// implementation in `rand_distr` (same Zipf formulation): the most
    /// popular rank is drawn with statistically indistinguishable frequency.
    #[test]
    fn zipf_head_matches_rand_distr(seed in any::<u64>(), theta in 0.2f64..1.2) {
        let n = 50usize;
        let draws = 4000usize;
        let ours = ZipfSampler::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ours_head = 0usize;
        for _ in 0..draws {
            if ours.sample(&mut rng) == 0 {
                ours_head += 1;
            }
        }
        let reference = Zipf::new(n as u64, theta).unwrap();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        let mut ref_head = 0usize;
        for _ in 0..draws {
            // rand_distr's Zipf yields ranks starting at 1.
            if (reference.sample(&mut rng) as u64) == 1 {
                ref_head += 1;
            }
        }
        let ours_frac = ours_head as f64 / draws as f64;
        let ref_frac = ref_head as f64 / draws as f64;
        prop_assert!(
            (ours_frac - ref_frac).abs() < 0.05,
            "head frequencies diverge: ours {ours_frac:.3} vs rand_distr {ref_frac:.3}"
        );
    }

    /// Generated tuples always validate against the generated catalog and
    /// stay within the declared value domain, for arbitrary schema shapes.
    #[test]
    fn tuples_respect_arbitrary_schemas(
        relations in 1usize..8,
        attributes in 1usize..8,
        domain in 1i64..50,
        theta in 0.0f64..1.5,
        seed in any::<u64>(),
    ) {
        let schema = WorkloadSchema::new(relations, attributes, domain);
        let catalog = schema.build_catalog();
        let mut generator = TupleGenerator::new(schema, theta, seed);
        for tuple in generator.generate_batch(50, 0) {
            prop_assert!(catalog.validate_tuple(&tuple).is_ok());
            for value in tuple.values() {
                let v = value.as_int().expect("workload tuples are integers");
                prop_assert!((0..domain).contains(&v));
            }
        }
    }

    /// Generated chain-join queries always validate and have the requested
    /// join count, for any feasible (schema, joins) combination.
    #[test]
    fn queries_respect_arbitrary_schemas(
        relations in 2usize..10,
        attributes in 1usize..6,
        joins_pick in any::<usize>(),
        seed in any::<u64>(),
    ) {
        let max_joins = relations - 1;
        let joins = 1 + joins_pick % max_joins;
        let schema = WorkloadSchema::new(relations, attributes, 10);
        let catalog = schema.build_catalog();
        let mut generator = QueryGenerator::new(schema, joins, seed);
        for query in generator.generate_batch(25) {
            prop_assert!(query.validate(&catalog).is_ok());
            prop_assert_eq!(query.join_count(), joins);
            prop_assert_eq!(query.relations().len(), joins + 1);
        }
    }

    /// Scenarios are fully reproducible: equal seeds give equal workloads,
    /// different seeds (almost always) give different ones.
    #[test]
    fn scenarios_are_seed_deterministic(seed in any::<u64>()) {
        let a = Scenario { seed, queries: 20, tuples: 20, ..Scenario::small_test() };
        let b = Scenario { seed, queries: 20, tuples: 20, ..Scenario::small_test() };
        prop_assert_eq!(a.generate_queries(), b.generate_queries());
        prop_assert_eq!(a.generate_tuples(5), b.generate_tuples(5));
    }
}
