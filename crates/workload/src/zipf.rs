//! Zipf-distributed sampling.

use rand::Rng;

/// A sampler for the Zipf distribution over `{0, 1, ..., n-1}` with skew
/// parameter θ.
///
/// Rank `i` (0-based) is drawn with probability proportional to
/// `1 / (i + 1)^θ`, the formulation used by Gray et al. and by the paper's
/// experimental section (θ = 0.9 is described as "highly skewed", θ = 0
/// degenerates to the uniform distribution).
///
/// Sampling uses a precomputed cumulative table and binary search, so each
/// draw is `O(log n)`; the table is built once per sampler.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
    theta: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with skew `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0`, or if `theta` is negative or not finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "ZipfSampler requires at least one rank");
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be finite and non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        // Normalize so the last entry is exactly 1.0.
        for c in &mut cumulative {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cumulative, theta }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler has a single rank (never empty by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of drawing rank `i`.
    pub fn probability(&self, i: usize) -> f64 {
        if i >= self.cumulative.len() {
            return 0.0;
        }
        if i == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[i] - self.cumulative[i - 1]
        }
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&u).expect("finite")) {
            Ok(idx) => (idx + 1).min(self.cumulative.len() - 1),
            Err(idx) => idx.min(self.cumulative.len() - 1),
        }
    }

    /// Draws one rank, but with probability `hot_mass` collapses the draw
    /// onto rank 0 — the **hot-key knob** of the skew scenarios: Zipf skew
    /// alone concentrates *most* mass on the first ranks, while real
    /// workloads often have one key that is categorically hotter than the
    /// Zipf tail predicts (a viral item, a default value). `hot_mass = 0.0`
    /// draws nothing extra from the RNG and is bit-identical to
    /// [`sample`](Self::sample), so enabling the knob in one scenario never
    /// perturbs another scenario's generated workload.
    ///
    /// # Panics
    /// Panics if `hot_mass` is not within `[0.0, 1.0]`.
    pub fn sample_with_hotspot<R: Rng + ?Sized>(&self, rng: &mut R, hot_mass: f64) -> usize {
        assert!((0.0..=1.0).contains(&hot_mass), "hot_mass must be a probability");
        if hot_mass > 0.0 && rng.gen_range(0.0..1.0) < hot_mass {
            return 0;
        }
        self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(sampler: &ZipfSampler, draws: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; sampler.len()];
        for _ in 0..draws {
            counts[sampler.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(100, 0.9);
        let sum: f64 = (0..100).map(|i| z.probability(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(z.probability(200), 0.0);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
        assert!((z.theta() - 0.9).abs() < f64::EPSILON);
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for i in 0..10 {
            assert!((z.probability(i) - 0.1).abs() < 1e-9);
        }
        let counts = histogram(&z, 20_000, 1);
        for &c in &counts {
            // Each rank should get roughly 2000 draws; allow wide tolerance.
            assert!(c > 1500 && c < 2500, "count {c} outside uniform band");
        }
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let mild = ZipfSampler::new(100, 0.3);
        let heavy = ZipfSampler::new(100, 0.9);
        assert!(heavy.probability(0) > mild.probability(0));
        assert!(heavy.probability(99) < mild.probability(99));
        // Ranks are monotonically decreasing in probability.
        for i in 1..100 {
            assert!(heavy.probability(i) <= heavy.probability(i - 1) + 1e-12);
        }
    }

    #[test]
    fn empirical_frequencies_track_probabilities() {
        let z = ZipfSampler::new(20, 0.9);
        let draws = 100_000;
        let counts = histogram(&z, draws, 42);
        for (i, &count) in counts.iter().enumerate() {
            let expected = z.probability(i) * draws as f64;
            let observed = count as f64;
            // 15% relative tolerance plus a small absolute slack for rare ranks.
            assert!(
                (observed - expected).abs() < expected * 0.15 + 30.0,
                "rank {i}: expected {expected:.1}, observed {observed}"
            );
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let z = ZipfSampler::new(50, 0.7);
        let a = histogram(&z, 1000, 7);
        let b = histogram(&z, 1000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = ZipfSampler::new(1, 0.9);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 0.9);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_theta_panics() {
        let _ = ZipfSampler::new(5, -1.0);
    }

    #[test]
    fn hotspot_zero_is_bit_identical_to_plain_sampling() {
        let z = ZipfSampler::new(50, 0.7);
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            assert_eq!(z.sample_with_hotspot(&mut a, 0.0), z.sample(&mut b));
        }
    }

    #[test]
    fn hotspot_mass_concentrates_rank_zero() {
        let z = ZipfSampler::new(50, 0.5);
        let mut rng = StdRng::seed_from_u64(12);
        let draws = 20_000;
        let hot = (0..draws).filter(|_| z.sample_with_hotspot(&mut rng, 0.5) == 0).count();
        // Rank 0 gets the 50% hotspot mass plus its own Zipf share.
        let base = z.probability(0);
        let expected = (0.5 + 0.5 * base) * draws as f64;
        assert!(
            (hot as f64 - expected).abs() < draws as f64 * 0.03,
            "rank-0 frequency {hot} far from expected {expected:.0}"
        );
    }

    #[test]
    #[should_panic(expected = "hot_mass must be a probability")]
    fn hotspot_mass_must_be_a_probability() {
        let z = ZipfSampler::new(5, 0.5);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = z.sample_with_hotspot(&mut rng, 1.5);
    }
}
