//! Random chain-join query generation (Section 8 of the paper).

use crate::WorkloadSchema;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rjoin_query::{Conjunct, JoinQuery, QualifiedAttr, SelectItem, WindowSpec};

/// Generates k-way chain-join queries over a [`WorkloadSchema`].
///
/// The paper's queries have a `WHERE` clause of the form
/// `R.A = S.B AND S.C = J.F AND J.C = K.D`: a chain in which adjacent join
/// conjuncts share a relation, relations are pairwise distinct and relations
/// and attributes are chosen randomly per query.
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    schema: WorkloadSchema,
    joins: usize,
    window: WindowSpec,
    distinct: bool,
    rng: StdRng,
}

impl QueryGenerator {
    /// Creates a generator producing queries with `joins` join conjuncts
    /// (i.e. `joins + 1`-way joins), no window and bag semantics.
    ///
    /// # Panics
    /// Panics if `joins + 1` exceeds the number of relations in the schema
    /// (chain joins need pairwise distinct relations) or if `joins == 0`.
    pub fn new(schema: WorkloadSchema, joins: usize, seed: u64) -> Self {
        assert!(joins >= 1, "queries must contain at least one join");
        assert!(
            joins < schema.relation_count(),
            "a {}-way chain join needs {} distinct relations but the schema has {}",
            joins + 1,
            joins + 1,
            schema.relation_count()
        );
        QueryGenerator {
            schema,
            joins,
            window: WindowSpec::None,
            distinct: false,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Attaches a window declaration to every generated query.
    pub fn with_window(mut self, window: WindowSpec) -> Self {
        self.window = window;
        self
    }

    /// Requests `SELECT DISTINCT` queries (set semantics).
    pub fn with_distinct(mut self, distinct: bool) -> Self {
        self.distinct = distinct;
        self
    }

    /// Number of join conjuncts per query.
    pub fn joins(&self) -> usize {
        self.joins
    }

    /// Generates one chain-join query.
    pub fn generate(&mut self) -> JoinQuery {
        let relation_count = self.schema.relation_count();
        let attribute_count = self.schema.attribute_count();

        // Pick joins+1 pairwise distinct relations, in random order.
        let mut relation_indices: Vec<usize> = (0..relation_count).collect();
        relation_indices.shuffle(&mut self.rng);
        relation_indices.truncate(self.joins + 1);
        let relations: Vec<rjoin_relation::Name> =
            relation_indices.iter().map(|&i| self.schema.relation_name(i).into()).collect();

        // Chain conjuncts between consecutive relations.
        let mut conjuncts = Vec::with_capacity(self.joins);
        for pair in relations.windows(2) {
            let left_attr = self.schema.attribute_name(self.rng.gen_range(0..attribute_count));
            let right_attr = self.schema.attribute_name(self.rng.gen_range(0..attribute_count));
            conjuncts.push(Conjunct::JoinEq(
                QualifiedAttr::new(pair[0].clone(), left_attr),
                QualifiedAttr::new(pair[1].clone(), right_attr),
            ));
        }

        // SELECT two attributes from the two ends of the chain (mirroring the
        // paper's examples, e.g. `SELECT S.B, M.A`).
        let first = relations.first().expect("chain has at least two relations").clone();
        let last = relations.last().expect("chain has at least two relations").clone();
        let select = vec![
            SelectItem::Attr(QualifiedAttr::new(
                first,
                self.schema.attribute_name(self.rng.gen_range(0..attribute_count)),
            )),
            SelectItem::Attr(QualifiedAttr::new(
                last,
                self.schema.attribute_name(self.rng.gen_range(0..attribute_count)),
            )),
        ];

        JoinQuery::new(self.distinct, select, relations, conjuncts, self.window)
            .expect("generated chain joins are well-formed")
    }

    /// Generates `count` queries.
    pub fn generate_batch(&mut self, count: usize) -> Vec<JoinQuery> {
        (0..count).map(|_| self.generate()).collect()
    }

    /// Generates one *cyclic* query: `length` pairwise distinct relations
    /// joined in a closed cycle (`length` = 3 is the triangle
    /// `R.x = S.y AND S.z = T.u AND T.v = R.w`). Each relation's two
    /// incident conjuncts use **different** attributes of that relation, so
    /// every join-attribute equivalence class has exactly two members and
    /// sits in exactly two relations — the join graph has no GYO ear and is
    /// genuinely cyclic, never a star that collapses into one class.
    ///
    /// # Panics
    /// Panics if `length < 3`, if the schema has fewer than `length`
    /// relations, or fewer than 2 attributes per relation.
    pub fn generate_cycle(&mut self, length: usize) -> JoinQuery {
        assert!(length >= 3, "a cycle needs at least three relations");
        assert!(
            length <= self.schema.relation_count(),
            "a {length}-cycle needs {length} distinct relations but the schema has {}",
            self.schema.relation_count()
        );
        let attribute_count = self.schema.attribute_count();
        assert!(attribute_count >= 2, "cycles need two distinct attributes per relation");
        let relations = self.pick_relations(length);
        // For relation i: `inbound[i]` receives the closing edge from its
        // predecessor, `outbound[i]` opens the edge to its successor.
        let mut conjuncts = Vec::with_capacity(length);
        let attrs: Vec<(usize, usize)> = (0..length)
            .map(|_| {
                let inbound = self.rng.gen_range(0..attribute_count);
                let outbound =
                    (inbound + 1 + self.rng.gen_range(0..attribute_count - 1)) % attribute_count;
                (inbound, outbound)
            })
            .collect();
        for i in 0..length {
            let next = (i + 1) % length;
            conjuncts.push(Conjunct::JoinEq(
                QualifiedAttr::new(relations[i].clone(), self.schema.attribute_name(attrs[i].1)),
                QualifiedAttr::new(
                    relations[next].clone(),
                    self.schema.attribute_name(attrs[next].0),
                ),
            ));
        }
        let select = self.random_cyclic_select(&relations);
        JoinQuery::new(self.distinct, select, relations, conjuncts, self.window)
            .expect("generated cycles are well-formed")
    }

    /// Generates one *clique* query: every pair of `size` pairwise distinct
    /// relations is joined (`size` = 3 coincides with the triangle). The
    /// conjunct between relations at positions `i < j` uses attribute `j` on
    /// relation `i` and attribute `i` on relation `j`, so each relation's
    /// `size - 1` incident conjuncts use distinct attributes and the join
    /// graph is cyclic for every `size >= 3`.
    ///
    /// # Panics
    /// Panics if `size < 3`, or if the schema has fewer than `size`
    /// relations or fewer than `size` attributes per relation.
    pub fn generate_clique(&mut self, size: usize) -> JoinQuery {
        assert!(size >= 3, "a clique needs at least three relations");
        assert!(
            size <= self.schema.relation_count(),
            "a {size}-clique needs {size} distinct relations but the schema has {}",
            self.schema.relation_count()
        );
        assert!(
            size <= self.schema.attribute_count(),
            "a {size}-clique needs {size} attributes per relation but the schema has {}",
            self.schema.attribute_count()
        );
        let relations = self.pick_relations(size);
        let mut conjuncts = Vec::with_capacity(size * (size - 1) / 2);
        for i in 0..size {
            for j in (i + 1)..size {
                conjuncts.push(Conjunct::JoinEq(
                    QualifiedAttr::new(relations[i].clone(), self.schema.attribute_name(j)),
                    QualifiedAttr::new(relations[j].clone(), self.schema.attribute_name(i)),
                ));
            }
        }
        let select = self.random_cyclic_select(&relations);
        JoinQuery::new(self.distinct, select, relations, conjuncts, self.window)
            .expect("generated cliques are well-formed")
    }

    /// Generates `count` cyclic queries of the given cycle length.
    pub fn generate_cycle_batch(&mut self, count: usize, length: usize) -> Vec<JoinQuery> {
        (0..count).map(|_| self.generate_cycle(length)).collect()
    }

    /// Picks `n` pairwise distinct relations in random order.
    fn pick_relations(&mut self, n: usize) -> Vec<rjoin_relation::Name> {
        let mut relation_indices: Vec<usize> = (0..self.schema.relation_count()).collect();
        relation_indices.shuffle(&mut self.rng);
        relation_indices.truncate(n);
        relation_indices.iter().map(|&i| self.schema.relation_name(i).into()).collect()
    }

    /// A random two-attribute `SELECT` list over two distinct relations of a
    /// cyclic query (cycles have no "ends", so any two positions serve).
    fn random_cyclic_select(&mut self, relations: &[rjoin_relation::Name]) -> Vec<SelectItem> {
        let attribute_count = self.schema.attribute_count();
        let first = self.rng.gen_range(0..relations.len());
        let offset = 1 + self.rng.gen_range(0..relations.len() - 1);
        let second = (first + offset) % relations.len();
        vec![
            SelectItem::Attr(QualifiedAttr::new(
                relations[first].clone(),
                self.schema.attribute_name(self.rng.gen_range(0..attribute_count)),
            )),
            SelectItem::Attr(QualifiedAttr::new(
                relations[second].clone(),
                self.schema.attribute_name(self.rng.gen_range(0..attribute_count)),
            )),
        ]
    }

    /// Generates `count` queries that share `patterns` distinct sub-join
    /// structures — the overlap knob of a multi-query workload.
    ///
    /// First `patterns` base chain joins are generated; each of the `count`
    /// output queries then reuses base `i % patterns` (same `FROM`, `WHERE`
    /// and window — an identical sub-join fingerprint) with a **fresh random
    /// `SELECT` list**, so the queries are genuinely different continuous
    /// queries that a shared sub-join registry can nevertheless evaluate
    /// once. `patterns` is clamped to `count` (more patterns than queries
    /// degenerates to no overlap).
    ///
    /// # Panics
    /// Panics if `patterns == 0` while `count > 0`.
    pub fn generate_overlapping_batch(&mut self, count: usize, patterns: usize) -> Vec<JoinQuery> {
        if count == 0 {
            return Vec::new();
        }
        assert!(patterns > 0, "an overlapping batch needs at least one pattern");
        let patterns = patterns.min(count);
        let bases = self.generate_batch(patterns);
        (0..count)
            .map(|i| {
                let base = &bases[i % patterns];
                let select = self.random_select_for(base);
                base.clone()
                    .with_select(select)
                    .expect("random SELECT lists reference FROM relations only")
            })
            .collect()
    }

    /// A random two-attribute `SELECT` list over the ends of a chain join
    /// (the same shape [`generate`](Self::generate) produces).
    fn random_select_for(&mut self, query: &JoinQuery) -> Vec<SelectItem> {
        let attribute_count = self.schema.attribute_count();
        let first = query.relations().first().expect("chain joins are non-empty").clone();
        let last = query.relations().last().expect("chain joins are non-empty").clone();
        vec![
            SelectItem::Attr(QualifiedAttr::new(
                first,
                self.schema.attribute_name(self.rng.gen_range(0..attribute_count)),
            )),
            SelectItem::Attr(QualifiedAttr::new(
                last,
                self.schema.attribute_name(self.rng.gen_range(0..attribute_count)),
            )),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_join_count() {
        for joins in [1, 3, 5, 7] {
            let mut g = QueryGenerator::new(WorkloadSchema::paper_default(), joins, 11);
            for q in g.generate_batch(50) {
                assert_eq!(q.join_count(), joins);
                assert_eq!(q.relations().len(), joins + 1);
            }
        }
    }

    #[test]
    fn adjacent_joins_share_a_relation() {
        let mut g = QueryGenerator::new(WorkloadSchema::paper_default(), 3, 5);
        for q in g.generate_batch(100) {
            let conjuncts = q.conjuncts();
            for pair in conjuncts.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                let shares =
                    a.attrs().iter().any(|x| b.attrs().iter().any(|y| y.relation == x.relation));
                assert!(shares, "adjacent conjuncts must share a relation: {a} / {b}");
            }
        }
    }

    #[test]
    fn queries_validate_against_catalog() {
        let schema = WorkloadSchema::paper_default();
        let catalog = schema.build_catalog();
        let mut g = QueryGenerator::new(schema, 3, 9);
        for q in g.generate_batch(200) {
            q.validate(&catalog).unwrap();
        }
    }

    #[test]
    fn window_and_distinct_are_propagated() {
        let mut g = QueryGenerator::new(WorkloadSchema::paper_default(), 2, 4)
            .with_window(WindowSpec::sliding_tuples(50))
            .with_distinct(true);
        let q = g.generate();
        assert_eq!(*q.window(), WindowSpec::sliding_tuples(50));
        assert!(q.distinct());
    }

    #[test]
    fn same_seed_same_queries() {
        let mut a = QueryGenerator::new(WorkloadSchema::paper_default(), 3, 77);
        let mut b = QueryGenerator::new(WorkloadSchema::paper_default(), 3, 77);
        assert_eq!(a.generate_batch(20), b.generate_batch(20));
    }

    #[test]
    #[should_panic(expected = "distinct relations")]
    fn too_many_joins_for_schema_panics() {
        let _ = QueryGenerator::new(WorkloadSchema::new(3, 3, 10), 5, 0);
    }

    #[test]
    fn overlapping_batch_shares_subjoin_structures() {
        let mut g = QueryGenerator::new(WorkloadSchema::paper_default(), 3, 42);
        let queries = g.generate_overlapping_batch(24, 4);
        assert_eq!(queries.len(), 24);
        // Every query with the same pattern index shares the sub-join
        // fingerprint of its base...
        let fps: Vec<_> = queries.iter().map(rjoin_query::fingerprint).collect();
        for (i, fp) in fps.iter().enumerate() {
            assert_eq!(fp, &fps[i % 4], "query {i} must share its base pattern");
        }
        // ...and the 4 patterns are pairwise distinct.
        let mut distinct = fps[..4].to_vec();
        distinct.sort();
        distinct.dedup();
        assert_eq!(distinct.len(), 4);
        // The queries themselves are not all identical: SELECT lists vary.
        let unique_selects: std::collections::BTreeSet<String> =
            queries.iter().map(|q| format!("{:?}", q.select())).collect();
        assert!(unique_selects.len() > 4, "SELECT lists should vary within a pattern");
        // All stay valid against the catalog.
        let catalog = WorkloadSchema::paper_default().build_catalog();
        for q in &queries {
            q.validate(&catalog).unwrap();
        }
    }

    #[test]
    fn cycles_are_cyclic_valid_and_reproducible() {
        let schema = WorkloadSchema::new(5, 3, 10);
        let catalog = schema.build_catalog();
        let mut g = QueryGenerator::new(schema.clone(), 1, 31);
        for length in [3, 4, 5] {
            for q in g.generate_cycle_batch(40, length) {
                assert_eq!(q.join_count(), length);
                assert_eq!(q.relations().len(), length);
                q.validate(&catalog).unwrap();
                assert_eq!(
                    rjoin_query::classify_shape(&q),
                    rjoin_query::QueryShape::Cyclic,
                    "generated {length}-cycle must classify as cyclic: {q}"
                );
            }
        }
        let mut a = QueryGenerator::new(schema.clone(), 1, 9);
        let mut b = QueryGenerator::new(schema, 1, 9);
        assert_eq!(a.generate_cycle_batch(10, 4), b.generate_cycle_batch(10, 4));
    }

    #[test]
    fn cliques_are_cyclic_and_valid() {
        let schema = WorkloadSchema::new(5, 5, 10);
        let catalog = schema.build_catalog();
        let mut g = QueryGenerator::new(schema, 1, 17);
        for size in [3, 4, 5] {
            let q = g.generate_clique(size);
            assert_eq!(q.join_count(), size * (size - 1) / 2);
            q.validate(&catalog).unwrap();
            assert_eq!(
                rjoin_query::classify_shape(&q),
                rjoin_query::QueryShape::Cyclic,
                "generated {size}-clique must classify as cyclic: {q}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn two_cycles_are_rejected() {
        let _ = QueryGenerator::new(WorkloadSchema::new(4, 3, 10), 1, 0).generate_cycle(2);
    }

    #[test]
    fn overlapping_batch_edge_cases() {
        let mut g = QueryGenerator::new(WorkloadSchema::paper_default(), 2, 1);
        assert!(g.generate_overlapping_batch(0, 3).is_empty());
        // More patterns than queries degenerates gracefully.
        let qs = g.generate_overlapping_batch(3, 10);
        assert_eq!(qs.len(), 3);
        // Deterministic under the same seed.
        let mut a = QueryGenerator::new(WorkloadSchema::paper_default(), 3, 7);
        let mut b = QueryGenerator::new(WorkloadSchema::paper_default(), 3, 7);
        assert_eq!(a.generate_overlapping_batch(12, 3), b.generate_overlapping_batch(12, 3));
    }
}
