//! The experimental schema of the paper: 10 relations × 10 attributes, each
//! attribute drawing from a domain of 100 values.

use rjoin_relation::{Catalog, Schema};
use serde::{Deserialize, Serialize};

/// The workload schema: a set of uniformly shaped relations plus the size of
/// the shared value domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSchema {
    relations: usize,
    attributes: usize,
    domain: i64,
}

impl WorkloadSchema {
    /// The paper's default: 10 relations, 10 attributes each, 100 values per
    /// attribute.
    pub fn paper_default() -> Self {
        WorkloadSchema { relations: 10, attributes: 10, domain: 100 }
    }

    /// A custom schema shape.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(relations: usize, attributes: usize, domain: i64) -> Self {
        assert!(
            relations > 0 && attributes > 0 && domain > 0,
            "schema dimensions must be positive"
        );
        WorkloadSchema { relations, attributes, domain }
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations
    }

    /// Number of attributes per relation.
    pub fn attribute_count(&self) -> usize {
        self.attributes
    }

    /// Size of the value domain (values are `0..domain`).
    pub fn domain(&self) -> i64 {
        self.domain
    }

    /// Name of the `i`-th relation (`R0`, `R1`, ...).
    pub fn relation_name(&self, i: usize) -> String {
        format!("R{i}")
    }

    /// Name of the `j`-th attribute (`A0`, `A1`, ...).
    pub fn attribute_name(&self, j: usize) -> String {
        format!("A{j}")
    }

    /// Builds the catalog containing every relation of this schema.
    pub fn build_catalog(&self) -> Catalog {
        let mut catalog = Catalog::new();
        for i in 0..self.relations {
            let attrs: Vec<String> = (0..self.attributes).map(|j| self.attribute_name(j)).collect();
            let schema = Schema::new(self.relation_name(i), attrs)
                .expect("generated schema names are valid identifiers");
            catalog.register(schema).expect("generated relation names are unique");
        }
        catalog
    }
}

impl Default for WorkloadSchema {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_8() {
        let ws = WorkloadSchema::paper_default();
        assert_eq!(ws.relation_count(), 10);
        assert_eq!(ws.attribute_count(), 10);
        assert_eq!(ws.domain(), 100);
        let catalog = ws.build_catalog();
        assert_eq!(catalog.len(), 10);
        let r0 = catalog.schema("R0").unwrap();
        assert_eq!(r0.arity(), 10);
        assert_eq!(r0.attribute(0), Some("A0"));
        assert_eq!(r0.attribute(9), Some("A9"));
    }

    #[test]
    fn custom_shape() {
        let ws = WorkloadSchema::new(3, 2, 5);
        let catalog = ws.build_catalog();
        assert_eq!(catalog.len(), 3);
        assert_eq!(catalog.schema("R2").unwrap().arity(), 2);
        assert!(catalog.schema("R3").is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = WorkloadSchema::new(0, 10, 100);
    }
}
