//! Workload generation for the RJoin experiments.
//!
//! Section 8 of the paper describes the workload used throughout the
//! evaluation:
//!
//! * a schema of **10 relations, each with 10 attributes**, every attribute
//!   drawing values from a domain of **100 values**;
//! * tuples are created by choosing a relation with a **Zipf** distribution
//!   and assigning each attribute a value drawn from a Zipf distribution
//!   (default θ = 0.9, i.e. highly skewed);
//! * queries are **k-way chain joins** (default k = 4) of the form
//!   `R.A = S.B AND S.C = J.F AND J.C = K.D`, where adjacent joins share a
//!   relation, and relations/attributes are chosen randomly per query.
//!
//! This crate reproduces those generators deterministically (seeded) so
//! experiments are repeatable:
//!
//! * [`ZipfSampler`] — the skewed distribution,
//! * [`WorkloadSchema`] — the 10×10×100 default schema (configurable),
//! * [`TupleGenerator`] — random tuples,
//! * [`QueryGenerator`] — random chain-join queries,
//! * [`Scenario`] — a bundle of all workload parameters used by the
//!   experiment harness.

mod query_gen;
mod scenario;
mod schema_gen;
mod tuple_gen;
mod zipf;

pub use query_gen::QueryGenerator;
pub use scenario::Scenario;
pub use schema_gen::WorkloadSchema;
pub use tuple_gen::TupleGenerator;
pub use zipf::ZipfSampler;
