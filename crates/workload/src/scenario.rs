//! Scenario descriptions: the workload side of an experiment.

use crate::{QueryGenerator, TupleGenerator, WorkloadSchema};
use rjoin_query::JoinQuery;
use rjoin_query::WindowSpec;
use rjoin_relation::Tuple;
use serde::{Deserialize, Serialize};

/// A complete workload description for one experiment run: schema shape,
/// skew, query shape and counts. The paper's default scenario (Section 8) is
/// [`Scenario::paper_default`]: 10 relations × 10 attributes × 100 values,
/// θ = 0.9, 2·10^4 4-way join queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of DHT nodes.
    pub nodes: usize,
    /// Number of continuous queries to submit.
    pub queries: usize,
    /// Number of tuples to publish.
    pub tuples: usize,
    /// Join conjuncts per query (`joins + 1`-way joins).
    pub joins: usize,
    /// Cyclic-shape knob: `0` generates the paper's acyclic chain joins;
    /// `k >= 3` generates `k`-cycle queries instead (`joins` is then
    /// ignored — a `k`-cycle always has `k` conjuncts).
    pub cycle: usize,
    /// Zipf skew θ used for relation and value choice.
    pub theta: f64,
    /// Hot-key knob: this fraction of relation/value draws collapses onto
    /// rank 0 on top of the Zipf skew, manufacturing a point-mass key
    /// (0.0 = the plain paper workload; see
    /// [`TupleGenerator::with_hot_fraction`]).
    pub hot_fraction: f64,
    /// Window declaration attached to every query.
    pub window: WindowSpec,
    /// Whether queries use `SELECT DISTINCT` (set semantics).
    pub distinct: bool,
    /// Relations in the schema.
    pub relations: usize,
    /// Attributes per relation.
    pub attributes: usize,
    /// Value-domain size.
    pub domain: i64,
    /// RNG seed; two runs with equal scenarios produce identical workloads.
    pub seed: u64,
}

impl Scenario {
    /// The default workload of Section 8: 10^3 nodes, 2·10^4 4-way join
    /// queries, θ = 0.9, no windows.
    pub fn paper_default() -> Self {
        Scenario {
            nodes: 1000,
            queries: 20_000,
            tuples: 400,
            joins: 3,
            cycle: 0,
            theta: 0.9,
            hot_fraction: 0.0,
            window: WindowSpec::None,
            distinct: false,
            relations: 10,
            attributes: 10,
            domain: 100,
            seed: 0xEDB7_2008,
        }
    }

    /// A small scenario suitable for unit/integration tests (runs in
    /// milliseconds).
    pub fn small_test() -> Self {
        Scenario {
            nodes: 32,
            queries: 100,
            tuples: 60,
            joins: 3,
            cycle: 0,
            theta: 0.9,
            hot_fraction: 0.0,
            window: WindowSpec::None,
            distinct: false,
            relations: 10,
            attributes: 10,
            domain: 100,
            seed: 7,
        }
    }

    /// The skew scenario of the hot-key splitting experiments: a small
    /// dense workload with the given Zipf θ **plus** a 50% hotspot mass, so
    /// the head relation/value pair is a genuine point mass that identifier
    /// movement cannot divide (at θ = 0.9 the hottest key carries a double-
    /// digit share of the whole run's per-key load). Used by the `skew`
    /// bench group, the Figure 9 extension and the split-vs-unsplit oracle
    /// suite.
    pub fn skew_test(theta: f64) -> Self {
        Scenario {
            nodes: 64,
            queries: 120,
            tuples: 100,
            joins: 2,
            theta,
            hot_fraction: 0.5,
            relations: 4,
            attributes: 3,
            domain: 32,
            seed: 0x5EED_5111,
            ..Scenario::small_test()
        }
    }

    /// The long-horizon scale scenario of ROADMAP Open item 4: 512 nodes,
    /// 10⁴ standing queries and 10⁵ tuples whose publication times span 10⁵
    /// in-simulation ticks — over a thousand window-lengths of history, so
    /// by the end of the run almost all state ever stored is *expired* state. Engines
    /// whose per-trigger cost scales with total stored state (bucket clones,
    /// registry rebuilds, unswept ALTT buckets) degrade over the horizon;
    /// an O(active) engine stays flat. Windows are sliding so expiry is
    /// continuous rather than bucketed, and the domain is kept small enough
    /// that keys stay collision-rich (buckets hold many entries).
    pub fn scale_test() -> Self {
        Scenario {
            nodes: 512,
            queries: 10_000,
            tuples: 100_000,
            joins: 2,
            cycle: 0,
            theta: 0.9,
            hot_fraction: 0.0,
            window: WindowSpec::sliding_tuples(64),
            distinct: false,
            relations: 10,
            attributes: 10,
            domain: 200,
            seed: 0x5CA1_E007,
        }
    }

    /// A small cyclic-workload preset: triangle queries over a dense
    /// 4-relation schema with a tiny value domain, so the three-way cyclic
    /// matches actually occur within a 60-tuple run. This is the workload
    /// of the `cyclic` bench group and the hypercube oracle suite — every
    /// generated query is rejected by the rewrite pipeline's planner leg
    /// and must take the hypercube plan.
    pub fn cyclic_test() -> Self {
        Scenario {
            nodes: 32,
            queries: 12,
            tuples: 60,
            joins: 3,
            cycle: 3,
            theta: 0.9,
            hot_fraction: 0.0,
            window: WindowSpec::None,
            distinct: false,
            relations: 4,
            attributes: 3,
            domain: 6,
            seed: 0xC1C1_E007,
        }
    }

    /// The schema shape of this scenario.
    pub fn workload_schema(&self) -> WorkloadSchema {
        WorkloadSchema::new(self.relations, self.attributes, self.domain)
    }

    /// Builds the query generator for this scenario.
    pub fn query_generator(&self) -> QueryGenerator {
        QueryGenerator::new(self.workload_schema(), self.joins, self.seed ^ 0x51)
            .with_window(self.window)
            .with_distinct(self.distinct)
    }

    /// Builds the tuple generator for this scenario.
    pub fn tuple_generator(&self) -> TupleGenerator {
        TupleGenerator::new(self.workload_schema(), self.theta, self.seed ^ 0x7e)
            .with_hot_fraction(self.hot_fraction)
    }

    /// Generates the full list of queries for this scenario: chain joins by
    /// default, `cycle`-length cyclic queries when the cyclic knob is set.
    pub fn generate_queries(&self) -> Vec<JoinQuery> {
        if self.cycle >= 3 {
            self.query_generator().generate_cycle_batch(self.queries, self.cycle)
        } else {
            self.query_generator().generate_batch(self.queries)
        }
    }

    /// Generates this scenario's queries with an **overlap knob**: the
    /// `queries` continuous queries share `patterns` distinct sub-join
    /// structures (identical `FROM`/`WHERE`/window, fresh random `SELECT`
    /// lists). This is the workload that shared sub-join evaluation is
    /// benchmarked and oracle-tested on.
    pub fn generate_overlapping_queries(&self, patterns: usize) -> Vec<JoinQuery> {
        self.query_generator().generate_overlapping_batch(self.queries, patterns)
    }

    /// Generates the full list of tuples for this scenario with publication
    /// times starting at `start_time`.
    pub fn generate_tuples(&self, start_time: u64) -> Vec<Tuple> {
        self.tuple_generator().generate_batch(self.tuples, start_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_8() {
        let s = Scenario::paper_default();
        assert_eq!(s.nodes, 1000);
        assert_eq!(s.queries, 20_000);
        assert_eq!(s.joins, 3); // 4-way joins
        assert!((s.theta - 0.9).abs() < f64::EPSILON);
        assert_eq!(s.relations, 10);
        assert_eq!(s.attributes, 10);
        assert_eq!(s.domain, 100);
    }

    #[test]
    fn generators_are_consistent_with_counts() {
        let s = Scenario::small_test();
        assert_eq!(s.generate_queries().len(), s.queries);
        assert_eq!(s.generate_tuples(10).len(), s.tuples);
    }

    #[test]
    fn scenario_is_reproducible() {
        let s = Scenario::small_test();
        assert_eq!(s.generate_queries(), s.generate_queries());
        assert_eq!(s.generate_tuples(0), s.generate_tuples(0));
    }

    #[test]
    fn serde_round_trip() {
        let s = Scenario::small_test();
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back.queries, s.queries);
        assert_eq!(back.window, s.window);
    }

    #[test]
    fn scale_preset_is_a_long_horizon_windowed_workload() {
        let s = Scenario::scale_test();
        assert_eq!(s.nodes, 512);
        assert_eq!(s.queries, 10_000);
        assert_eq!(s.tuples, 100_000);
        // One tuple per tick: the horizon spans tuples/window ≫ 1 window-
        // lengths, so expired state dominates stored state by the end.
        match s.window {
            WindowSpec::Sliding { kind: _, duration } => {
                assert!(duration > 0 && s.tuples as u64 / duration > 1_000);
            }
            other => panic!("scale preset must use a sliding window, got {other:?}"),
        }
        assert!(!s.distinct, "dedup would cap answer growth and mask state pressure");
    }

    #[test]
    fn cyclic_preset_generates_triangles() {
        let s = Scenario::cyclic_test();
        assert_eq!(s.cycle, 3);
        let queries = s.generate_queries();
        assert_eq!(queries.len(), s.queries);
        let catalog = s.workload_schema().build_catalog();
        for q in &queries {
            assert_eq!(q.join_count(), 3);
            assert_eq!(q.relations().len(), 3);
            q.validate(&catalog).unwrap();
            assert_eq!(rjoin_query::classify_shape(q), rjoin_query::QueryShape::Cyclic);
        }
        assert_eq!(queries, s.generate_queries(), "cyclic workloads must be reproducible");
    }

    #[test]
    fn skew_preset_has_a_hotspot_and_stays_reproducible() {
        let s = Scenario::skew_test(0.9);
        assert!((s.theta - 0.9).abs() < f64::EPSILON);
        assert!(s.hot_fraction > 0.0, "the skew preset must carry the hot-key knob");
        assert_eq!(s.generate_tuples(0), s.generate_tuples(0));
        // The hotspot shows: a large share of tuples is the head relation.
        let tuples = s.generate_tuples(0);
        let head = tuples.iter().filter(|t| t.relation() == "R0").count();
        assert!(head * 2 > tuples.len(), "hotspot must dominate the relation choice");
    }
}
