//! Random tuple generation (Section 8 of the paper).

use crate::{WorkloadSchema, ZipfSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rjoin_relation::{Timestamp, Tuple, Value};

/// Generates tuples the way the paper's experiments do: the relation is
/// chosen with a Zipf distribution over the schema's relations, and every
/// attribute value is chosen with a Zipf distribution over the value domain.
///
/// The optional **hot fraction** ([`with_hot_fraction`](Self::with_hot_fraction))
/// additionally collapses that share of relation and value draws onto rank
/// 0, manufacturing the point-mass keys the hot-key splitting experiments
/// need (Zipf alone spreads even θ = 0.9 mass over several head ranks).
#[derive(Debug, Clone)]
pub struct TupleGenerator {
    schema: WorkloadSchema,
    relation_sampler: ZipfSampler,
    value_sampler: ZipfSampler,
    hot_fraction: f64,
    rng: StdRng,
}

impl TupleGenerator {
    /// Creates a generator with the given skew θ (used for both the relation
    /// choice and the value choice, as in the paper) and RNG seed.
    pub fn new(schema: WorkloadSchema, theta: f64, seed: u64) -> Self {
        let relation_sampler = ZipfSampler::new(schema.relation_count(), theta);
        let value_sampler = ZipfSampler::new(schema.domain() as usize, theta);
        TupleGenerator {
            schema,
            relation_sampler,
            value_sampler,
            hot_fraction: 0.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sets the hot-key knob: this fraction of relation/value draws
    /// collapses onto rank 0 (see [`ZipfSampler::sample_with_hotspot`]).
    /// `0.0` (the default) is bit-identical to the plain paper workload.
    pub fn with_hot_fraction(mut self, hot_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&hot_fraction), "hot_fraction must be a probability");
        self.hot_fraction = hot_fraction;
        self
    }

    /// The workload schema this generator draws from.
    pub fn schema(&self) -> &WorkloadSchema {
        &self.schema
    }

    /// Generates one tuple published at `pub_time`.
    pub fn generate(&mut self, pub_time: Timestamp) -> Tuple {
        let relation_idx =
            self.relation_sampler.sample_with_hotspot(&mut self.rng, self.hot_fraction);
        let relation = self.schema.relation_name(relation_idx);
        let values: Vec<Value> = (0..self.schema.attribute_count())
            .map(|_| {
                Value::Int(
                    self.value_sampler.sample_with_hotspot(&mut self.rng, self.hot_fraction) as i64
                )
            })
            .collect();
        Tuple::new(relation, values, pub_time)
    }

    /// Generates `count` tuples with publication times `start, start+1, ...`.
    pub fn generate_batch(&mut self, count: usize, start: Timestamp) -> Vec<Tuple> {
        (0..count).map(|i| self.generate(start + i as Timestamp)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn tuples_respect_schema_and_domain() {
        let mut g = TupleGenerator::new(WorkloadSchema::paper_default(), 0.9, 1);
        let catalog = g.schema().build_catalog();
        for t in g.generate_batch(200, 0) {
            catalog.validate_tuple(&t).unwrap();
            for v in t.values() {
                let x = v.as_int().unwrap();
                assert!((0..100).contains(&x));
            }
        }
    }

    #[test]
    fn publication_times_are_sequential() {
        let mut g = TupleGenerator::new(WorkloadSchema::paper_default(), 0.5, 2);
        let batch = g.generate_batch(10, 100);
        let times: Vec<u64> = batch.iter().map(|t| t.pub_time()).collect();
        assert_eq!(times, (100..110).collect::<Vec<_>>());
    }

    #[test]
    fn skew_concentrates_relations() {
        let mut g = TupleGenerator::new(WorkloadSchema::paper_default(), 0.9, 3);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for t in g.generate_batch(5000, 0) {
            *counts.entry(t.relation().to_string()).or_insert(0) += 1;
        }
        let r0 = counts.get("R0").copied().unwrap_or(0);
        let r9 = counts.get("R9").copied().unwrap_or(0);
        assert!(r0 > r9, "Zipf should favour the first relation: R0={r0}, R9={r9}");
    }

    #[test]
    fn same_seed_same_tuples() {
        let mut a = TupleGenerator::new(WorkloadSchema::paper_default(), 0.9, 7);
        let mut b = TupleGenerator::new(WorkloadSchema::paper_default(), 0.9, 7);
        assert_eq!(a.generate_batch(50, 0), b.generate_batch(50, 0));
    }

    #[test]
    fn hot_fraction_concentrates_the_head_key() {
        let mut plain = TupleGenerator::new(WorkloadSchema::paper_default(), 0.9, 9);
        let mut hot =
            TupleGenerator::new(WorkloadSchema::paper_default(), 0.9, 9).with_hot_fraction(0.6);
        let head = |batch: Vec<Tuple>| {
            batch
                .iter()
                .filter(|t| t.relation() == "R0" && t.value(0) == Some(&Value::Int(0)))
                .count()
        };
        let plain_head = head(plain.generate_batch(2000, 0));
        let hot_head = head(hot.generate_batch(2000, 0));
        assert!(
            hot_head > plain_head * 3,
            "the hot fraction must concentrate R0 value-0 tuples ({hot_head} vs {plain_head})"
        );
    }
}
