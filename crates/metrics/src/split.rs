//! Observability counters for hot-key splitting (share-based partitioning).

use serde::{Deserialize, Serialize};

/// Counters describing what the hot-key splitting subsystem did during a
/// run: how many keys crossed the heavy-hitter threshold, how much state
/// was migrated when their partitions were activated, and how much extra
/// routing work the split cost (tuples steered to one sub-key, query copies
/// fanned out to every sub-key).
///
/// All counters are cumulative over a run and stay zero when splitting is
/// disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitCounters {
    /// Keys whose observed heat crossed the threshold and were split.
    pub keys_split: u64,
    /// Sub-keys created in total (`Σ` partition counts over split keys).
    pub partitions_created: u64,
    /// Tuple index copies routed through a split key's grid (whatever the
    /// shape) instead of to the base key.
    pub tuples_routed: u64,
    /// Extra tuple copies sent because a tuple is indexed at every cell of
    /// its content row (`cols - 1` per index copy; 0 for a pure
    /// tuple-partitioned `(s, 1)` grid).
    pub tuple_fanout: u64,
    /// Extra query copies sent because a query registers at every cell of
    /// its identity column (`rows - 1` per dispatch; 0 for a pure
    /// query-partitioned `(1, s)` grid).
    pub query_fanout: u64,
    /// Stored-query replicas created when a split activated (each
    /// pre-existing entry is cloned to the `rows` cells of its identity
    /// column).
    pub migrated_queries: u64,
    /// Stored value-level tuple / ALTT replicas created when a split
    /// activated (each entry is copied to the `cols` cells of its content
    /// row).
    pub migrated_tuples: u64,
}

impl SplitCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any key was ever split.
    pub fn any_splits(&self) -> bool {
        self.keys_split > 0
    }

    /// Adds another instance's counts into this one (per-shard tallies →
    /// run totals).
    pub fn merge(&mut self, other: &SplitCounters) {
        self.keys_split += other.keys_split;
        self.partitions_created += other.partitions_created;
        self.tuples_routed += other.tuples_routed;
        self.tuple_fanout += other.tuple_fanout;
        self.query_fanout += other.query_fanout;
        self.migrated_queries += other.migrated_queries;
        self.migrated_tuples += other.migrated_tuples;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SplitCounters { keys_split: 1, partitions_created: 4, ..Default::default() };
        let b = SplitCounters {
            keys_split: 2,
            partitions_created: 8,
            tuples_routed: 10,
            tuple_fanout: 12,
            query_fanout: 30,
            migrated_queries: 5,
            migrated_tuples: 7,
        };
        a.merge(&b);
        assert_eq!(a.keys_split, 3);
        assert_eq!(a.partitions_created, 12);
        assert_eq!(a.tuples_routed, 10);
        assert_eq!(a.tuple_fanout, 12);
        assert_eq!(a.query_fanout, 30);
        assert_eq!(a.migrated_queries, 5);
        assert_eq!(a.migrated_tuples, 7);
        assert!(a.any_splits());
        assert!(!SplitCounters::new().any_splits());
    }

    #[test]
    fn serde_round_trip() {
        let c = SplitCounters { keys_split: 2, tuples_routed: 9, ..Default::default() };
        let v = c.serialize_json();
        let back = SplitCounters::deserialize_json(&v).unwrap();
        assert_eq!(back, c);
    }
}
