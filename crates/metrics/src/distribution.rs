//! Ranked-node distributions and summary statistics.

use serde::{Deserialize, Serialize};

/// A distribution of per-node loads, as plotted in the paper's
/// "ranked nodes" figures (nodes sorted from most to least loaded on the
/// x-axis, load on the y-axis, log scales).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    /// Values sorted in descending order.
    ranked: Vec<u64>,
}

impl Distribution {
    /// Builds a distribution from unordered per-node values.
    pub fn from_values<I: IntoIterator<Item = u64>>(values: I) -> Self {
        let mut ranked: Vec<u64> = values.into_iter().collect();
        ranked.sort_unstable_by(|a, b| b.cmp(a));
        Distribution { ranked }
    }

    /// Values ranked from most to least loaded.
    pub fn ranked(&self) -> &[u64] {
        &self.ranked
    }

    /// Number of values (nodes).
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// Whether the distribution is empty.
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }

    /// The largest value (the most loaded node), or 0 for an empty
    /// distribution.
    pub fn max(&self) -> u64 {
        self.ranked.first().copied().unwrap_or(0)
    }

    /// The smallest value, or 0 for an empty distribution.
    pub fn min(&self) -> u64 {
        self.ranked.last().copied().unwrap_or(0)
    }

    /// Sum of all values.
    pub fn total(&self) -> u64 {
        self.ranked.iter().sum()
    }

    /// Arithmetic mean (0 for an empty distribution).
    pub fn mean(&self) -> f64 {
        if self.ranked.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.ranked.len() as f64
        }
    }

    /// Number of nodes with a non-zero load ("participating nodes" in the
    /// paper's discussion of Figures 3 and 9).
    pub fn participants(&self) -> usize {
        self.ranked.iter().filter(|v| **v > 0).count()
    }

    /// The value at percentile `p` (0.0–100.0) using the nearest-rank
    /// definition over the *ascending* order, so `percentile(50.0)` is the
    /// median and `percentile(100.0)` the maximum.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.ranked.is_empty() {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let n = self.ranked.len();
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
        // ranked is descending; ascending index = n - rank.
        self.ranked[n - rank]
    }

    /// The value of the node at the given rank (0 = most loaded), or 0 if
    /// out of range.
    pub fn at_rank(&self, rank: usize) -> u64 {
        self.ranked.get(rank).copied().unwrap_or(0)
    }

    /// Gini coefficient of the distribution (0 = perfectly balanced,
    /// approaching 1 = one node carries everything). Used to compare load
    /// balance across configurations.
    pub fn gini(&self) -> f64 {
        let n = self.ranked.len();
        if n == 0 {
            return 0.0;
        }
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        // Ascending order for the standard formula.
        let mut asc = self.ranked.clone();
        asc.reverse();
        let mut weighted = 0.0f64;
        for (i, &v) in asc.iter().enumerate() {
            weighted += (i as f64 + 1.0) * v as f64;
        }
        (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
    }

    /// Downsamples the ranked curve to at most `points` evenly spaced ranks,
    /// returning `(rank, value)` pairs — convenient for printing figure
    /// series without emitting thousands of rows.
    pub fn sampled_curve(&self, points: usize) -> Vec<(usize, u64)> {
        if self.ranked.is_empty() || points == 0 {
            return Vec::new();
        }
        if self.ranked.len() <= points {
            return self.ranked.iter().copied().enumerate().collect();
        }
        let step = self.ranked.len() as f64 / points as f64;
        let mut curve = Vec::with_capacity(points);
        for i in 0..points {
            let rank = (i as f64 * step) as usize;
            curve.push((rank, self.ranked[rank]));
        }
        // Always include the last (least loaded) rank.
        let last = self.ranked.len() - 1;
        if curve.last().map(|(r, _)| *r) != Some(last) {
            curve.push((last, self.ranked[last]));
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_and_summary_stats() {
        let d = Distribution::from_values([5, 1, 0, 9, 3]);
        assert_eq!(d.ranked(), &[9, 5, 3, 1, 0]);
        assert_eq!(d.len(), 5);
        assert_eq!(d.max(), 9);
        assert_eq!(d.min(), 0);
        assert_eq!(d.total(), 18);
        assert!((d.mean() - 3.6).abs() < 1e-9);
        assert_eq!(d.participants(), 4);
        assert_eq!(d.at_rank(0), 9);
        assert_eq!(d.at_rank(10), 0);
    }

    #[test]
    fn empty_distribution_is_well_behaved() {
        let d = Distribution::from_values(Vec::<u64>::new());
        assert!(d.is_empty());
        assert_eq!(d.max(), 0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.percentile(50.0), 0);
        assert_eq!(d.gini(), 0.0);
        assert!(d.sampled_curve(10).is_empty());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let d = Distribution::from_values([10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(d.percentile(100.0), 100);
        assert_eq!(d.percentile(50.0), 50);
        assert_eq!(d.percentile(10.0), 10);
        assert_eq!(d.percentile(0.0), 10); // clamps to the first rank
    }

    #[test]
    fn gini_detects_imbalance() {
        let balanced = Distribution::from_values([10, 10, 10, 10]);
        let skewed = Distribution::from_values([40, 0, 0, 0]);
        assert!(balanced.gini() < 0.01);
        assert!(skewed.gini() > 0.7);
        assert!(skewed.gini() <= 1.0);
    }

    #[test]
    fn sampled_curve_is_monotone_in_rank() {
        let values: Vec<u64> = (0..1000).map(|i| 1000 - i).collect();
        let d = Distribution::from_values(values);
        let curve = d.sampled_curve(10);
        assert!(curve.len() >= 10);
        assert_eq!(curve.first().unwrap().0, 0);
        assert_eq!(curve.last().unwrap().0, 999);
        for pair in curve.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn sampled_curve_short_input_passthrough() {
        let d = Distribution::from_values([3, 2, 1]);
        assert_eq!(d.sampled_curve(10), vec![(0, 3), (1, 2), (2, 1)]);
    }
}
