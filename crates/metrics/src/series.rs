//! Cumulative series (Figure 8 style plots).

use serde::{Deserialize, Serialize};

/// A cumulative series: per-event increments accumulated into a running
/// total, as in Figure 8 of the paper (cumulative query-processing and
/// storage load as tuples arrive).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CumulativeSeries {
    totals: Vec<u64>,
}

impl CumulativeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event with the given increment.
    pub fn push(&mut self, increment: u64) {
        let prev = self.totals.last().copied().unwrap_or(0);
        self.totals.push(prev + increment);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// The cumulative total after the last event (0 if empty).
    pub fn total(&self) -> u64 {
        self.totals.last().copied().unwrap_or(0)
    }

    /// The cumulative total after event `i` (0-based), or `None` if out of
    /// range.
    pub fn at(&self, i: usize) -> Option<u64> {
        self.totals.get(i).copied()
    }

    /// The full cumulative curve.
    pub fn curve(&self) -> &[u64] {
        &self.totals
    }

    /// Samples the curve at up to `points` evenly spaced events, returning
    /// `(event_index, cumulative_total)` pairs; always includes the last
    /// event.
    pub fn sampled(&self, points: usize) -> Vec<(usize, u64)> {
        if self.totals.is_empty() || points == 0 {
            return Vec::new();
        }
        if self.totals.len() <= points {
            return self.totals.iter().copied().enumerate().collect();
        }
        let step = self.totals.len() as f64 / points as f64;
        let mut out = Vec::with_capacity(points + 1);
        for i in 0..points {
            let idx = (i as f64 * step) as usize;
            out.push((idx, self.totals[idx]));
        }
        let last = self.totals.len() - 1;
        if out.last().map(|(i, _)| *i) != Some(last) {
            out.push((last, self.totals[last]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_increments() {
        let mut s = CumulativeSeries::new();
        s.push(3);
        s.push(0);
        s.push(7);
        assert_eq!(s.curve(), &[3, 3, 10]);
        assert_eq!(s.total(), 10);
        assert_eq!(s.len(), 3);
        assert_eq!(s.at(1), Some(3));
        assert_eq!(s.at(5), None);
    }

    #[test]
    fn empty_series() {
        let s = CumulativeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.total(), 0);
        assert!(s.sampled(5).is_empty());
    }

    #[test]
    fn curve_is_monotone() {
        let mut s = CumulativeSeries::new();
        for i in 0..100 {
            s.push(i % 5);
        }
        for pair in s.curve().windows(2) {
            assert!(pair[1] >= pair[0]);
        }
    }

    #[test]
    fn sampled_includes_last_point() {
        let mut s = CumulativeSeries::new();
        for _ in 0..1000 {
            s.push(2);
        }
        let sampled = s.sampled(10);
        assert_eq!(sampled.last(), Some(&(999, 2000)));
        assert!(sampled.len() >= 10);
    }
}
