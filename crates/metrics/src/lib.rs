//! Metric collection and reporting for the RJoin experiments.
//!
//! The paper's evaluation (Section 8) reports three per-node metrics:
//!
//! * **network traffic** — messages a node sends (created + routed),
//! * **query processing load (QPL)** — rewritten queries received to match
//!   against stored tuples plus tuples received to match against stored
//!   queries,
//! * **storage load (SL)** — rewritten queries plus tuples a node stores.
//!
//! Figures are drawn either as aggregates per workload size (Figure 2), as
//! ranked-node distributions (Figures 3–7, 9) or as cumulative series
//! (Figure 8). This crate provides the corresponding containers:
//!
//! * [`LoadMap`] — a per-key counter map,
//! * [`Distribution`] — ranked values with summary statistics,
//! * [`CumulativeSeries`] — a running total sampled per event,
//! * [`Table`] — a small text/CSV/JSON table used by the benchmark harness
//!   to print the rows of each figure,
//! * [`SharingCounters`] — how much indexing/storage work the shared
//!   sub-join registry saved (multi-query optimization),
//! * [`CompileCounters`] — how the compiled predicate-program hot loop
//!   behaved (compiles, cache hits, per-path rewrite counts, eval time),
//! * [`ShardRuntimeStats`] — how a sharded event-queue drain executed
//!   (shard count, per-shard tick activations, blocked cross-shard reads),
//! * [`SplitCounters`] — what the hot-key splitting subsystem did
//!   (heavy hitters split, state migrated, routing/fan-out overhead),
//! * [`PlannerCounters`] — what the two-plan query planner decided
//!   (pipeline vs hypercube plans, shares allocated, replication cost),
//! * [`StateCounters`] — how the slab-backed stores and timer-wheel expiry
//!   behaved (slab occupancy and high water, wheel pops vs contact expiry),
//! * [`ProbeCounters`] — how the value-partitioned trigger index narrowed
//!   tuple-arrival probes (candidates vs bucket length, residual share,
//!   index size high water).

mod compile;
mod counters;
mod distribution;
mod planner;
mod probe;
mod report;
mod series;
mod shard;
mod sharing;
mod split;
mod state;

pub use compile::CompileCounters;
pub use counters::LoadMap;
pub use distribution::Distribution;
pub use planner::PlannerCounters;
pub use probe::ProbeCounters;
pub use report::Table;
pub use series::CumulativeSeries;
pub use shard::ShardRuntimeStats;
pub use sharing::SharingCounters;
pub use split::SplitCounters;
pub use state::StateCounters;
