//! Gauges and counters of the slab-backed node stores and timer-wheel
//! expiry.

use serde::{Deserialize, Serialize};

/// How the O(active) state machinery behaved.
///
/// Each node maintains one instance (the slab gauges are snapshotted from
/// the slabs at read time, the pop counters accumulate); the engine sums
/// them into the run-level statistics snapshot.
///
/// The pair to watch is `wheel_pops` vs `contact_expirations`: with the
/// timer wheel on, almost every dead entry is reclaimed by a wheel pop at
/// its deadline, and contact expiry only catches entries the wheel's
/// conservative deadline (`+ δ` network slack) has not reached yet. In
/// sweep mode `wheel_pops` is zero and every reclamation waits for a bucket
/// walk to stumble over the corpse — the O(stored) regime the wheel
/// replaces. The `*_high_water` gauges bound peak state: with expiry
/// working, high water tracks the *active* working set rather than the
/// run's cumulative volume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateCounters {
    /// Stored queries live in the slab right now.
    pub query_slab_live: u64,
    /// Peak simultaneously live stored queries.
    pub query_slab_high_water: u64,
    /// Value-level tuples live in the slab right now.
    pub tuple_slab_live: u64,
    /// Peak simultaneously live value-level tuples.
    pub tuple_slab_high_water: u64,
    /// ALTT entries live in the slab right now.
    pub altt_slab_live: u64,
    /// Peak simultaneously live ALTT entries.
    pub altt_slab_high_water: u64,
    /// Deadline entries currently scheduled on the timer wheel (including
    /// stale tokens of already-removed entries, skipped for free at pop).
    pub wheel_scheduled: u64,
    /// Entries reclaimed by a wheel pop at their deadline.
    pub wheel_pops: u64,
    /// Entries reclaimed because a bucket walk contacted them after their
    /// window had closed (the only reclamation path in sweep mode).
    pub contact_expirations: u64,
}

impl StateCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another instance's counts into this one (per-node → run totals;
    /// `*_high_water` sums too, bounding total peak state across nodes).
    pub fn merge(&mut self, other: &StateCounters) {
        self.query_slab_live += other.query_slab_live;
        self.query_slab_high_water += other.query_slab_high_water;
        self.tuple_slab_live += other.tuple_slab_live;
        self.tuple_slab_high_water += other.tuple_slab_high_water;
        self.altt_slab_live += other.altt_slab_live;
        self.altt_slab_high_water += other.altt_slab_high_water;
        self.wheel_scheduled += other.wheel_scheduled;
        self.wheel_pops += other.wheel_pops;
        self.contact_expirations += other.contact_expirations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = StateCounters { query_slab_live: 1, wheel_pops: 2, ..Default::default() };
        let b = StateCounters {
            query_slab_live: 10,
            wheel_pops: 20,
            contact_expirations: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.query_slab_live, 11);
        assert_eq!(a.wheel_pops, 22);
        assert_eq!(a.contact_expirations, 5);
    }

    #[test]
    fn serde_round_trip() {
        let c = StateCounters { altt_slab_high_water: 7, wheel_scheduled: 3, ..Default::default() };
        let json = serde_json::to_string(&c).unwrap();
        let back: StateCounters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
