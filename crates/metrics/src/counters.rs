//! Per-key load counters.

use serde::json::{JsonError, JsonValue};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};

/// A counter map from keys (typically node identifiers) to accumulated load.
///
/// Used for query-processing load and storage load, which the simulation
/// increments as events are handled. The hasher is pluggable so that hot
/// maps keyed by already-uniform identifiers (e.g. DHT ring ids) can swap
/// SipHash for a cheaper mix without changing the call sites.
#[derive(Debug, Clone)]
pub struct LoadMap<K: Eq + Hash, S: BuildHasher + Default = RandomState> {
    counts: HashMap<K, u64, S>,
}

impl<K: Eq + Hash, S: BuildHasher + Default> Default for LoadMap<K, S> {
    fn default() -> Self {
        LoadMap { counts: HashMap::default() }
    }
}

// Serialized as the bare key→count pair list (the shape `HashMap` itself
// uses), hand-written because derives do not cover default type parameters.
impl<K: Eq + Hash + Serialize, S: BuildHasher + Default> Serialize for LoadMap<K, S> {
    fn serialize_json(&self) -> JsonValue {
        self.counts.serialize_json()
    }
}

impl<K: Eq + Hash + Deserialize, S: BuildHasher + Default> Deserialize for LoadMap<K, S> {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(LoadMap { counts: HashMap::deserialize_json(v)? })
    }
}

impl<K: Eq + Hash + Clone, S: BuildHasher + Default> LoadMap<K, S> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` to `key`'s load.
    pub fn add(&mut self, key: K, amount: u64) {
        *self.counts.entry(key).or_insert(0) += amount;
    }

    /// Increments `key`'s load by one.
    pub fn incr(&mut self, key: K) {
        self.add(key, 1);
    }

    /// Subtracts `amount` from `key`'s load, saturating at zero. Used when
    /// stored state is garbage collected (e.g. window expiry shrinking the
    /// storage load).
    pub fn sub(&mut self, key: &K, amount: u64) {
        if let Some(v) = self.counts.get_mut(key) {
            *v = v.saturating_sub(amount);
        }
    }

    /// The load of `key` (zero if never touched).
    pub fn get(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Sum of all loads.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of keys with a non-zero load.
    pub fn active(&self) -> usize {
        self.counts.values().filter(|v| **v > 0).count()
    }

    /// All values (including zeros for keys that were touched then zeroed).
    pub fn values(&self) -> impl Iterator<Item = u64> + '_ {
        self.counts.values().copied()
    }

    /// Iterates over `(key, load)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, v)| (k, *v))
    }

    /// Clears every counter.
    pub fn reset(&mut self) {
        self.counts.clear();
    }

    /// Merges another map into this one (any hasher).
    pub fn merge<S2: BuildHasher + Default>(&mut self, other: &LoadMap<K, S2>) {
        for (k, v) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let mut m: LoadMap<u64> = LoadMap::new();
        m.incr(1);
        m.add(1, 4);
        m.add(2, 10);
        assert_eq!(m.get(&1), 5);
        assert_eq!(m.get(&2), 10);
        assert_eq!(m.get(&3), 0);
        assert_eq!(m.total(), 15);
        assert_eq!(m.active(), 2);
    }

    #[test]
    fn sub_saturates_at_zero() {
        let mut m: LoadMap<u64> = LoadMap::new();
        m.add(1, 3);
        m.sub(&1, 10);
        assert_eq!(m.get(&1), 0);
        m.sub(&99, 1); // unknown key: no-op
        assert_eq!(m.get(&99), 0);
    }

    #[test]
    fn merge_and_reset() {
        let mut a: LoadMap<&str> = LoadMap::new();
        a.add("x", 1);
        let mut b: LoadMap<&str> = LoadMap::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get(&"x"), 3);
        assert_eq!(a.get(&"y"), 3);
        a.reset();
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn serde_round_trips_counts_and_custom_hashers_interoperate() {
        let mut m: LoadMap<u64> = LoadMap::new();
        m.add(3, 7);
        m.add(9, 1);
        let v = m.serialize_json();
        let back: LoadMap<u64> = LoadMap::deserialize_json(&v).unwrap();
        assert_eq!(back.get(&3), 7);
        assert_eq!(back.get(&9), 1);
        assert_eq!(back.total(), 8);

        // A map with a different hasher merges into the default one.
        let mut custom: LoadMap<u64, std::hash::BuildHasherDefault<std::hash::DefaultHasher>> =
            LoadMap::new();
        custom.add(3, 2);
        m.merge(&custom);
        assert_eq!(m.get(&3), 9);
    }

    #[test]
    fn active_ignores_zeroed_keys() {
        let mut m: LoadMap<u64> = LoadMap::new();
        m.add(1, 1);
        m.add(2, 1);
        m.sub(&2, 1);
        assert_eq!(m.active(), 1);
    }
}
