//! Per-key load counters.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// A counter map from keys (typically node identifiers) to accumulated load.
///
/// Used for query-processing load and storage load, which the simulation
/// increments as events are handled.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadMap<K: Eq + Hash> {
    counts: HashMap<K, u64>,
}

impl<K: Eq + Hash> Default for LoadMap<K> {
    fn default() -> Self {
        LoadMap { counts: HashMap::new() }
    }
}

impl<K: Eq + Hash + Clone> LoadMap<K> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` to `key`'s load.
    pub fn add(&mut self, key: K, amount: u64) {
        *self.counts.entry(key).or_insert(0) += amount;
    }

    /// Increments `key`'s load by one.
    pub fn incr(&mut self, key: K) {
        self.add(key, 1);
    }

    /// Subtracts `amount` from `key`'s load, saturating at zero. Used when
    /// stored state is garbage collected (e.g. window expiry shrinking the
    /// storage load).
    pub fn sub(&mut self, key: &K, amount: u64) {
        if let Some(v) = self.counts.get_mut(key) {
            *v = v.saturating_sub(amount);
        }
    }

    /// The load of `key` (zero if never touched).
    pub fn get(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Sum of all loads.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of keys with a non-zero load.
    pub fn active(&self) -> usize {
        self.counts.values().filter(|v| **v > 0).count()
    }

    /// All values (including zeros for keys that were touched then zeroed).
    pub fn values(&self) -> impl Iterator<Item = u64> + '_ {
        self.counts.values().copied()
    }

    /// Iterates over `(key, load)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, v)| (k, *v))
    }

    /// Clears every counter.
    pub fn reset(&mut self) {
        self.counts.clear();
    }

    /// Merges another map into this one.
    pub fn merge(&mut self, other: &LoadMap<K>) {
        for (k, v) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let mut m: LoadMap<u64> = LoadMap::new();
        m.incr(1);
        m.add(1, 4);
        m.add(2, 10);
        assert_eq!(m.get(&1), 5);
        assert_eq!(m.get(&2), 10);
        assert_eq!(m.get(&3), 0);
        assert_eq!(m.total(), 15);
        assert_eq!(m.active(), 2);
    }

    #[test]
    fn sub_saturates_at_zero() {
        let mut m: LoadMap<u64> = LoadMap::new();
        m.add(1, 3);
        m.sub(&1, 10);
        assert_eq!(m.get(&1), 0);
        m.sub(&99, 1); // unknown key: no-op
        assert_eq!(m.get(&99), 0);
    }

    #[test]
    fn merge_and_reset() {
        let mut a: LoadMap<&str> = LoadMap::new();
        a.add("x", 1);
        let mut b: LoadMap<&str> = LoadMap::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get(&"x"), 3);
        assert_eq!(a.get(&"y"), 3);
        a.reset();
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn active_ignores_zeroed_keys() {
        let mut m: LoadMap<u64> = LoadMap::new();
        m.add(1, 1);
        m.add(2, 1);
        m.sub(&2, 1);
        assert_eq!(m.active(), 1);
    }
}
