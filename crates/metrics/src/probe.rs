//! Counters of the value-partitioned trigger index's probe behaviour.

use serde::{Deserialize, Serialize};

/// How the per-node trigger index narrowed tuple-arrival probes.
///
/// Each node maintains one instance; the engine sums them into the
/// run-level statistics snapshot.
///
/// The ratio to watch is `candidates_probed` vs `bucket_len_total`: the
/// index pays off exactly when the candidates it hands back are a small
/// slice of the bucket the linear walk would have scanned. A high
/// `residual_probed` share means most stored queries carry no
/// tuple-resolvable equality pin (or are forced residual by DISTINCT or
/// hypercube placement) and the index degenerates towards the linear
/// walk it replaces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeCounters {
    /// Tuple arrivals answered through the trigger index.
    pub indexed_probes: u64,
    /// Tuple arrivals answered by the linear bucket walk (index disabled).
    pub linear_walks: u64,
    /// Stored-query candidates handed to the trigger loop by the index.
    pub candidates_probed: u64,
    /// Candidates that came from the residual (unpinned) list.
    pub residual_probed: u64,
    /// Total bucket length the linear walk would have scanned instead.
    pub bucket_len_total: u64,
    /// Peak number of handles held by the index at once.
    pub index_entries_high_water: u64,
}

impl ProbeCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another instance's counts into this one (per-node → run totals;
    /// `index_entries_high_water` sums too, bounding total peak index size
    /// across nodes).
    pub fn merge(&mut self, other: &ProbeCounters) {
        self.indexed_probes += other.indexed_probes;
        self.linear_walks += other.linear_walks;
        self.candidates_probed += other.candidates_probed;
        self.residual_probed += other.residual_probed;
        self.bucket_len_total += other.bucket_len_total;
        self.index_entries_high_water += other.index_entries_high_water;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = ProbeCounters { indexed_probes: 1, candidates_probed: 4, ..Default::default() };
        let b = ProbeCounters {
            indexed_probes: 10,
            candidates_probed: 40,
            bucket_len_total: 100,
            index_entries_high_water: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.indexed_probes, 11);
        assert_eq!(a.candidates_probed, 44);
        assert_eq!(a.bucket_len_total, 100);
        assert_eq!(a.index_entries_high_water, 7);
    }

    #[test]
    fn serde_round_trip() {
        let c = ProbeCounters { residual_probed: 9, linear_walks: 3, ..Default::default() };
        let json = serde_json::to_string(&c).unwrap();
        let back: ProbeCounters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
