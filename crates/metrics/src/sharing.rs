//! Counters for shared sub-join evaluation (multi-query optimization).

use serde::{Deserialize, Serialize};

/// Counters describing how much work the shared sub-join registry saved.
///
/// Each node maintains one instance; the engine sums them into the run-level
/// statistics snapshot. All counters are cumulative over a run:
///
/// * `merged_queries` — queries (input or rewritten) that were absorbed into
///   an existing registry entry instead of being stored as their own copy.
///   Every merge is one stored query *not* added to the node's storage load.
/// * `evals_saved` — re-index (`Eval`) messages that were not sent because a
///   shared trigger produced one rewritten query for all subscribers instead
///   of one per subscriber: a trigger of an entry carrying `k` extra
///   subscribers saves `k` messages.
/// * `fanout_answers` — answers delivered to *extra* subscribers of a shared
///   entry when its `WHERE` clause completed (the primary subscriber's
///   answer is accounted as usual).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharingCounters {
    /// Queries merged into an existing shared entry instead of stored anew.
    pub merged_queries: u64,
    /// `Eval` re-index messages avoided by shared triggers.
    pub evals_saved: u64,
    /// Answers produced for non-primary subscribers at completion.
    pub fanout_answers: u64,
}

impl SharingCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether sharing ever kicked in.
    pub fn any_sharing(&self) -> bool {
        self.merged_queries > 0 || self.evals_saved > 0 || self.fanout_answers > 0
    }

    /// Adds another instance's counts into this one (per-node → run totals).
    pub fn merge(&mut self, other: &SharingCounters) {
        self.merged_queries += other.merged_queries;
        self.evals_saved += other.evals_saved;
        self.fanout_answers += other.fanout_answers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SharingCounters { merged_queries: 1, evals_saved: 2, fanout_answers: 3 };
        let b = SharingCounters { merged_queries: 10, evals_saved: 20, fanout_answers: 30 };
        a.merge(&b);
        assert_eq!(a, SharingCounters { merged_queries: 11, evals_saved: 22, fanout_answers: 33 });
        assert!(a.any_sharing());
        assert!(!SharingCounters::new().any_sharing());
    }

    #[test]
    fn serde_round_trip() {
        let c = SharingCounters { merged_queries: 4, evals_saved: 5, fanout_answers: 6 };
        let v = c.serialize_json();
        let back = SharingCounters::deserialize_json(&v).unwrap();
        assert_eq!(back, c);
    }
}
