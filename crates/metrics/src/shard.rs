//! Observability counters for the sharded event-queue runtime.

use serde::{Deserialize, Serialize};

/// Counters describing how a sharded drain executed: how many shards ran,
/// how much work each kind of shard activity performed, and how often
/// cross-shard synchronization actually blocked. Complements the
/// intra/cross-shard message counts the traffic layer records per
/// scheduled delivery.
///
/// All counters are cumulative over every sharded drain of an engine run
/// and stay zero for single-queue runs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRuntimeStats {
    /// Shard count of the most recent sharded drain (0 = never sharded).
    pub shards: usize,
    /// Number of sharded drains executed.
    pub drains: u64,
    /// Tick activations summed over all shard workers (one worker
    /// processing one tick bucket = one activation).
    pub ticks: u64,
    /// Deliveries processed on shard workers.
    pub deliveries: u64,
    /// Times an effect phase had to block on a peer shard's handled
    /// watermark to answer an RIC rate request. High values mean the
    /// placement strategy's remote reads, not the event flow, limit
    /// shard independence.
    pub blocked_rate_reads: u64,
}

impl ShardRuntimeStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds the counters of one drain into the cumulative totals.
    pub fn absorb_drain(
        &mut self,
        shards: usize,
        ticks: u64,
        deliveries: u64,
        blocked_rate_reads: u64,
    ) {
        self.shards = shards;
        self.drains += 1;
        self.ticks += ticks;
        self.deliveries += deliveries;
        self.blocked_rate_reads += blocked_rate_reads;
    }

    /// Average deliveries per tick activation — the effective batch size a
    /// shard worker sees (1.0 means purely thin cascades).
    pub fn deliveries_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.deliveries as f64 / self.ticks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates_and_tracks_latest_shard_count() {
        let mut s = ShardRuntimeStats::new();
        assert_eq!(s.deliveries_per_tick(), 0.0);
        s.absorb_drain(4, 10, 40, 2);
        s.absorb_drain(8, 5, 20, 1);
        assert_eq!(s.shards, 8);
        assert_eq!(s.drains, 2);
        assert_eq!(s.ticks, 15);
        assert_eq!(s.deliveries, 60);
        assert_eq!(s.blocked_rate_reads, 3);
        assert!((s.deliveries_per_tick() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let mut s = ShardRuntimeStats::new();
        s.absorb_drain(2, 3, 9, 0);
        let json = serde_json::to_string(&s).unwrap();
        let back: ShardRuntimeStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
