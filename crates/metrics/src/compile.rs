//! Counters for compiled predicate-program evaluation.

use serde::{Deserialize, Serialize};

/// Counters describing how the compiled rewrite hot loop behaved.
///
/// Each node maintains one instance; the engine sums them into the run-level
/// statistics snapshot. All counters are cumulative over a run:
///
/// * `programs_compiled` — `WHERE`-side programs compiled from scratch (one
///   per distinct sub-join shape × trigger relation seen on the node),
/// * `cache_hits` — stored queries that reused a program already in the
///   node's fingerprint-keyed cache instead of compiling their own,
/// * `compiled_rewrites` — per-tuple rewrites executed by a compiled
///   program,
/// * `interpreted_rewrites` — per-tuple rewrites that ran the AST
///   interpreter (compiled predicates disabled),
/// * `eval_nanos` — wall-clock nanoseconds spent walking stored-query
///   buckets per delivery (rewrites plus trigger bookkeeping), whichever
///   evaluation path ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileCounters {
    /// Predicate programs compiled from scratch.
    pub programs_compiled: u64,
    /// Program reuses served by the fingerprint-keyed cache.
    pub cache_hits: u64,
    /// Per-tuple rewrites executed by compiled programs.
    pub compiled_rewrites: u64,
    /// Per-tuple rewrites executed by the AST interpreter.
    pub interpreted_rewrites: u64,
    /// Nanoseconds spent in per-delivery evaluation walks.
    pub eval_nanos: u64,
}

impl CompileCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any compiled program ever ran.
    pub fn any_compiled(&self) -> bool {
        self.programs_compiled > 0 || self.cache_hits > 0 || self.compiled_rewrites > 0
    }

    /// Adds another instance's counts into this one (per-node → run totals).
    pub fn merge(&mut self, other: &CompileCounters) {
        self.programs_compiled += other.programs_compiled;
        self.cache_hits += other.cache_hits;
        self.compiled_rewrites += other.compiled_rewrites;
        self.interpreted_rewrites += other.interpreted_rewrites;
        self.eval_nanos += other.eval_nanos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = CompileCounters {
            programs_compiled: 1,
            cache_hits: 2,
            compiled_rewrites: 3,
            interpreted_rewrites: 4,
            eval_nanos: 5,
        };
        let b = CompileCounters {
            programs_compiled: 10,
            cache_hits: 20,
            compiled_rewrites: 30,
            interpreted_rewrites: 40,
            eval_nanos: 50,
        };
        a.merge(&b);
        assert_eq!(
            a,
            CompileCounters {
                programs_compiled: 11,
                cache_hits: 22,
                compiled_rewrites: 33,
                interpreted_rewrites: 44,
                eval_nanos: 55,
            }
        );
        assert!(a.any_compiled());
        assert!(!CompileCounters::new().any_compiled());
    }

    #[test]
    fn serde_round_trip() {
        let c = CompileCounters {
            programs_compiled: 4,
            cache_hits: 5,
            compiled_rewrites: 6,
            interpreted_rewrites: 7,
            eval_nanos: 8,
        };
        let v = c.serialize_json();
        let back = CompileCounters::deserialize_json(&v).unwrap();
        assert_eq!(back, c);
    }
}
