//! Small tabular reports printed by the benchmark harness.

use serde::{Deserialize, Serialize};

/// A simple table: named columns plus rows of string cells. The figure
/// harness builds one table per figure panel and prints it as aligned text
/// (for the console), CSV (for plotting) or JSON (for EXPERIMENTS.md
/// provenance).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new<T: Into<String>, H: Into<String>, I: IntoIterator<Item = H>>(
        title: T,
        headers: I,
    ) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The rows added so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a row. The row is padded or truncated to the number of
    /// columns.
    pub fn push_row<C: Into<String>, I: IntoIterator<Item = C>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("tables are always serializable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Figure 2(a): traffic", ["tuples", "worst", "rjoin"]);
        t.push_row(["50", "1200", "35"]);
        t.push_row(["400", "9800", "210"]);
        t
    }

    #[test]
    fn text_rendering_is_aligned() {
        let text = sample().to_text();
        assert!(text.contains("Figure 2(a)"));
        assert!(text.contains("tuples"));
        let lines: Vec<&str> = text.lines().collect();
        // Header, separator and two data rows after the title line.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_rendering_quotes_when_needed() {
        let mut t = Table::new("t", ["a", "b"]);
        t.push_row(["plain", "has,comma"]);
        t.push_row(["has\"quote", ""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn rows_are_padded_to_header_width() {
        let mut t = Table::new("t", ["a", "b", "c"]);
        t.push_row(["1"]);
        assert_eq!(t.rows()[0], vec!["1".to_string(), String::new(), String::new()]);
    }

    #[test]
    fn json_round_trip() {
        let t = sample();
        let parsed: Table = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(parsed, t);
    }
}
