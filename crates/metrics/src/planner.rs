//! Observability counters for the two-plan query planner.

use serde::{Deserialize, Serialize};

/// Counters describing what the query planner decided during a run: how
/// many queries took each plan, how many hypercube cells/shares were
/// allocated, and how much replication the hypercube plans cost (query
/// copies registered per cell, tuple copies fanned across unbound axes).
///
/// All counters are cumulative over a run; the hypercube-side counters stay
/// zero when every submitted query is acyclic and the cost model keeps them
/// on the rewrite pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannerCounters {
    /// Queries placed on the paper's pipeline-of-rewrites plan.
    pub pipeline_plans: u64,
    /// Queries placed as a replicated hypercube of cells.
    pub hypercube_plans: u64,
    /// Total cells allocated across hypercube plans (`Σ ∏ s_i`).
    pub cells_allocated: u64,
    /// Total per-axis shares allocated across hypercube plans (`Σ Σ s_i`).
    pub shares_allocated: u64,
    /// Query copies sent to register a hypercube plan (one per cell — the
    /// replicated-Eval side of the hypercube).
    pub replicated_evals: u64,
    /// Tuples that matched at least one hypercube plan's relations and were
    /// routed into its cell space.
    pub tuples_routed: u64,
    /// Tuple index copies sent into hypercube cells (subcube sizes summed;
    /// the excess over `tuples_routed` is the replication across unbound
    /// axes).
    pub tuple_copies: u64,
}

impl PlannerCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any query took the hypercube plan.
    pub fn any_hypercube(&self) -> bool {
        self.hypercube_plans > 0
    }

    /// Adds another instance's counts into this one.
    pub fn merge(&mut self, other: &PlannerCounters) {
        self.pipeline_plans += other.pipeline_plans;
        self.hypercube_plans += other.hypercube_plans;
        self.cells_allocated += other.cells_allocated;
        self.shares_allocated += other.shares_allocated;
        self.replicated_evals += other.replicated_evals;
        self.tuples_routed += other.tuples_routed;
        self.tuple_copies += other.tuple_copies;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = PlannerCounters { pipeline_plans: 3, ..Default::default() };
        let b = PlannerCounters {
            pipeline_plans: 1,
            hypercube_plans: 2,
            cells_allocated: 16,
            shares_allocated: 12,
            replicated_evals: 16,
            tuples_routed: 40,
            tuple_copies: 100,
        };
        a.merge(&b);
        assert_eq!(a.pipeline_plans, 4);
        assert_eq!(a.hypercube_plans, 2);
        assert_eq!(a.cells_allocated, 16);
        assert_eq!(a.shares_allocated, 12);
        assert_eq!(a.replicated_evals, 16);
        assert_eq!(a.tuples_routed, 40);
        assert_eq!(a.tuple_copies, 100);
        assert!(a.any_hypercube());
        assert!(!PlannerCounters::new().any_hypercube());
    }

    #[test]
    fn serde_round_trip() {
        let c = PlannerCounters { hypercube_plans: 2, tuple_copies: 9, ..Default::default() };
        let v = c.serialize_json();
        let back = PlannerCounters::deserialize_json(&v).unwrap();
        assert_eq!(back, c);
    }
}
