//! Property-based tests for the metric containers.

use proptest::prelude::*;
use rjoin_metrics::{CumulativeSeries, Distribution, LoadMap};

proptest! {
    /// Distribution invariants: ranking is a permutation of the input, the
    /// curve is non-increasing, summary statistics are consistent and the
    /// Gini coefficient stays within [0, 1).
    #[test]
    fn distribution_invariants(values in proptest::collection::vec(0u64..10_000, 0..200)) {
        let d = Distribution::from_values(values.clone());
        prop_assert_eq!(d.len(), values.len());
        prop_assert_eq!(d.total(), values.iter().sum::<u64>());
        let mut sorted = values.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(d.ranked(), &sorted[..]);
        for pair in d.ranked().windows(2) {
            prop_assert!(pair[0] >= pair[1]);
        }
        if !values.is_empty() {
            prop_assert_eq!(d.max(), *values.iter().max().unwrap());
            prop_assert_eq!(d.min(), *values.iter().min().unwrap());
            prop_assert_eq!(d.percentile(100.0), d.max());
            prop_assert!(d.mean() >= d.min() as f64 && d.mean() <= d.max() as f64);
        }
        let gini = d.gini();
        prop_assert!((0.0..1.0).contains(&gini) || gini.abs() < 1e-9);
        prop_assert_eq!(d.participants(), values.iter().filter(|v| **v > 0).count());
    }

    /// The sampled curve is a sub-sequence of the ranked curve: ranks are
    /// strictly increasing and values non-increasing, and the last rank is
    /// always included.
    #[test]
    fn sampled_curve_is_subsequence(values in proptest::collection::vec(0u64..1000, 1..500), points in 1usize..20) {
        let d = Distribution::from_values(values);
        let curve = d.sampled_curve(points);
        prop_assert!(!curve.is_empty());
        prop_assert_eq!(curve.last().unwrap().0, d.len() - 1);
        for pair in curve.windows(2) {
            prop_assert!(pair[0].0 < pair[1].0);
            prop_assert!(pair[0].1 >= pair[1].1);
        }
        for (rank, value) in curve {
            prop_assert_eq!(d.at_rank(rank), value);
        }
    }

    /// Cumulative series: monotone, final total equals the sum of the
    /// increments, sampling preserves the last point.
    #[test]
    fn cumulative_series_invariants(increments in proptest::collection::vec(0u64..1000, 1..300)) {
        let mut s = CumulativeSeries::new();
        for &x in &increments {
            s.push(x);
        }
        prop_assert_eq!(s.len(), increments.len());
        prop_assert_eq!(s.total(), increments.iter().sum::<u64>());
        for pair in s.curve().windows(2) {
            prop_assert!(pair[1] >= pair[0]);
        }
        let sampled = s.sampled(10);
        prop_assert_eq!(sampled.last().copied(), Some((increments.len() - 1, s.total())));
    }

    /// LoadMap totals equal the sum of all additions minus saturating
    /// subtractions, and merging two maps adds their totals.
    #[test]
    fn load_map_merge_adds_totals(
        a in proptest::collection::vec((0u64..50, 1u64..100), 0..50),
        b in proptest::collection::vec((0u64..50, 1u64..100), 0..50),
    ) {
        let mut ma: LoadMap<u64> = LoadMap::new();
        for (k, v) in &a {
            ma.add(*k, *v);
        }
        let mut mb: LoadMap<u64> = LoadMap::new();
        for (k, v) in &b {
            mb.add(*k, *v);
        }
        let total_a = ma.total();
        let total_b = mb.total();
        ma.merge(&mb);
        prop_assert_eq!(ma.total(), total_a + total_b);
    }
}
