//! Published tuples.

use crate::{Name, Timestamp, Value};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A tuple published into the network.
///
/// Tuples are append-only (Section 2 of the paper): once published they are
/// never updated. Each tuple records its publication time `pubT(t)`, which
/// drives the "tuples must be published at or after query submission"
/// semantics and sliding-window checks.
///
/// The value vector is shared behind an [`Arc`] so that indexing a tuple at
/// both the attribute level and the value level for every attribute
/// (Procedure 1 in the paper) does not copy the payload 2k times.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tuple {
    relation: Name,
    values: Arc<Vec<Value>>,
    pub_time: Timestamp,
}

impl Tuple {
    /// Creates a new tuple of `relation` published at `pub_time`.
    pub fn new<R: Into<Name>>(relation: R, values: Vec<Value>, pub_time: Timestamp) -> Self {
        Tuple { relation: relation.into(), values: Arc::new(values), pub_time }
    }

    /// The relation this tuple belongs to.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The relation name as a cheaply clonable [`Name`].
    pub fn relation_name(&self) -> &Name {
        &self.relation
    }

    /// Number of attribute values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// All attribute values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value of the attribute at position `index`, if any.
    pub fn value(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }

    /// The publication time `pubT(t)` of this tuple.
    pub fn pub_time(&self) -> Timestamp {
        self.pub_time
    }

    /// Returns a copy of this tuple with a different publication time.
    ///
    /// Useful in tests and in workload generators that pre-build tuples and
    /// stamp them when they are actually injected into the simulation.
    pub fn with_pub_time(&self, pub_time: Timestamp) -> Self {
        Tuple { relation: self.relation.clone(), values: Arc::clone(&self.values), pub_time }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")@{}", self.pub_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> Tuple {
        Tuple::new("R", vec![Value::from(2), Value::from(5), Value::from(8)], 7)
    }

    #[test]
    fn accessors() {
        let t = tuple();
        assert_eq!(t.relation(), "R");
        assert_eq!(t.arity(), 3);
        assert_eq!(t.value(0), Some(&Value::Int(2)));
        assert_eq!(t.value(3), None);
        assert_eq!(t.pub_time(), 7);
    }

    #[test]
    fn cloning_shares_values() {
        let t = tuple();
        let c = t.clone();
        assert!(Arc::ptr_eq(&t.values, &c.values));
    }

    #[test]
    fn with_pub_time_keeps_payload() {
        let t = tuple();
        let later = t.with_pub_time(100);
        assert_eq!(later.pub_time(), 100);
        assert_eq!(later.values(), t.values());
        assert!(Arc::ptr_eq(&t.values, &later.values));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(tuple().to_string(), "R(2, 5, 8)@7");
    }

    #[test]
    fn equality_includes_pub_time() {
        let t = tuple();
        assert_ne!(t, t.with_pub_time(8));
        assert_eq!(t, t.clone());
    }
}
