//! Relational data model for the RJoin reproduction.
//!
//! The paper ("Continuous Multi-Way Joins over Distributed Hash Tables",
//! EDBT 2008) assumes a plain relational model: data is inserted into the
//! network as tuples of append-only relations, several schemas may co-exist,
//! and continuous queries are SQL multi-way equi-joins.
//!
//! This crate provides the building blocks shared by every other crate in
//! the workspace:
//!
//! * [`Value`] — a typed attribute value (integers and strings),
//! * [`Schema`] — a named relation schema (ordered attribute names),
//! * [`Tuple`] — a published tuple carrying its publication time,
//! * [`Catalog`] — a registry of schemas,
//! * [`Timestamp`] — logical simulation time used throughout the workspace.
//!
//! # Example
//!
//! ```
//! use rjoin_relation::{Catalog, Schema, Tuple, Value};
//!
//! let mut catalog = Catalog::new();
//! catalog.register(Schema::new("R", ["A", "B", "C"]).unwrap()).unwrap();
//!
//! let tuple = Tuple::new("R", vec![Value::from(2), Value::from(5), Value::from(8)], 10);
//! assert_eq!(tuple.arity(), 3);
//! assert_eq!(tuple.value(1), Some(&Value::Int(5)));
//! catalog.validate_tuple(&tuple).unwrap();
//! ```

mod catalog;
mod error;
mod name;
mod schema;
mod tuple;
mod value;

pub use catalog::Catalog;
pub use error::RelationError;
pub use name::Name;
pub use schema::{AttrIndex, Schema};
pub use tuple::Tuple;
pub use value::Value;

/// Logical time used across the workspace (publication times, query
/// insertion times, simulation clock ticks).
///
/// The paper's model only relies on a totally ordered clock with a known
/// upper bound on message delay, so a plain `u64` tick counter suffices.
pub type Timestamp = u64;
