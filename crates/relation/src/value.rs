//! Attribute values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed attribute value.
///
/// The paper's workload uses small integer domains (a value range of 100
/// values per attribute), but queries may also contain string constants, so
/// the model supports both. Values are totally ordered (integers before
/// strings) so they can be used as keys in ordered collections.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// A 64-bit signed integer value.
    Int(i64),
    /// A string value.
    Str(String),
}

impl Value {
    /// Returns the integer payload if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }

    /// Canonical textual form used when building DHT index keys
    /// (`RelationName + AttributeName + Value` concatenation, Section 3 of
    /// the paper). Distinct values must map to distinct strings.
    pub fn key_fragment(&self) -> String {
        let mut out = String::new();
        self.write_key_fragment(&mut out);
        out
    }

    /// Appends the canonical key fragment to `out` — the allocation-free
    /// core of [`Value::key_fragment`] for callers that assemble full index
    /// keys into a reused buffer.
    pub fn write_key_fragment(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Value::Int(v) => {
                let _ = write!(out, "i:{v}");
            }
            Value::Str(s) => {
                out.push_str("s:");
                out.push_str(s);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_accessors() {
        let v = Value::from(42);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_str(), None);
    }

    #[test]
    fn str_accessors() {
        let v = Value::from("hello");
        assert_eq!(v.as_int(), None);
        assert_eq!(v.as_str(), Some("hello"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::from(7).to_string(), "7");
        assert_eq!(Value::from("x").to_string(), "'x'");
    }

    #[test]
    fn key_fragments_distinguish_types() {
        // The integer 5 and the string "5" must not collide in index keys.
        assert_ne!(Value::from(5).key_fragment(), Value::from("5").key_fragment());
    }

    #[test]
    fn ordering_is_total() {
        let mut values = vec![Value::from("b"), Value::from(3), Value::from("a"), Value::from(-1)];
        values.sort();
        assert_eq!(
            values,
            vec![Value::from(-1), Value::from(3), Value::from("a"), Value::from("b")]
        );
    }

    #[test]
    fn equality_is_type_sensitive() {
        assert_ne!(Value::from(1), Value::from("1"));
        assert_eq!(Value::from(1), Value::Int(1));
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::from("abc");
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
