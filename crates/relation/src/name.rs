//! Cheaply clonable identifier strings.
//!
//! Relation and attribute names travel on every hot path of the engine:
//! they sit inside every tuple, every query AST node and every stored
//! sub-join, and those structures are cloned per message hop, per rewrite
//! and per stored entry. Backing the names with `Arc<str>` makes each of
//! those clones a reference-count bump instead of a heap allocation plus a
//! memcpy — and, just as importantly, makes teardown (dropping an engine
//! full of stored queries) a refcount sweep rather than thousands of
//! `free` calls.

use serde::json::{JsonError, JsonValue};
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable name (relation or attribute identifier).
///
/// Behaves like a read-only `String`: derefs to `str`, compares against
/// `str`/`&str`/`String` directly, and serializes as a plain JSON string.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(Arc<str>);

impl Name {
    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for Name {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name(Arc::from(s))
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name(Arc::from(s))
    }
}

impl From<&String> for Name {
    fn from(s: &String) -> Self {
        Name(Arc::from(s.as_str()))
    }
}

impl From<Arc<str>> for Name {
    fn from(s: Arc<str>) -> Self {
        Name(s)
    }
}

impl From<&Name> for Name {
    fn from(s: &Name) -> Self {
        s.clone()
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl PartialEq<Name> for str {
    fn eq(&self, other: &Name) -> bool {
        self == &*other.0
    }
}

impl PartialEq<Name> for &str {
    fn eq(&self, other: &Name) -> bool {
        *self == &*other.0
    }
}

impl PartialEq<Name> for String {
    fn eq(&self, other: &Name) -> bool {
        self.as_str() == &*other.0
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Serialize for Name {
    fn serialize_json(&self) -> JsonValue {
        self.0.serialize_json()
    }
}

impl Deserialize for Name {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        String::deserialize_json(v).map(Name::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compares_like_a_string() {
        let n = Name::from("R");
        assert_eq!(n, *"R");
        assert_eq!(n, "R");
        assert_eq!(n, "R".to_string());
        assert_eq!("R", n);
        assert_ne!(n, "S");
        assert_eq!(n.as_str(), "R");
    }

    #[test]
    fn clones_share_the_backing_allocation() {
        let a = Name::from("Relation");
        let b = a.clone();
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn serde_round_trip_is_a_plain_string() {
        let n = Name::from("R1");
        let v = n.serialize_json();
        assert_eq!(Name::deserialize_json(&v).unwrap(), n);
        assert_eq!(String::deserialize_json(&v).unwrap(), "R1");
    }
}
