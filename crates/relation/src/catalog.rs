//! Schema catalog.

use crate::{RelationError, Schema, Tuple};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A registry of relation schemas.
///
/// The paper allows several schemas to co-exist in the network (without
/// schema mappings); the catalog simply records every relation known to the
/// workload so that tuples and queries can be validated before they are
/// injected into the simulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    schemas: BTreeMap<String, Schema>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a schema. Fails if a relation with the same name exists.
    pub fn register(&mut self, schema: Schema) -> Result<(), RelationError> {
        if self.schemas.contains_key(schema.relation()) {
            return Err(RelationError::DuplicateRelation {
                relation: schema.relation().to_string(),
            });
        }
        self.schemas.insert(schema.relation().to_string(), schema);
        Ok(())
    }

    /// Looks up the schema of `relation`.
    pub fn schema(&self, relation: &str) -> Option<&Schema> {
        self.schemas.get(relation)
    }

    /// Looks up the schema of `relation`, failing if it is unknown.
    pub fn require_schema(&self, relation: &str) -> Result<&Schema, RelationError> {
        self.schema(relation)
            .ok_or_else(|| RelationError::UnknownRelation { relation: relation.to_string() })
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Iterates over all registered schemas in relation-name order.
    pub fn schemas(&self) -> impl Iterator<Item = &Schema> {
        self.schemas.values()
    }

    /// Relation names in sorted order.
    pub fn relation_names(&self) -> Vec<&str> {
        self.schemas.keys().map(String::as_str).collect()
    }

    /// Checks that a tuple refers to a known relation and has the right
    /// arity.
    pub fn validate_tuple(&self, tuple: &Tuple) -> Result<(), RelationError> {
        let schema = self.require_schema(tuple.relation())?;
        if schema.arity() != tuple.arity() {
            return Err(RelationError::ArityMismatch {
                relation: tuple.relation().to_string(),
                expected: schema.arity(),
                actual: tuple.arity(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(Schema::new("R", ["A", "B"]).unwrap()).unwrap();
        c.register(Schema::new("S", ["A", "B", "C"]).unwrap()).unwrap();
        c
    }

    #[test]
    fn register_and_lookup() {
        let c = catalog();
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.schema("R").unwrap().arity(), 2);
        assert!(c.schema("T").is_none());
        assert_eq!(c.relation_names(), vec!["R", "S"]);
    }

    #[test]
    fn rejects_duplicate_relation() {
        let mut c = catalog();
        let err = c.register(Schema::new("R", ["X"]).unwrap()).unwrap_err();
        assert_eq!(err, RelationError::DuplicateRelation { relation: "R".into() });
    }

    #[test]
    fn validate_tuple_checks_relation_and_arity() {
        let c = catalog();
        let ok = Tuple::new("R", vec![Value::from(1), Value::from(2)], 0);
        assert!(c.validate_tuple(&ok).is_ok());

        let unknown = Tuple::new("T", vec![Value::from(1)], 0);
        assert!(matches!(c.validate_tuple(&unknown), Err(RelationError::UnknownRelation { .. })));

        let bad_arity = Tuple::new("R", vec![Value::from(1)], 0);
        assert_eq!(
            c.validate_tuple(&bad_arity),
            Err(RelationError::ArityMismatch { relation: "R".into(), expected: 2, actual: 1 })
        );
    }

    #[test]
    fn require_schema_errors_on_missing() {
        let c = catalog();
        assert!(c.require_schema("R").is_ok());
        assert!(c.require_schema("nope").is_err());
    }
}
