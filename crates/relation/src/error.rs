//! Error types for the relational model.

use std::fmt;

/// Errors raised while constructing or validating relational objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A schema was declared with no attributes.
    EmptySchema {
        /// Name of the offending relation.
        relation: String,
    },
    /// A schema declares the same attribute name twice.
    DuplicateAttribute {
        /// Name of the offending relation.
        relation: String,
        /// The repeated attribute name.
        attribute: String,
    },
    /// A schema with this relation name is already registered.
    DuplicateRelation {
        /// Name of the offending relation.
        relation: String,
    },
    /// A tuple refers to a relation that is not in the catalog.
    UnknownRelation {
        /// The missing relation name.
        relation: String,
    },
    /// An attribute name does not exist in the relation's schema.
    UnknownAttribute {
        /// Relation searched.
        relation: String,
        /// The missing attribute name.
        attribute: String,
    },
    /// A tuple's arity does not match its schema.
    ArityMismatch {
        /// Relation the tuple claims to belong to.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity of the tuple.
        actual: usize,
    },
    /// An identifier (relation or attribute name) is syntactically invalid.
    InvalidIdentifier {
        /// The rejected identifier.
        name: String,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::EmptySchema { relation } => {
                write!(f, "schema for relation `{relation}` has no attributes")
            }
            RelationError::DuplicateAttribute { relation, attribute } => {
                write!(f, "relation `{relation}` declares attribute `{attribute}` more than once")
            }
            RelationError::DuplicateRelation { relation } => {
                write!(f, "relation `{relation}` is already registered in the catalog")
            }
            RelationError::UnknownRelation { relation } => {
                write!(f, "relation `{relation}` is not registered in the catalog")
            }
            RelationError::UnknownAttribute { relation, attribute } => {
                write!(f, "relation `{relation}` has no attribute named `{attribute}`")
            }
            RelationError::ArityMismatch { relation, expected, actual } => {
                write!(
                    f,
                    "tuple for relation `{relation}` has {actual} values but the schema expects {expected}"
                )
            }
            RelationError::InvalidIdentifier { name } => {
                write!(f, "`{name}` is not a valid identifier")
            }
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_names() {
        let err = RelationError::UnknownAttribute { relation: "R".into(), attribute: "Z".into() };
        let msg = err.to_string();
        assert!(msg.contains('R') && msg.contains('Z'));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&RelationError::EmptySchema { relation: "R".into() });
    }
}
