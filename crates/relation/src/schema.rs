//! Relation schemas.

use crate::{Name, RelationError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Index of an attribute within a relation schema.
pub type AttrIndex = usize;

/// A named relation schema: a relation name plus an ordered list of
/// attribute names.
///
/// Schemas are cheap to clone (the attribute list is shared behind an
/// [`Arc`]) because every tuple and query in the simulation refers to them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schema {
    relation: Name,
    attributes: Arc<Vec<Name>>,
}

fn valid_identifier(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().map(|c| c.is_ascii_alphabetic() || c == '_').unwrap_or(false)
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Schema {
    /// Creates a new schema.
    ///
    /// Fails if the relation name or any attribute name is not a valid
    /// identifier, if there are no attributes, or if an attribute name is
    /// repeated.
    pub fn new<R, I, A>(relation: R, attributes: I) -> Result<Self, RelationError>
    where
        R: Into<Name>,
        I: IntoIterator<Item = A>,
        A: Into<Name>,
    {
        let relation = relation.into();
        if !valid_identifier(&relation) {
            return Err(RelationError::InvalidIdentifier { name: relation.to_string() });
        }
        let attributes: Vec<Name> = attributes.into_iter().map(Into::into).collect();
        if attributes.is_empty() {
            return Err(RelationError::EmptySchema { relation: relation.to_string() });
        }
        for (i, attr) in attributes.iter().enumerate() {
            if !valid_identifier(attr) {
                return Err(RelationError::InvalidIdentifier { name: attr.to_string() });
            }
            if attributes[..i].contains(attr) {
                return Err(RelationError::DuplicateAttribute {
                    relation: relation.to_string(),
                    attribute: attr.to_string(),
                });
            }
        }
        Ok(Schema { relation, attributes: Arc::new(attributes) })
    }

    /// The relation name.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// The ordered attribute names.
    pub fn attributes(&self) -> &[Name] {
        &self.attributes
    }

    /// Name of the attribute at `index`, if it exists.
    pub fn attribute(&self, index: AttrIndex) -> Option<&str> {
        self.attributes.get(index).map(Name::as_str)
    }

    /// Name of the attribute at `index` as a cheaply clonable [`Name`].
    pub fn attribute_name(&self, index: AttrIndex) -> Option<&Name> {
        self.attributes.get(index)
    }

    /// The relation name as a cheaply clonable [`Name`].
    pub fn relation_name(&self) -> &Name {
        &self.relation
    }

    /// Position of the attribute named `name`, if it exists.
    pub fn index_of(&self, name: &str) -> Option<AttrIndex> {
        self.attributes.iter().position(|a| a == name)
    }

    /// Returns an error if `name` is not an attribute of this schema.
    pub fn require_attribute(&self, name: &str) -> Result<AttrIndex, RelationError> {
        self.index_of(name).ok_or_else(|| RelationError::UnknownAttribute {
            relation: self.relation.to_string(),
            attribute: name.to_string(),
        })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.relation, self.attributes.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_schema() {
        let s = Schema::new("R", ["A", "B"]).unwrap();
        assert_eq!(s.relation(), "R");
        assert_eq!(s.arity(), 2);
        assert_eq!(s.attribute(0), Some("A"));
        assert_eq!(s.index_of("B"), Some(1));
        assert_eq!(s.index_of("C"), None);
    }

    #[test]
    fn rejects_empty_schema() {
        let err = Schema::new("R", Vec::<String>::new()).unwrap_err();
        assert_eq!(err, RelationError::EmptySchema { relation: "R".into() });
    }

    #[test]
    fn rejects_duplicate_attribute() {
        let err = Schema::new("R", ["A", "A"]).unwrap_err();
        assert!(matches!(err, RelationError::DuplicateAttribute { .. }));
    }

    #[test]
    fn rejects_invalid_identifiers() {
        assert!(Schema::new("1R", ["A"]).is_err());
        assert!(Schema::new("R", ["a b"]).is_err());
        assert!(Schema::new("", ["A"]).is_err());
        assert!(Schema::new("R", [""]).is_err());
    }

    #[test]
    fn underscore_identifiers_allowed() {
        let s = Schema::new("_events", ["attr_1", "_x"]).unwrap();
        assert_eq!(s.arity(), 2);
    }

    #[test]
    fn require_attribute_reports_relation() {
        let s = Schema::new("R", ["A"]).unwrap();
        let err = s.require_attribute("Z").unwrap_err();
        assert_eq!(
            err,
            RelationError::UnknownAttribute { relation: "R".into(), attribute: "Z".into() }
        );
    }

    #[test]
    fn display_is_readable() {
        let s = Schema::new("R", ["A", "B"]).unwrap();
        assert_eq!(s.to_string(), "R(A, B)");
    }
}
