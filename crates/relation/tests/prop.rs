//! Property-based tests for the relational model.

use proptest::prelude::*;
use rjoin_relation::{Schema, Tuple, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![any::<i64>().prop_map(Value::Int), "[a-z]{0,8}".prop_map(Value::Str),]
}

proptest! {
    /// `key_fragment` must be injective: distinct values yield distinct
    /// fragments (otherwise value-level index keys could collide logically).
    #[test]
    fn key_fragment_injective(a in arb_value(), b in arb_value()) {
        if a != b {
            prop_assert_ne!(a.key_fragment(), b.key_fragment());
        } else {
            prop_assert_eq!(a.key_fragment(), b.key_fragment());
        }
    }

    /// Value ordering is a total order: antisymmetric and transitive on
    /// random triples.
    #[test]
    fn value_order_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        if a.cmp(&b) == Ordering::Less {
            prop_assert_eq!(b.cmp(&a), Ordering::Greater);
        }
        // Transitivity.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
    }

    /// Schema index_of/attribute are inverse of each other.
    #[test]
    fn schema_index_roundtrip(names in proptest::collection::btree_set("[A-Z][a-z0-9]{0,5}", 1..10)) {
        let names: Vec<String> = names.into_iter().collect();
        let schema = Schema::new("Rel", names.clone()).unwrap();
        for (i, name) in names.iter().enumerate() {
            prop_assert_eq!(schema.index_of(name), Some(i));
            prop_assert_eq!(schema.attribute(i), Some(name.as_str()));
        }
        prop_assert_eq!(schema.arity(), names.len());
    }

    /// Tuples keep their values and publication time through cloning and
    /// re-stamping.
    #[test]
    fn tuple_restamp_preserves_values(
        values in proptest::collection::vec(arb_value(), 1..8),
        t0 in any::<u64>(),
        t1 in any::<u64>(),
    ) {
        let t = Tuple::new("R", values.clone(), t0);
        prop_assert_eq!(t.values(), &values[..]);
        let restamped = t.with_pub_time(t1);
        prop_assert_eq!(restamped.pub_time(), t1);
        prop_assert_eq!(restamped.values(), &values[..]);
    }
}
