//! Shared sub-join evaluation, end to end: on an overlapping multi-query
//! workload the shared registry must produce **exactly** the per-query
//! answers of the unshared engine (and of the centralized oracle) while
//! measurably reducing `Eval` traffic, query-processing load and the number
//! of stored queries.

use rjoin_core::{traffic_class, EngineConfig, QueryId, RJoinEngine};
use rjoin_query::{Conjunct, JoinQuery, SelectItem};
use rjoin_relation::{Catalog, Tuple, Value};
use rjoin_workload::Scenario;

/// Brute-force centralized evaluation (Definition 1, window-aware): every
/// combination of one tuple per `FROM` relation satisfying all conjuncts —
/// with all publication times inside one window — contributes one row.
fn oracle_answers(catalog: &Catalog, query: &JoinQuery, tuples: &[Tuple]) -> Vec<Vec<Value>> {
    let window = *query.window();
    let relations = query.relations();
    let per_relation: Vec<Vec<&Tuple>> =
        relations.iter().map(|r| tuples.iter().filter(|t| t.relation() == r).collect()).collect();
    if per_relation.iter().any(|v| v.is_empty()) {
        return Vec::new();
    }
    let attr_value = |combo: &[&Tuple], relation: &str, attribute: &str| -> Option<Value> {
        let idx = relations.iter().position(|r| r == relation)?;
        let schema = catalog.schema(relation)?;
        combo[idx].value(schema.index_of(attribute)?).cloned()
    };
    let mut results = Vec::new();
    let mut indices = vec![0usize; relations.len()];
    loop {
        let combo: Vec<&Tuple> = indices.iter().zip(&per_relation).map(|(&i, v)| v[i]).collect();
        let earliest = combo.iter().map(|t| t.pub_time()).min().expect("non-empty combo");
        let latest = combo.iter().map(|t| t.pub_time()).max().expect("non-empty combo");
        let ok = window.within(earliest, latest)
            && query.conjuncts().iter().all(|c| match c {
                Conjunct::JoinEq(a, b) => {
                    attr_value(&combo, &a.relation, &a.attribute)
                        == attr_value(&combo, &b.relation, &b.attribute)
                }
                Conjunct::ConstEq(a, v) => {
                    attr_value(&combo, &a.relation, &a.attribute).as_ref() == Some(v)
                }
            });
        if ok {
            results.push(
                query
                    .select()
                    .iter()
                    .map(|item| match item {
                        SelectItem::Const(v) => v.clone(),
                        SelectItem::Attr(a) => attr_value(&combo, &a.relation, &a.attribute)
                            .expect("valid queries reference existing attributes"),
                    })
                    .collect(),
            );
        }
        let mut pos = 0;
        loop {
            indices[pos] += 1;
            if indices[pos] < per_relation[pos].len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
            if pos == relations.len() {
                return results;
            }
        }
    }
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

/// 40 input queries sharing 5 sub-join patterns (8 queries per pattern) over
/// a small, dense domain so joins actually complete.
fn overlap_workload() -> (Scenario, Vec<JoinQuery>, Vec<Tuple>) {
    let scenario = Scenario {
        nodes: 24,
        queries: 40,
        tuples: 50,
        joins: 2,
        relations: 6,
        attributes: 4,
        domain: 6,
        ..Scenario::small_test()
    };
    let queries = scenario.generate_overlapping_queries(5);
    // Publication times start after query submission in both engines (the
    // submission burst quiesces at tick 1).
    let tuples = scenario.generate_tuples(2);
    (scenario, queries, tuples)
}

fn run(share: bool) -> (RJoinEngine, Vec<QueryId>, Vec<JoinQuery>, Vec<Tuple>) {
    let (scenario, queries, tuples) = overlap_workload();
    // Value-level placement of rewrites guarantees exact oracle equality
    // (Theorems 1 and 2), so shared and unshared runs are comparable
    // answer-for-answer.
    let mut config = EngineConfig::default().with_value_level_only(true);
    if share {
        config = config.with_subjoin_sharing(true);
    }
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();
    let mut qids = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        qids.push(engine.submit_query(origins[i % origins.len()], q.clone()).unwrap());
    }
    engine.run_until_quiescent().unwrap();
    for (i, t) in tuples.iter().enumerate() {
        engine.publish_tuple(origins[i % origins.len()], t.clone()).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    (engine, qids, queries, tuples)
}

/// The acceptance gate of the shared sub-join subsystem: identical answers,
/// measurably less work.
#[test]
fn shared_registry_reduces_load_with_identical_answers() {
    let (unshared, qids_a, queries, tuples) = run(false);
    let (shared, qids_b, _, _) = run(true);
    assert_eq!(qids_a, qids_b);

    // 1. Answers are identical per query — to the unshared engine *and* to
    //    the centralized oracle.
    let catalog = overlap_workload().0.workload_schema().build_catalog();
    let mut total_answers = 0usize;
    for (qid, query) in qids_a.iter().zip(&queries) {
        let expected = sorted(oracle_answers(&catalog, query, &tuples));
        let base = sorted(unshared.answers().rows_for(*qid));
        let opt = sorted(shared.answers().rows_for(*qid));
        assert_eq!(base, expected, "unshared engine diverges from the oracle for {qid}");
        assert_eq!(opt, expected, "shared engine diverges from the oracle for {qid}");
        total_answers += expected.len();
    }
    assert!(total_answers > 0, "the workload must produce answers for the test to mean anything");

    // 2. Sharing actually engaged: queries merged, Evals saved, answers
    //    fanned out.
    let savings = shared.sharing_counters();
    assert!(savings.merged_queries > 0, "overlapping queries must merge: {savings:?}");
    assert!(savings.evals_saved > 0, "shared triggers must save re-index messages: {savings:?}");
    assert!(savings.fanout_answers > 0, "completions must fan out to subscribers: {savings:?}");
    assert!(!unshared.sharing_counters().any_sharing(), "sharing must stay off by default");

    // 3. The measurable wins: fewer stored queries, less Eval/index message
    //    traffic, lower query-processing and storage load.
    assert!(
        shared.stored_queries_current() < unshared.stored_queries_current(),
        "stored-query load must drop ({} vs {})",
        shared.stored_queries_current(),
        unshared.stored_queries_current()
    );
    let eval_a = unshared.traffic().total_sent_class(traffic_class::EVAL);
    let eval_b = shared.traffic().total_sent_class(traffic_class::EVAL);
    assert!(eval_b < eval_a, "Eval re-index traffic must drop ({eval_b} vs {eval_a})");
    assert!(
        shared.total_qpl() < unshared.total_qpl(),
        "query-processing load must drop ({} vs {})",
        shared.total_qpl(),
        unshared.total_qpl()
    );
    assert!(
        shared.total_sl() < unshared.total_sl(),
        "storage load must drop ({} vs {})",
        shared.total_sl(),
        unshared.total_sl()
    );

    // 4. The savings are visible through the stats snapshot as well.
    let stats = shared.stats();
    assert_eq!(stats.sharing, savings);
    assert_eq!(stats.stored_queries_current, shared.stored_queries_current());
}

/// Sharing under **sliding windows**: overlapping windowed queries must
/// still produce exactly the centralized windowed oracle's answers with the
/// registry on — the shared span gate (`window_min`/`window_max`) and the
/// no-merge-across-spans rule are what this exercises end to end.
#[test]
fn shared_registry_matches_windowed_oracle() {
    let (mut scenario, _, _) = overlap_workload();
    scenario.window = rjoin_query::WindowSpec::sliding_tuples(12);
    let queries = scenario.generate_overlapping_queries(5);
    let tuples = scenario.generate_tuples(2);
    let catalog = scenario.workload_schema().build_catalog();

    let run_with = |share: bool| {
        let mut config = EngineConfig::default().with_value_level_only(true);
        if share {
            config = config.with_subjoin_sharing(true);
        }
        let mut engine = RJoinEngine::new(config, catalog.clone(), scenario.nodes);
        let origins: Vec<_> = engine.node_ids().to_vec();
        let mut qids = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            qids.push(engine.submit_query(origins[i % origins.len()], q.clone()).unwrap());
        }
        engine.run_until_quiescent().unwrap();
        for (i, t) in tuples.iter().enumerate() {
            engine.publish_tuple(origins[i % origins.len()], t.clone()).unwrap();
        }
        engine.run_until_quiescent().unwrap();
        (engine, qids)
    };
    let (unshared, qids) = run_with(false);
    let (shared, qids_b) = run_with(true);
    assert_eq!(qids, qids_b);

    let mut total = 0usize;
    for (qid, query) in qids.iter().zip(&queries) {
        let expected = sorted(oracle_answers(&catalog, query, &tuples));
        assert_eq!(
            sorted(unshared.answers().rows_for(*qid)),
            expected,
            "unshared windowed run diverges from the oracle for {qid}"
        );
        assert_eq!(
            sorted(shared.answers().rows_for(*qid)),
            expected,
            "shared windowed run diverges from the oracle for {qid}"
        );
        total += expected.len();
    }
    assert!(total > 0, "the windowed overlap workload must produce answers");
    assert!(shared.sharing_counters().any_sharing(), "windowed twins must still merge");
}

/// Sharing must also hold up under the default (attribute-level capable)
/// placement: answers remain a subset-equal multiset of the unshared run's
/// per-query answers and sharing still saves work.
#[test]
fn shared_registry_is_sound_under_default_placement() {
    let (scenario, queries, tuples) = overlap_workload();
    let run_with = |share: bool| {
        let mut config = EngineConfig::default();
        if share {
            config = config.with_subjoin_sharing(true);
        }
        let catalog = scenario.workload_schema().build_catalog();
        let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
        let origins: Vec<_> = engine.node_ids().to_vec();
        let mut qids = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            qids.push(engine.submit_query(origins[i % origins.len()], q.clone()).unwrap());
        }
        engine.run_until_quiescent().unwrap();
        for (i, t) in tuples.iter().enumerate() {
            engine.publish_tuple(origins[i % origins.len()], t.clone()).unwrap();
        }
        engine.run_until_quiescent().unwrap();
        (engine, qids)
    };
    let (unshared, _) = run_with(false);
    let (shared, qids) = run_with(true);
    let catalog = scenario.workload_schema().build_catalog();
    // Soundness versus the oracle: every delivered row consumes one oracle
    // row (no unsound answers, no duplicates).
    for (qid, query) in qids.iter().zip(&queries) {
        let mut expected = sorted(oracle_answers(&catalog, query, &tuples));
        for row in sorted(shared.answers().rows_for(*qid)) {
            let pos = expected
                .iter()
                .position(|e| e == &row)
                .unwrap_or_else(|| panic!("unsound or duplicate shared answer {row:?}"));
            expected.remove(pos);
        }
    }
    assert!(shared.sharing_counters().any_sharing());
    // Sharing must not eat into recall: the shared run delivers at least as
    // many answers as the unshared one (attribute-level placement makes the
    // default config lossy in general, but merging twins only *adds*
    // trigger opportunities at their merge site, never removes them).
    assert!(!shared.answers().is_empty(), "the shared run must deliver answers");
    assert!(
        shared.answers().len() >= unshared.answers().len(),
        "sharing lost answers: {} shared vs {} unshared",
        shared.answers().len(),
        unshared.answers().len()
    );
}
