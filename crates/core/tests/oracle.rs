//! End-to-end correctness tests: the distributed RJoin evaluation is checked
//! against a brute-force centralized oracle implementing Definition 1 of the
//! paper (the bag union of the instantaneous query results over tuples
//! published at or after query submission).

use rjoin_core::{EngineConfig, PlacementStrategy, RJoinEngine};
use rjoin_query::{Conjunct, JoinQuery, SelectItem};
use rjoin_relation::{Catalog, Timestamp, Tuple, Value};
use rjoin_workload::{Scenario, WorkloadSchema};

/// Brute-force evaluation of a multi-way equi-join over a set of published
/// tuples: every combination of one tuple per `FROM` relation (published at
/// or after `insert_time`) that satisfies all conjuncts contributes one
/// answer row.
fn oracle_answers(
    catalog: &Catalog,
    query: &JoinQuery,
    insert_time: Timestamp,
    tuples: &[Tuple],
) -> Vec<Vec<Value>> {
    // `WindowSpec::None.within()` accepts everything, so the windowed oracle
    // degenerates to the plain Definition 1 evaluation for unwindowed queries.
    windowed_oracle_answers(catalog, query, insert_time, tuples)
}

fn attr_value<'a>(
    catalog: &Catalog,
    relations: &[rjoin_relation::Name],
    combo: &[&'a Tuple],
    relation: &str,
    attribute: &str,
) -> Option<&'a Value> {
    let idx = relations.iter().position(|r| r == relation)?;
    let schema = catalog.schema(relation)?;
    combo[idx].value(schema.index_of(attribute)?)
}

fn satisfies(
    catalog: &Catalog,
    query: &JoinQuery,
    relations: &[rjoin_relation::Name],
    combo: &[&Tuple],
) -> bool {
    query.conjuncts().iter().all(|conjunct| match conjunct {
        Conjunct::JoinEq(a, b) => {
            attr_value(catalog, relations, combo, &a.relation, &a.attribute)
                == attr_value(catalog, relations, combo, &b.relation, &b.attribute)
        }
        Conjunct::ConstEq(a, v) => {
            attr_value(catalog, relations, combo, &a.relation, &a.attribute) == Some(v)
        }
    })
}

fn project(
    catalog: &Catalog,
    query: &JoinQuery,
    relations: &[rjoin_relation::Name],
    combo: &[&Tuple],
) -> Vec<Value> {
    query
        .select()
        .iter()
        .map(|item| match item {
            SelectItem::Const(v) => v.clone(),
            SelectItem::Attr(a) => attr_value(catalog, relations, combo, &a.relation, &a.attribute)
                .cloned()
                .expect("valid queries only reference existing attributes"),
        })
        .collect()
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

/// Runs a scenario through the engine and returns (engine, query ids,
/// queries, tuples).
fn run_scenario(
    config: EngineConfig,
    scenario: &Scenario,
) -> (RJoinEngine, Vec<rjoin_core::QueryId>, Vec<JoinQuery>, Vec<Tuple>) {
    let schema = scenario.workload_schema();
    let catalog = schema.build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();

    let queries = scenario.generate_queries();
    let mut qids = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let origin = origins[i % origins.len()];
        qids.push(engine.submit_query(origin, q.clone()).unwrap());
    }
    engine.run_until_quiescent().unwrap();

    let tuples = scenario.generate_tuples(engine.now() + 1);
    for (i, t) in tuples.iter().enumerate() {
        let origin = origins[i % origins.len()];
        engine.publish_tuple(origin, t.clone()).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    (engine, qids, queries, tuples)
}

fn small_scenario(joins: usize, queries: usize, tuples: usize) -> Scenario {
    Scenario {
        nodes: 24,
        queries,
        tuples,
        joins,
        theta: 0.9,
        relations: 6,
        attributes: 4,
        domain: 8,
        ..Scenario::small_test()
    }
}

/// With value-level placement of rewritten queries (the Section 3 base
/// algorithm) and no windows, RJoin must produce *exactly* the bag of
/// answers of the centralized oracle: no answer lost, no duplicate added
/// (Theorems 1 and 2).
#[test]
fn matches_oracle_exactly_two_way() {
    let scenario = small_scenario(1, 30, 60);
    let config = EngineConfig::default().with_value_level_only(true);
    let (engine, qids, queries, tuples) = run_scenario(config, &scenario);
    let catalog = scenario.workload_schema().build_catalog();

    let mut total_expected = 0usize;
    for (qid, query) in qids.iter().zip(&queries) {
        let expected = sorted(oracle_answers(&catalog, query, 0, &tuples));
        let actual = sorted(engine.answers().rows_for(*qid));
        assert_eq!(actual, expected, "query {qid} answers diverge from the oracle");
        total_expected += expected.len();
    }
    assert!(total_expected > 0, "the workload should produce at least one answer");
}

#[test]
fn matches_oracle_exactly_three_way() {
    let scenario = small_scenario(2, 20, 50);
    let config = EngineConfig::default().with_value_level_only(true);
    let (engine, qids, queries, tuples) = run_scenario(config, &scenario);
    let catalog = scenario.workload_schema().build_catalog();

    let mut produced = 0usize;
    for (qid, query) in qids.iter().zip(&queries) {
        let expected = sorted(oracle_answers(&catalog, query, 0, &tuples));
        let actual = sorted(engine.answers().rows_for(*qid));
        assert_eq!(actual, expected, "query {qid} answers diverge from the oracle");
        produced += expected.len();
    }
    assert!(produced > 0, "the workload should produce at least one answer");
}

#[test]
fn matches_oracle_exactly_four_way() {
    let scenario = small_scenario(3, 12, 48);
    let config = EngineConfig::default().with_value_level_only(true);
    let (engine, qids, queries, tuples) = run_scenario(config, &scenario);
    let catalog = scenario.workload_schema().build_catalog();

    for (qid, query) in qids.iter().zip(&queries) {
        let expected = sorted(oracle_answers(&catalog, query, 0, &tuples));
        let actual = sorted(engine.answers().rows_for(*qid));
        assert_eq!(actual, expected, "query {qid} answers diverge from the oracle");
    }
}

/// Soundness holds for every placement strategy: every answer RJoin delivers
/// is an answer the oracle also derives (Theorem 2 additionally rules out
/// accidental duplicates, which we check via multiset inclusion).
#[test]
fn sound_and_duplicate_free_under_all_strategies() {
    for placement in [
        PlacementStrategy::RicAware,
        PlacementStrategy::Random,
        PlacementStrategy::Worst,
        PlacementStrategy::FirstInClause,
    ] {
        let scenario = small_scenario(2, 15, 40);
        let config = EngineConfig::with_placement(placement);
        let (engine, qids, queries, tuples) = run_scenario(config, &scenario);
        let catalog = scenario.workload_schema().build_catalog();

        for (qid, query) in qids.iter().zip(&queries) {
            let mut expected = sorted(oracle_answers(&catalog, query, 0, &tuples));
            let actual = sorted(engine.answers().rows_for(*qid));
            // Multiset inclusion: every delivered row consumes one oracle row.
            for row in &actual {
                let pos = expected.iter().position(|e| e == row).unwrap_or_else(|| {
                    panic!("unsound or duplicate answer {row:?} ({placement:?})")
                });
                expected.remove(pos);
            }
        }
    }
}

/// Tuples published *before* a query is submitted must not contribute to its
/// answers (Definition 1).
#[test]
fn earlier_tuples_do_not_count() {
    let schema = WorkloadSchema::new(4, 3, 5);
    let catalog = schema.build_catalog();
    let config = EngineConfig::default().with_value_level_only(true);
    let mut engine = RJoinEngine::new(config, catalog.clone(), 16);
    let origin = engine.node_ids()[0];

    // Publish a batch of tuples first.
    let mut gen = rjoin_workload::TupleGenerator::new(schema.clone(), 0.9, 3);
    let early = gen.generate_batch(30, 1);
    for t in &early {
        engine.publish_tuple(origin, t.clone()).unwrap();
    }
    engine.run_until_quiescent().unwrap();

    // Now submit queries, then publish a second batch.
    let mut qgen = rjoin_workload::QueryGenerator::new(schema.clone(), 2, 5);
    let queries = qgen.generate_batch(10);
    let mut qids = Vec::new();
    let submit_time = engine.now();
    for q in &queries {
        qids.push(engine.submit_query(origin, q.clone()).unwrap());
    }
    engine.run_until_quiescent().unwrap();

    let late = gen.generate_batch(30, engine.now() + 1);
    for t in &late {
        engine.publish_tuple(origin, t.clone()).unwrap();
    }
    engine.run_until_quiescent().unwrap();

    // The oracle only sees the late tuples (those published after submission).
    for (qid, query) in qids.iter().zip(&queries) {
        let expected = sorted(oracle_answers(&catalog, query, submit_time, &late));
        let actual = sorted(engine.answers().rows_for(*qid));
        assert_eq!(actual, expected, "query {qid} must ignore pre-submission tuples");
    }
}

/// DISTINCT queries deliver set semantics: no repeated rows, and the set of
/// rows matches the oracle's set.
#[test]
fn distinct_queries_deliver_set_semantics() {
    let mut scenario = small_scenario(1, 20, 60);
    scenario.distinct = true;
    // A tiny domain maximises the chance of duplicate joins.
    scenario.domain = 3;
    let config = EngineConfig::default().with_value_level_only(true);
    let (engine, qids, queries, tuples) = run_scenario(config, &scenario);
    let catalog = scenario.workload_schema().build_catalog();

    let mut any_duplicates_avoided = false;
    for (qid, query) in qids.iter().zip(&queries) {
        let actual = engine.answers().rows_for(*qid);
        assert!(
            !engine.answers().has_duplicate_rows(*qid),
            "DISTINCT query {qid} received duplicate rows"
        );
        let expected_bag = oracle_answers(&catalog, query, 0, &tuples);
        let mut expected_set = sorted(expected_bag.clone());
        expected_set.dedup();
        if expected_bag.len() > expected_set.len() {
            any_duplicates_avoided = true;
        }
        // Every delivered row is a valid answer.
        for row in &actual {
            assert!(expected_set.contains(row), "unsound DISTINCT answer {row:?}");
        }
    }
    assert!(any_duplicates_avoided, "the workload should contain at least one potential duplicate");
}

/// Windowed oracle: brute-force evaluation where a combination only counts
/// if the publication times of all participating tuples fit in one sliding
/// window (`max - min + 1 <= duration`, the Section 5 validity test applied
/// to the whole combination).
fn windowed_oracle_answers(
    catalog: &Catalog,
    query: &JoinQuery,
    insert_time: Timestamp,
    tuples: &[Tuple],
) -> Vec<Vec<Value>> {
    let window = *query.window();
    let relations = query.relations();
    let per_relation: Vec<Vec<&Tuple>> = relations
        .iter()
        .map(|r| {
            tuples.iter().filter(|t| t.relation() == r && t.pub_time() >= insert_time).collect()
        })
        .collect();
    if per_relation.iter().any(|v| v.is_empty()) {
        return Vec::new();
    }

    let mut results = Vec::new();
    let mut indices = vec![0usize; relations.len()];
    loop {
        let combo: Vec<&Tuple> = indices.iter().zip(&per_relation).map(|(&i, v)| v[i]).collect();
        let earliest = combo.iter().map(|t| t.pub_time()).min().expect("non-empty combo");
        let latest = combo.iter().map(|t| t.pub_time()).max().expect("non-empty combo");
        if window.within(earliest, latest) && satisfies(catalog, query, relations, &combo) {
            results.push(project(catalog, query, relations, &combo));
        }
        let mut pos = 0;
        loop {
            indices[pos] += 1;
            if indices[pos] < per_relation[pos].len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
            if pos == relations.len() {
                return results;
            }
        }
    }
}

/// A 4-way `SELECT DISTINCT` join under a sliding window, checked against
/// the centralized windowed oracle.
///
/// Tuples are published in bursts: within a burst all publication times fit
/// the window, while consecutive bursts are separated by far more than the
/// window length. Join values are chosen so that combinations mixing bursts
/// still satisfy every conjunct whenever R0 or R3 comes from a different
/// burst than the R1/R2 pair (the burst marker rides on the R1.A1 = R2.A1
/// edge, so those two relations must agree) — for all such combos only the
/// window can exclude them — and so
/// that each burst contributes fresh DISTINCT projections for every relation
/// (otherwise Section 4's duplicate elimination would legitimately suppress
/// later bursts). Each burst also contains a pair of tuples with identical
/// referenced projections, so bag semantics would deliver duplicate rows and
/// DISTINCT has to collapse them.
#[test]
fn four_way_distinct_sliding_window_matches_windowed_oracle() {
    let schema = WorkloadSchema::new(4, 3, 64);
    let catalog = schema.build_catalog();
    let config = EngineConfig::default().with_value_level_only(true);
    let mut engine = RJoinEngine::new(config, catalog.clone(), 24);
    let origin = engine.node_ids()[0];

    // Chain: R0.A0 = R1.A0 (constant 1), R1.A1 = R2.A1 (burst marker),
    // R2.A0 = R3.A0 (constant 3); select the two ends of the chain.
    let query = JoinQuery::new(
        true,
        vec![
            SelectItem::Attr(rjoin_query::QualifiedAttr::new("R0", "A2")),
            SelectItem::Attr(rjoin_query::QualifiedAttr::new("R3", "A2")),
        ],
        vec!["R0".into(), "R1".into(), "R2".into(), "R3".into()],
        vec![
            Conjunct::JoinEq(
                rjoin_query::QualifiedAttr::new("R0", "A0"),
                rjoin_query::QualifiedAttr::new("R1", "A0"),
            ),
            Conjunct::JoinEq(
                rjoin_query::QualifiedAttr::new("R1", "A1"),
                rjoin_query::QualifiedAttr::new("R2", "A1"),
            ),
            Conjunct::JoinEq(
                rjoin_query::QualifiedAttr::new("R2", "A0"),
                rjoin_query::QualifiedAttr::new("R3", "A0"),
            ),
        ],
        rjoin_query::WindowSpec::sliding_tuples(8),
    )
    .unwrap();
    let qid = engine.submit_query(origin, query.clone()).unwrap();
    engine.run_until_quiescent().unwrap();

    let tuple = |rel: &str, vals: [i64; 3], at: Timestamp| {
        Tuple::new(rel, vals.iter().map(|v| Value::from(*v)).collect(), at)
    };
    let mut published = Vec::new();
    for burst in 0..3i64 {
        // Bursts are 50 ticks apart — far beyond the 8-tuple window — while
        // the 6 tuples of one burst span 6 <= 8 positions.
        let base = engine.now() + 1 + 50 * burst as u64;
        let burst_tuples = [
            // Two R0 tuples with the same referenced projection (A0, A2):
            // the bag answer would repeat, DISTINCT must not.
            tuple("R0", [1, 0, burst], base),
            tuple("R0", [1, 5, burst], base + 1),
            tuple("R1", [1, burst, 0], base + 2),
            tuple("R2", [3, burst, 0], base + 3),
            tuple("R3", [3, 0, 10 + burst], base + 4),
            tuple("R3", [3, 1, 20 + burst], base + 5),
        ];
        for t in burst_tuples {
            engine.publish_tuple(origin, t.clone()).unwrap();
            published.push(t);
        }
        engine.run_until_quiescent().unwrap();
    }

    // The windowed bag oracle must see duplicates (the scenario exercises
    // DISTINCT), and its deduplicated form is the expected answer set.
    let bag = windowed_oracle_answers(&catalog, &query, 0, &published);
    let mut expected = sorted(bag.clone());
    expected.dedup();
    assert!(bag.len() > expected.len(), "the scenario must produce bag-duplicates");
    // Every burst contributes its two distinct rows: (b, 10+b) and (b, 20+b).
    assert_eq!(expected.len(), 6, "three bursts x two distinct rows each");

    let actual = sorted(engine.answers().rows_for(qid));
    assert!(!engine.answers().has_duplicate_rows(qid), "DISTINCT delivered duplicate rows");
    assert_eq!(
        actual, expected,
        "windowed DISTINCT answers diverge from the centralized windowed oracle"
    );
}

/// A 3-way join under a *tumbling* window, checked against the centralized
/// windowed oracle (ROADMAP "Oracle coverage" gap).
///
/// Join values are constant across bursts, so every cross-bucket combination
/// satisfies every conjunct — only the tumbling-bucket test can exclude it.
/// Three bursts land in three consecutive buckets, and one extra pair of
/// matching tuples straddles a bucket boundary, which the sliding validity
/// test would accept but the tumbling test must reject.
#[test]
fn three_way_tumbling_window_matches_windowed_oracle() {
    let schema = WorkloadSchema::new(3, 3, 64);
    let catalog = schema.build_catalog();
    let config = EngineConfig::default().with_value_level_only(true);
    let mut engine = RJoinEngine::new(config, catalog.clone(), 24);
    let origin = engine.node_ids()[0];

    let parts = |window| {
        JoinQuery::new(
            false,
            vec![
                SelectItem::Attr(rjoin_query::QualifiedAttr::new("R0", "A2")),
                SelectItem::Attr(rjoin_query::QualifiedAttr::new("R2", "A2")),
            ],
            vec!["R0".into(), "R1".into(), "R2".into()],
            vec![
                Conjunct::JoinEq(
                    rjoin_query::QualifiedAttr::new("R0", "A0"),
                    rjoin_query::QualifiedAttr::new("R1", "A0"),
                ),
                Conjunct::JoinEq(
                    rjoin_query::QualifiedAttr::new("R1", "A1"),
                    rjoin_query::QualifiedAttr::new("R2", "A1"),
                ),
            ],
            window,
        )
        .unwrap()
    };
    let query = parts(rjoin_query::WindowSpec::tumbling_time(20));
    let qid = engine.submit_query(origin, query.clone()).unwrap();
    engine.run_until_quiescent().unwrap();

    let tuple = |rel: &str, vals: [i64; 3], at: Timestamp| {
        Tuple::new(rel, vals.iter().map(|v| Value::from(*v)).collect(), at)
    };
    let mut published = Vec::new();
    // Three bursts, one per tumbling bucket [20b, 20b + 20).
    for burst in 0..3i64 {
        let base = 20 * burst as u64;
        for t in [
            tuple("R0", [1, 0, 100 + burst], base + 2),
            tuple("R1", [1, 2, 0], base + 3),
            tuple("R2", [5, 2, 200 + burst], base + 4),
        ] {
            published.push(t.clone());
            engine.publish_tuple(origin, t).unwrap();
        }
    }
    // A straddling pair: 18/19 sit in bucket 0, 21 in bucket 1. The sliding
    // test |start - now| + 1 <= 20 would join all three; tumbling must not.
    for t in
        [tuple("R0", [1, 0, 900], 18), tuple("R1", [1, 2, 1], 19), tuple("R2", [5, 2, 901], 21)]
    {
        published.push(t.clone());
        engine.publish_tuple(origin, t).unwrap();
    }
    engine.run_until_quiescent().unwrap();

    let expected = sorted(windowed_oracle_answers(&catalog, &query, 0, &published));
    // Sanity: without the window the constant join values join across
    // bursts, so the tumbling buckets must have excluded combinations.
    let unwindowed =
        windowed_oracle_answers(&catalog, &parts(rjoin_query::WindowSpec::None), 0, &published);
    assert!(
        unwindowed.len() > expected.len(),
        "the scenario must contain cross-bucket combinations for the window to exclude"
    );
    // And the straddling pair must not have produced the (900, 901) row.
    assert!(
        !expected.contains(&vec![Value::from(900), Value::from(901)]),
        "a combination straddling a bucket boundary must be excluded"
    );
    assert!(!expected.is_empty(), "within-bucket combinations must survive");

    let actual = sorted(engine.answers().rows_for(qid));
    assert_eq!(
        actual, expected,
        "tumbling-window answers diverge from the centralized windowed oracle"
    );
}

/// ALTT under churn (ROADMAP oracle gap): nodes join and leave mid-stream
/// while windowed queries keep running with the ALTT enabled and
/// attribute-level placement allowed. Membership changes hand application
/// state (stored queries, value-level tuples, ALTT entries) to the nodes
/// that become responsible for the keys, so the engine's answers must still
/// be exactly the centralized windowed oracle's.
#[test]
fn altt_under_churn_matches_windowed_oracle() {
    let schema = WorkloadSchema::new(4, 3, 6);
    let catalog = schema.build_catalog();
    // Attribute-level placement of rewrites is allowed: completeness then
    // rests on the ALTT (retention far beyond the run length) — exactly the
    // Section 4 configuration the churn must not break.
    let config = EngineConfig::default().with_altt(100_000).with_delay(2);
    let mut engine = RJoinEngine::new(config, catalog.clone(), 20);
    let origin = engine.node_ids()[0];

    let mut qgen = rjoin_workload::QueryGenerator::new(schema.clone(), 2, 11)
        .with_window(rjoin_query::WindowSpec::sliding_tuples(30));
    let queries = qgen.generate_batch(8);
    let mut qids = Vec::new();
    for q in &queries {
        qids.push(engine.submit_query(origin, q.clone()).unwrap());
    }
    engine.run_until_quiescent().unwrap();

    let mut tgen = rjoin_workload::TupleGenerator::new(schema.clone(), 0.9, 13);
    let mut published = Vec::new();
    let mut moved_total = 0usize;
    for round in 0..6 {
        for t in tgen.generate_batch(10, engine.now() + 1) {
            engine.publish_tuple(origin, t.clone()).unwrap();
            published.push(t);
        }
        engine.run_until_quiescent().unwrap();

        // Churn between bursts: one node joins, one (never the query owner,
        // never the newcomer) leaves gracefully, handing its state over.
        let added = engine.join_node(&format!("churn-oracle-{round}")).unwrap();
        let victim = engine
            .node_ids()
            .iter()
            .copied()
            .find(|id| *id != origin && *id != added)
            .expect("the ring always keeps more than two nodes");
        moved_total += engine.leave_node(victim).unwrap();
        engine.run_until_quiescent().unwrap();
    }
    assert!(moved_total > 0, "churn must actually re-home application state");

    let mut total = 0usize;
    for (qid, query) in qids.iter().zip(&queries) {
        let expected = sorted(windowed_oracle_answers(&catalog, query, 0, &published));
        let actual = sorted(engine.answers().rows_for(*qid));
        assert_eq!(
            actual, expected,
            "query {qid} diverges from the centralized windowed oracle under churn"
        );
        total += expected.len();
    }
    assert!(total > 0, "the churn workload must produce answers");
}

/// The same churn schedule with shared sub-join evaluation enabled on an
/// overlapping workload: re-homed shared entries must keep fanning answers
/// out to every subscriber, still matching the oracle exactly.
#[test]
fn shared_subjoins_survive_churn() {
    let schema = WorkloadSchema::new(4, 3, 6);
    let catalog = schema.build_catalog();
    let config = EngineConfig::default().with_value_level_only(true).with_subjoin_sharing(true);
    let mut engine = RJoinEngine::new(config, catalog.clone(), 20);
    let origin = engine.node_ids()[0];

    // 12 queries over 3 shared sub-join patterns.
    let mut qgen = rjoin_workload::QueryGenerator::new(schema.clone(), 2, 21);
    let queries = qgen.generate_overlapping_batch(12, 3);
    let mut qids = Vec::new();
    for q in &queries {
        qids.push(engine.submit_query(origin, q.clone()).unwrap());
    }
    engine.run_until_quiescent().unwrap();

    let mut tgen = rjoin_workload::TupleGenerator::new(schema.clone(), 0.9, 23);
    let mut published = Vec::new();
    for round in 0..4 {
        for t in tgen.generate_batch(12, engine.now() + 1) {
            engine.publish_tuple(origin, t.clone()).unwrap();
            published.push(t);
        }
        engine.run_until_quiescent().unwrap();
        let added = engine.join_node(&format!("churn-shared-{round}")).unwrap();
        let victim = engine
            .node_ids()
            .iter()
            .copied()
            .find(|id| *id != origin && *id != added)
            .expect("the ring always keeps more than two nodes");
        engine.leave_node(victim).unwrap();
        engine.run_until_quiescent().unwrap();
    }

    assert!(engine.sharing_counters().any_sharing(), "the overlap must engage sharing");
    let mut total = 0usize;
    for (qid, query) in qids.iter().zip(&queries) {
        let expected = sorted(oracle_answers(&catalog, query, 0, &published));
        let actual = sorted(engine.answers().rows_for(*qid));
        assert_eq!(actual, expected, "shared query {qid} diverges from the oracle under churn");
        total += expected.len();
    }
    assert!(total > 0, "the shared churn workload must produce answers");
}

/// The ALTT extension recovers answers that would otherwise be lost when an
/// input query is delayed behind a tuple that should trigger it (Example 1 /
/// Theorem 1).
#[test]
fn altt_recovers_from_message_delays() {
    let schema = WorkloadSchema::new(3, 3, 4);
    let catalog = schema.build_catalog();

    let run = |altt: Option<u64>| -> usize {
        let mut config = EngineConfig::default().with_value_level_only(true).with_delay(5);
        config.altt_delta = altt;
        let mut engine = RJoinEngine::new(config, catalog.clone(), 12);
        let origin = engine.node_ids()[0];
        // Publish the tuple and submit the query in the same tick: both are
        // in flight together and the tuple is processed first (it was sent
        // first), recreating the race of Example 1.
        let tuple_r = Tuple::new("R0", vec![Value::from(1), Value::from(2), Value::from(3)], 0);
        let tuple_s = Tuple::new("R1", vec![Value::from(1), Value::from(7), Value::from(9)], 0);
        engine.publish_tuple(origin, tuple_r).unwrap();
        engine.publish_tuple(origin, tuple_s).unwrap();
        let q = rjoin_query::parse_query("SELECT R0.A1, R1.A1 FROM R0, R1 WHERE R0.A0 = R1.A0")
            .unwrap();
        let qid = engine.submit_query(origin, q).unwrap();
        engine.run_until_quiescent().unwrap();
        engine.answers().count_for(qid)
    };

    assert_eq!(run(None), 0, "without the ALTT the racing answer is lost");
    assert_eq!(run(Some(1000)), 1, "with the ALTT the answer is recovered");
}
