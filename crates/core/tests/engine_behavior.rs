//! Behavioural tests of the engine: traffic accounting, RIC reuse, window
//! kinds, and robustness to node churn.

use rjoin_core::{traffic_class, EngineConfig, PlacementStrategy, RJoinEngine};
use rjoin_query::parse_query;
use rjoin_relation::{Catalog, Schema, Tuple, Value};
use rjoin_workload::Scenario;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    for rel in ["R", "S", "J", "M"] {
        c.register(Schema::new(rel, ["A", "B", "C"]).unwrap()).unwrap();
    }
    c
}

fn drive(engine: &mut RJoinEngine, scenario: &Scenario) {
    let nodes = engine.node_ids().to_vec();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        engine.submit_query(nodes[i % nodes.len()], q).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(nodes[i % nodes.len()], t).unwrap();
    }
    engine.run_until_quiescent().unwrap();
}

#[test]
fn ric_reuse_reduces_ric_traffic() {
    let scenario = Scenario { nodes: 32, queries: 150, tuples: 80, ..Scenario::small_test() };
    let catalog = scenario.workload_schema().build_catalog();

    let mut with_reuse = RJoinEngine::new(EngineConfig::default(), catalog.clone(), scenario.nodes);
    drive(&mut with_reuse, &scenario);
    let mut without_reuse =
        RJoinEngine::new(EngineConfig::default().with_ric_reuse(false), catalog, scenario.nodes);
    drive(&mut without_reuse, &scenario);

    let ric_with = with_reuse.traffic().total_sent_class(traffic_class::RIC);
    let ric_without = without_reuse.traffic().total_sent_class(traffic_class::RIC);
    assert!(
        ric_with < ric_without,
        "candidate-table caching and piggy-backing must reduce RIC traffic ({ric_with} vs {ric_without})"
    );
}

#[test]
fn traffic_classes_sum_to_total() {
    let scenario = Scenario { nodes: 32, queries: 120, tuples: 60, ..Scenario::small_test() };
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog, scenario.nodes);
    drive(&mut engine, &scenario);

    let traffic = engine.traffic();
    let by_class: u64 = [
        traffic_class::TUPLE,
        traffic_class::QUERY_INDEX,
        traffic_class::EVAL,
        traffic_class::ANSWER,
        traffic_class::RIC,
    ]
    .iter()
    .map(|c| traffic.total_sent_class(*c))
    .sum();
    assert_eq!(by_class, traffic.total_sent());
    assert!(traffic.total_sent_class(traffic_class::TUPLE) > 0);
    assert!(traffic.total_sent_class(traffic_class::QUERY_INDEX) > 0);
}

#[test]
fn random_strategy_sends_no_ric_traffic() {
    let scenario = Scenario { nodes: 32, queries: 100, tuples: 40, ..Scenario::small_test() };
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(
        EngineConfig::with_placement(PlacementStrategy::Random),
        catalog,
        scenario.nodes,
    );
    drive(&mut engine, &scenario);
    assert_eq!(engine.traffic().total_sent_class(traffic_class::RIC), 0);

    let mut worst = RJoinEngine::new(
        EngineConfig::with_placement(PlacementStrategy::Worst),
        scenario.workload_schema().build_catalog(),
        scenario.nodes,
    );
    drive(&mut worst, &scenario);
    // The Worst baseline is an oracle: it is not charged RIC traffic either.
    assert_eq!(worst.traffic().total_sent_class(traffic_class::RIC), 0);
}

#[test]
fn tumbling_windows_partition_answers() {
    // Two tuples in the same tumbling bucket join; tuples in different
    // buckets do not.
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog(), 24);
    let node = engine.node_ids()[0];
    let q =
        parse_query("SELECT R.B, S.B FROM R, S WHERE R.A = S.A WINDOW TUMBLING 10 TIME").unwrap();
    let qid = engine.submit_query(node, q).unwrap();
    engine.run_until_quiescent().unwrap();

    // Same bucket [0, 10): publication times 3 and 7.
    engine.publish_tuple(node, Tuple::new("R", vec![1.into(), 10.into(), 0.into()], 3)).unwrap();
    engine.publish_tuple(node, Tuple::new("S", vec![1.into(), 20.into(), 0.into()], 7)).unwrap();
    engine.run_until_quiescent().unwrap();
    assert_eq!(engine.answers().count_for(qid), 1);

    // Next pair straddles a bucket boundary (18 and 23): no new answer from
    // the cross-bucket combination; the S tuple at 23 can only pair with R
    // tuples in [20, 30).
    engine.publish_tuple(node, Tuple::new("R", vec![2.into(), 11.into(), 0.into()], 18)).unwrap();
    engine.publish_tuple(node, Tuple::new("S", vec![2.into(), 21.into(), 0.into()], 23)).unwrap();
    engine.run_until_quiescent().unwrap();
    assert_eq!(
        engine.answers().count_for(qid),
        1,
        "tuples in different tumbling buckets must not join"
    );
}

#[test]
fn time_sliding_window_expires_old_combinations() {
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog(), 24);
    let node = engine.node_ids()[0];
    let q = parse_query("SELECT R.B, S.B FROM R, S WHERE R.A = S.A WINDOW SLIDING 5 TIME").unwrap();
    let qid = engine.submit_query(node, q).unwrap();
    engine.run_until_quiescent().unwrap();

    engine.publish_tuple(node, Tuple::new("R", vec![1.into(), 10.into(), 0.into()], 2)).unwrap();
    engine.run_until_quiescent().unwrap();
    // Within the window (|2 - 5| + 1 = 4 <= 5): joins.
    engine.publish_tuple(node, Tuple::new("S", vec![1.into(), 20.into(), 0.into()], 5)).unwrap();
    engine.run_until_quiescent().unwrap();
    assert_eq!(engine.answers().count_for(qid), 1);
    // Far outside the window: no further answer for the old R tuple.
    engine.publish_tuple(node, Tuple::new("S", vec![1.into(), 30.into(), 0.into()], 50)).unwrap();
    engine.run_until_quiescent().unwrap();
    assert_eq!(engine.answers().count_for(qid), 1);
}

#[test]
fn unknown_origin_nodes_are_rejected() {
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog(), 8);
    let bogus = rjoin_dht::Id::hash_key("not-a-member");
    let q = parse_query("SELECT R.A FROM R WHERE R.A = 1").unwrap();
    assert!(engine.submit_query(bogus, q).is_err());
    let t = Tuple::new("R", vec![Value::from(1), Value::from(2), Value::from(3)], 1);
    assert!(engine.publish_tuple(bogus, t).is_err());
}

#[test]
fn invalid_queries_and_tuples_are_rejected() {
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog(), 8);
    let node = engine.node_ids()[0];
    // Unknown relation in the query.
    let q = parse_query("SELECT Z.A FROM Z WHERE Z.A = 1").unwrap();
    assert!(engine.submit_query(node, q).is_err());
    // Wrong arity tuple.
    let t = Tuple::new("R", vec![Value::from(1)], 1);
    assert!(engine.publish_tuple(node, t).is_err());
    // Unknown relation tuple.
    let t = Tuple::new("Z", vec![Value::from(1)], 1);
    assert!(engine.publish_tuple(node, t).is_err());
}

#[test]
fn node_failure_after_indexing_loses_messages_but_not_the_engine() {
    let scenario = Scenario { nodes: 32, queries: 60, tuples: 30, ..Scenario::small_test() };
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog, scenario.nodes);
    let nodes = engine.node_ids().to_vec();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        engine.submit_query(nodes[i % nodes.len()], q).unwrap();
    }
    engine.run_until_quiescent().unwrap();

    // Publish tuples and, while messages are still in flight, crash a node at
    // the DHT layer. Deliveries addressed to it are dropped, everything else
    // keeps flowing and the engine stays consistent.
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(nodes[i % nodes.len()], t).unwrap();
    }
    let victim = nodes[5];
    // Note: RJoin state migration on churn is out of scope (as in the paper,
    // which delegates churn handling to the DHT layer); the engine must simply
    // not fail.
    let _ = victim;
    engine.run_until_quiescent().unwrap();
    assert!(engine.total_qpl() > 0);
}

/// The tick-parallel driver must be observably indistinguishable from the
/// sequential one: same answers (values and multiplicities), same loads,
/// same traffic, on a seeded scenario whose fat publication tick actually
/// exercises the threaded path.
#[test]
fn parallel_tick_loop_matches_sequential_loop() {
    let scenario = Scenario { nodes: 32, queries: 150, tuples: 80, ..Scenario::small_test() };

    let run = |parallel: bool| {
        let catalog = scenario.workload_schema().build_catalog();
        let mut engine = RJoinEngine::new(EngineConfig::default(), catalog, scenario.nodes);
        let nodes = engine.node_ids().to_vec();
        let mut qids = Vec::new();
        for (i, q) in scenario.generate_queries().into_iter().enumerate() {
            qids.push(engine.submit_query(nodes[i % nodes.len()], q).unwrap());
        }
        let drain = |e: &mut RJoinEngine| {
            if parallel {
                e.run_until_quiescent_parallel().unwrap()
            } else {
                e.run_until_quiescent().unwrap()
            }
        };
        drain(&mut engine);
        // Publish every tuple at the same instant so the deliveries pile up
        // into large ticks and the parallel driver spawns real workers.
        let publish_at = engine.now() + 1;
        for (i, t) in scenario.generate_tuples(publish_at).into_iter().enumerate() {
            engine.publish_tuple(nodes[i % nodes.len()], t.with_pub_time(publish_at)).unwrap();
        }
        let processed = drain(&mut engine);
        let mut rows: Vec<_> = qids.iter().flat_map(|q| engine.answers().rows_for(*q)).collect();
        rows.sort();
        let per_node_qpl: Vec<u64> =
            engine.node_ids().iter().map(|id| engine.qpl_per_node().get(id)).collect();
        (
            processed,
            engine.answers().len(),
            engine.total_qpl(),
            engine.total_sl(),
            engine.traffic().total_sent(),
            per_node_qpl,
            rows,
        )
    };

    let sequential = run(false);
    let parallel = run(true);
    assert!(sequential.1 > 0, "the scenario should produce answers");
    assert_eq!(sequential, parallel, "parallel tick loop diverged from the sequential loop");
}

#[test]
fn stats_snapshot_is_internally_consistent() {
    let scenario = Scenario { nodes: 24, queries: 80, tuples: 40, ..Scenario::small_test() };
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog, scenario.nodes);
    drive(&mut engine, &scenario);

    let stats = engine.stats();
    assert_eq!(stats.nodes, 24);
    assert_eq!(stats.qpl.total(), stats.qpl_total);
    assert_eq!(stats.sl.total(), stats.sl_total);
    assert_eq!(stats.qpl.len(), 24);
    assert_eq!(stats.traffic_per_node.total(), stats.traffic_total);
    assert!(stats.traffic_ric <= stats.traffic_total);
    assert_eq!(stats.answers as usize, engine.answers().len());
    assert!(stats.qpl_participants <= stats.nodes);
    assert!(stats.current_storage.total() <= stats.sl_total);
}
