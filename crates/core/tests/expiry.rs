//! Differential tests of timer-wheel expiry against the legacy
//! contact-driven sweep: for sliding and tumbling windows, with shared
//! sub-joins, the ALTT, hot-key splitting and membership churn in the mix,
//! the wheel-driven engine must deliver **byte-identical** per-query answers
//! and hold exactly the same live state after garbage collection as the
//! sweep-driven engine it replaces.
//!
//! The shard counts exercised honor the `RJOIN_SHARDS` environment variable
//! (comma-separated, e.g. `RJOIN_SHARDS=1,4`), which is what the CI
//! shard-count matrix sets; the default covers `1,4`.

use rjoin_core::{EngineConfig, QueryId, RJoinEngine};
use rjoin_query::WindowSpec;
use rjoin_relation::Tuple;
use rjoin_workload::Scenario;

/// Shard counts to exercise, from `RJOIN_SHARDS` (default `1,4`). A count
/// of 1 runs the single-queue driver, larger counts the sharded runtime.
fn shard_counts() -> Vec<usize> {
    std::env::var("RJOIN_SHARDS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4])
}

fn scenario(window: WindowSpec) -> Scenario {
    Scenario {
        nodes: 24,
        queries: 30,
        tuples: 60,
        joins: 2,
        relations: 6,
        attributes: 4,
        domain: 6,
        window,
        ..Scenario::small_test()
    }
}

fn drain(engine: &mut RJoinEngine, shards: usize) {
    if shards > 1 {
        engine.run_until_quiescent_parallel().unwrap();
    } else {
        engine.run_until_quiescent().unwrap();
    }
}

/// Runs the windowed workload — overlapping queries, two tuple waves with a
/// node joining between them and leaving after them (so re-homed state must
/// expire correctly at its new home too) — under the given expiry mode.
fn run(
    window: WindowSpec,
    base: EngineConfig,
    shards: usize,
    wheel: bool,
) -> (RJoinEngine, Vec<QueryId>) {
    let scenario = scenario(window);
    let queries = scenario.generate_overlapping_queries(5);
    let config = base.with_shards(shards).with_wheel_expiry(wheel);
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();
    let mut qids = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        qids.push(engine.submit_query(origins[i % origins.len()], q.clone()).unwrap());
    }
    drain(&mut engine, shards);

    // Two tuple waves, each generated at the then-current clock: tuples
    // enter the network at their publication time, the contract wheel-mode
    // deadlines are derived under (the wheel/sweep clock trajectories match,
    // so both engines see identical waves).
    let half = Scenario { tuples: scenario.tuples / 2, ..scenario.clone() };
    let second = Scenario { seed: scenario.seed ^ 0x9E37, ..half.clone() };
    let publish = |engine: &mut RJoinEngine, wave: &[Tuple], shards: usize| {
        for (i, t) in wave.iter().enumerate() {
            engine.publish_tuple(origins[i % origins.len()], t.clone()).unwrap();
        }
        drain(engine, shards);
    };
    let wave = half.generate_tuples(engine.now() + 1);
    publish(&mut engine, &wave, shards);
    // Churn at the quiescent points: a joiner steals buckets mid-run (their
    // wheel tokens on the donor go stale; the joiner re-schedules), then
    // leaves again, re-homing its state a second time.
    let joined = engine.join_node("expiry-churn").unwrap();
    let wave = second.generate_tuples(engine.now() + 1);
    publish(&mut engine, &wave, shards);
    engine.leave_node(joined).unwrap();
    (engine, qids)
}

#[test]
fn wheel_expiry_matches_sweep_differentially() {
    for shards in shard_counts() {
        for (kind, window) in [
            ("sliding", WindowSpec::sliding_tuples(16)),
            ("tumbling", WindowSpec::tumbling_time(16)),
        ] {
            for (variant, config) in [
                ("shared+altt", EngineConfig::default().with_subjoin_sharing(true).with_altt(64)),
                ("split+altt", EngineConfig::default().with_altt(32).with_hot_key_splitting(4, 2)),
            ] {
                let tag = format!("shards={shards} window={kind} variant={variant}");
                let (mut with_wheel, qids) = run(window, config.clone(), shards, true);
                let (mut with_sweep, sweep_qids) = run(window, config.clone(), shards, false);
                assert_eq!(qids, sweep_qids, "{tag}: query ids must line up");

                // Answers are byte-identical per query: expiry mode affects
                // when dead state is reclaimed, never what is answered.
                let mut produced = 0usize;
                for qid in &qids {
                    let wheel_rows = with_wheel.answers().rows_for(*qid);
                    let sweep_rows = with_sweep.answers().rows_for(*qid);
                    assert_eq!(wheel_rows, sweep_rows, "{tag}: answers diverge for {qid}");
                    produced += wheel_rows.len();
                }
                assert!(produced > 0, "{tag}: the workload should produce answers");

                // Each mode took the reclamation path it claims.
                let wheel_counters = with_wheel.state_counters();
                let sweep_counters = with_sweep.state_counters();
                assert!(wheel_counters.wheel_pops > 0, "{tag}: the wheel never popped");
                assert_eq!(sweep_counters.wheel_pops, 0, "{tag}: sweep mode must not pop");
                assert_eq!(
                    sweep_counters.wheel_scheduled, 0,
                    "{tag}: sweep mode must not schedule deadlines"
                );

                // After garbage collection both engines hold exactly the
                // same live stored-query state.
                with_wheel.gc_expired_state();
                with_sweep.gc_expired_state();
                assert_eq!(
                    with_wheel.stored_queries_current(),
                    with_sweep.stored_queries_current(),
                    "{tag}: live stored queries diverge after GC"
                );
                assert_eq!(
                    with_wheel.state_counters().altt_slab_live,
                    with_sweep.state_counters().altt_slab_live,
                    "{tag}: live ALTT entries diverge after GC"
                );
            }
        }
    }
}

/// Forced splitting interacting with churn under the wheel: `split_key`
/// re-homes stored windowed state to the sub-key owners mid-run (the donor's
/// wheel tokens go stale, the receivers re-schedule), a joining node steals
/// some of it again, and the leave re-homes it a third time. No deadline may
/// be orphaned or lost along the way: answers and post-GC live state must
/// match the sweep oracle exactly.
#[test]
fn forced_split_and_churn_rehome_wheel_deadlines() {
    let window = WindowSpec::sliding_tuples(16);
    let run_split = |wheel: bool| -> (RJoinEngine, Vec<QueryId>) {
        let scenario = scenario(window);
        let config = EngineConfig::default()
            .with_subjoin_sharing(true)
            .with_altt(64)
            .with_wheel_expiry(wheel);
        let catalog = scenario.workload_schema().build_catalog();
        let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
        let origins: Vec<_> = engine.node_ids().to_vec();
        let mut qids = Vec::new();
        for (i, q) in scenario.generate_overlapping_queries(5).into_iter().enumerate() {
            qids.push(engine.submit_query(origins[i % origins.len()], q).unwrap());
        }
        engine.run_until_quiescent().unwrap();
        let half = Scenario { tuples: scenario.tuples / 2, ..scenario.clone() };
        let second = Scenario { seed: scenario.seed ^ 0x9E37, ..half.clone() };
        let publish = |engine: &mut RJoinEngine, wave: Vec<Tuple>| {
            for (i, t) in wave.into_iter().enumerate() {
                engine.publish_tuple(origins[i % origins.len()], t).unwrap();
            }
            engine.run_until_quiescent().unwrap();
        };
        let wave = half.generate_tuples(engine.now() + 1);
        publish(&mut engine, wave);
        // Split every attribute key of the head relation while its buckets
        // hold live windowed entries, then churn the membership.
        for attr in ["A0", "A1", "A2", "A3"] {
            engine.split_key(&rjoin_query::IndexKey::attribute("R0", attr), 4).unwrap();
        }
        let joined = engine.join_node("expiry-split-churn").unwrap();
        let wave = second.generate_tuples(engine.now() + 1);
        publish(&mut engine, wave);
        engine.leave_node(joined).unwrap();
        (engine, qids)
    };

    let (mut with_wheel, qids) = run_split(true);
    let (mut with_sweep, sweep_qids) = run_split(false);
    assert_eq!(qids, sweep_qids);
    for qid in &qids {
        assert_eq!(
            with_wheel.answers().rows_for(*qid),
            with_sweep.answers().rows_for(*qid),
            "split+churn: answers diverge for {qid}"
        );
    }
    assert!(with_wheel.state_counters().wheel_pops > 0, "re-homed deadlines must still pop");
    with_wheel.gc_expired_state();
    with_sweep.gc_expired_state();
    assert_eq!(
        with_wheel.stored_queries_current(),
        with_sweep.stored_queries_current(),
        "split+churn: live stored queries diverge after GC"
    );
    assert_eq!(
        with_wheel.state_counters().altt_slab_live,
        with_sweep.state_counters().altt_slab_live,
        "split+churn: live ALTT entries diverge after GC"
    );
}

/// The wheel engine's reclamation is dominated by deadline pops, not
/// contact stumbles: on a windowed workload with long-lived buckets the
/// sweep engine can only reclaim what later arrivals happen to touch,
/// while the wheel retires every expired entry. After GC the two agree,
/// but *during* the run the wheel holds no more live slab state than the
/// sweep engine does.
#[test]
fn wheel_retires_state_the_sweep_leaves_behind() {
    let window = WindowSpec::sliding_tuples(16);
    let config = EngineConfig::default().with_subjoin_sharing(true).with_altt(64);
    let (with_wheel, _) = run(window, config.clone(), 1, true);
    let (with_sweep, _) = run(window, config, 1, false);
    // Before any explicit GC: the sweep engine still stores every entry a
    // walk never contacted; the wheel engine already popped them.
    assert!(
        with_wheel.stored_queries_current() <= with_sweep.stored_queries_current(),
        "wheel ({}) must never hold more stored queries than sweep ({})",
        with_wheel.stored_queries_current(),
        with_sweep.stored_queries_current(),
    );
    let wheel_counters = with_wheel.state_counters();
    assert!(
        wheel_counters.wheel_pops >= wheel_counters.contact_expirations,
        "deadline pops should dominate contact expiry under the wheel: {wheel_counters:?}"
    );
}
