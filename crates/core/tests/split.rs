//! Oracle suite for hot-key splitting: the split engine must deliver the
//! **identical answer set** to the unsplit engine on skewed workloads —
//! under both skew levels, under graceful churn and under every driver the
//! `RJOIN_SHARDS` matrix selects — while demonstrably moving the hot key's
//! load off the busiest node.
//!
//! All runs enable the ALTT with a retention covering the whole run, which
//! makes answer completeness placement-independent (splitting changes RIC
//! rates and therefore placement choices; without the ALTT the answer set
//! of deep joins is placement-dependent, see ROADMAP).

use rjoin_core::{EngineConfig, QueryId, RJoinEngine};
use rjoin_relation::Value;
use rjoin_workload::Scenario;
use std::collections::BTreeMap;

/// Shard counts to exercise, from `RJOIN_SHARDS` (default `1,4`), exactly
/// like the sharding suite.
fn shard_counts() -> Vec<usize> {
    std::env::var("RJOIN_SHARDS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4])
}

/// Heavy-hitter threshold used throughout the suite: low enough that the
/// skew scenarios' hot keys cross it midway through the run, so the suite
/// covers state migration at activation, not just clean-slate splitting.
const THRESHOLD: u64 = 12;
const PARTITIONS: u32 = 16;

fn config(split: bool, shards: usize) -> EngineConfig {
    let config = EngineConfig::default().with_altt(2_000).with_shards(shards);
    if split {
        config.with_hot_key_splitting(THRESHOLD, PARTITIONS)
    } else {
        config
    }
}

/// Drives a scenario the continuous way (drain after every publication, so
/// heat detection sees quiescent points), optionally with graceful churn
/// one third and two thirds into the tuple stream. Returns the engine and
/// the per-query sorted answer rows.
fn run(
    scenario: &Scenario,
    config: EngineConfig,
    churn: bool,
) -> (RJoinEngine, BTreeMap<QueryId, Vec<Vec<Value>>>) {
    let shards = config.shards;
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();
    let drain = |engine: &mut RJoinEngine| {
        if shards > 1 {
            engine.run_until_quiescent_parallel().unwrap()
        } else {
            engine.run_until_quiescent().unwrap()
        }
    };

    let mut qids = Vec::new();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        qids.push(engine.submit_query(origins[i % origins.len()], q).unwrap());
    }
    drain(&mut engine);

    let tuples = scenario.generate_tuples(engine.now() + 1);
    let churn_points = [tuples.len() / 3, 2 * tuples.len() / 3];
    for (i, t) in tuples.into_iter().enumerate() {
        if churn && i == churn_points[0] {
            engine.join_node("split-churn-join-a").unwrap();
            engine.join_node("split-churn-join-b").unwrap();
        }
        if churn && i == churn_points[1] {
            let leaver = engine.node_ids()[5];
            engine.leave_node(leaver).unwrap();
        }
        let origin = engine.node_ids()[i % engine.node_ids().len()];
        engine.publish_tuple(origin, t).unwrap();
        drain(&mut engine);
    }

    let answers = qids
        .into_iter()
        .map(|qid| {
            let mut rows = engine.answers().rows_for(qid);
            rows.sort();
            (qid, rows)
        })
        .collect();
    (engine, answers)
}

fn assert_answer_sets_equal(
    unsplit: &BTreeMap<QueryId, Vec<Vec<Value>>>,
    split: &BTreeMap<QueryId, Vec<Vec<Value>>>,
    label: &str,
) {
    assert_eq!(unsplit.len(), split.len());
    let mut total = 0usize;
    for (qid, rows) in unsplit {
        let split_rows = split.get(qid).unwrap_or_else(|| panic!("{label}: {qid} missing"));
        assert_eq!(
            rows, split_rows,
            "{label}: answer set for {qid} must be identical split vs unsplit"
        );
        total += rows.len();
    }
    assert!(total > 0, "{label}: the scenario must deliver answers");
}

/// The tentpole soundness property: at θ ∈ {{0.5, 0.9}} the split engine's
/// per-query answer sets are identical to the unsplit engine's, under every
/// shard count of the CI matrix.
#[test]
fn split_answers_identical_to_unsplit_across_skews_and_drivers() {
    for shards in shard_counts() {
        for theta in [0.5, 0.9] {
            let scenario = Scenario::skew_test(theta);
            let (unsplit_engine, unsplit) = run(&scenario, config(false, shards), false);
            let (split_engine, split) = run(&scenario, config(true, shards), false);
            assert!(
                split_engine.split_counters().keys_split > 0,
                "the θ={theta} scenario must actually trip the splitter (shards={shards})"
            );
            assert_eq!(
                unsplit_engine.split_counters().keys_split,
                0,
                "the control run must not split"
            );
            assert_answer_sets_equal(&unsplit, &split, &format!("theta={theta}, shards={shards}"));
        }
    }
}

/// Same property while the ring is churning (graceful join/leave between
/// drains): re-homed sub-key state keeps producing the identical answers.
#[test]
fn split_answers_identical_to_unsplit_under_churn() {
    for shards in shard_counts() {
        for theta in [0.5, 0.9] {
            let scenario = Scenario::skew_test(theta);
            let (_, unsplit) = run(&scenario, config(false, shards), true);
            let (split_engine, split) = run(&scenario, config(true, shards), true);
            assert!(split_engine.split_counters().keys_split > 0);
            assert_answer_sets_equal(
                &unsplit,
                &split,
                &format!("churn, theta={theta}, shards={shards}"),
            );
        }
    }
}

/// The split run is deterministic: repeating it reproduces the identical
/// answer log and counters.
#[test]
fn split_runs_are_deterministic() {
    for shards in shard_counts() {
        let scenario = Scenario::skew_test(0.9);
        let (engine_a, answers_a) = run(&scenario, config(true, shards), false);
        let (engine_b, answers_b) = run(&scenario, config(true, shards), false);
        assert_eq!(answers_a, answers_b, "split run must be deterministic (shards={shards})");
        assert_eq!(engine_a.split_counters(), engine_b.split_counters());
        assert_eq!(engine_a.split_map().len(), engine_b.split_map().len());
    }
}

/// Aggregates per-key loads onto a freshly bootstrapped reference ring
/// after up to `nodes / 4` identifier movements — the Figure 9 measurement.
fn idmove_distribution(
    nodes: usize,
    key_loads: &std::collections::BTreeMap<rjoin_dht::Id, u64>,
) -> rjoin_metrics::Distribution {
    let mut reference: rjoin_net::Network<()> =
        rjoin_net::Network::new(rjoin_net::NetworkConfig::default());
    reference.bootstrap(nodes, "rjoin-node");
    rjoin_dht::balance::rebalance(reference.dht_mut(), key_loads, nodes / 4)
        .expect("rebalance on a healthy ring");
    let loads = rjoin_dht::balance::node_loads(reference.dht(), key_loads)
        .expect("aggregation on a healthy ring");
    rjoin_metrics::Distribution::from_values(loads.values().copied())
}

/// The load story the tentpole promises on the θ = 0.9 skew scenario, in
/// the Figure 9 measurement: with identifier movement applied to *both*
/// arms, the two-tier system (splitting + identifier movement) carries at
/// most half the busiest-node load of the identifier-movement-only
/// baseline and strictly improves the Gini coefficient — because splitting
/// turns the indivisible point-mass keys into medium keys that identifier
/// movement can then actually balance. The split/heat counters are visible
/// in `ExperimentStats`.
#[test]
fn split_halves_the_busiest_node_and_reports_counters() {
    let scenario = Scenario::skew_test(0.9);
    let (unsplit_engine, _) = run(&scenario, config(false, 1), false);
    let (split_engine, _) = run(&scenario, config(true, 1), false);
    let unsplit = unsplit_engine.stats();
    let split = split_engine.stats();

    let baseline = idmove_distribution(scenario.nodes, &unsplit_engine.qpl_by_key_id());
    let two_tier = idmove_distribution(scenario.nodes, &split_engine.qpl_by_key_id());
    assert!(
        baseline.max() >= 2 * two_tier.max(),
        "two-tier busiest node must carry at most half the id-movement-only load ({} vs {})",
        baseline.max(),
        two_tier.max()
    );
    assert!(
        two_tier.gini() < baseline.gini(),
        "two-tier Gini must beat identifier movement alone ({:.3} vs {:.3})",
        two_tier.gini(),
        baseline.gini()
    );

    // Splitting already helps before identifier movement: the heaviest key
    // cools down and per-node balance improves.
    assert!(
        split.key_heat.max() < unsplit.key_heat.max(),
        "the heaviest key must cool down ({} vs {})",
        split.key_heat.max(),
        unsplit.key_heat.max()
    );
    assert!(
        split.qpl.gini() < unsplit.qpl.gini(),
        "per-node QPL Gini must improve ({:.3} vs {:.3})",
        split.qpl.gini(),
        unsplit.qpl.gini()
    );

    // The counters surface in the stats snapshot.
    assert!(split.splits.keys_split > 0);
    assert_eq!(split.splits.partitions_created, split.splits.keys_split * PARTITIONS as u64);
    assert!(split.splits.tuples_routed > 0, "tuples must route to sub-keys after a split");
    assert!(
        split.splits.query_fanout + split.splits.tuple_fanout > 0,
        "split keys must replicate the lighter side"
    );
    assert!(split.splits.migrated_queries > 0, "activation must migrate stored queries");
    assert_eq!(unsplit.splits, rjoin_metrics::SplitCounters::default());
    assert_eq!(split_engine.split_map().len(), split.splits.keys_split as usize);
}

/// Forced splitting via the harness entry point: `split_key` partitions a
/// key without any heat history, and the engine keeps producing identical
/// answers from a clean slate (no threshold configured at all).
#[test]
fn forced_split_key_is_answer_neutral() {
    let scenario = Scenario::skew_test(0.9);
    let (_, unsplit) = run(&scenario, config(false, 1), false);

    let catalog = scenario.workload_schema().build_catalog();
    let mut engine =
        RJoinEngine::new(EngineConfig::default().with_altt(2_000), catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();
    let mut qids = Vec::new();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        qids.push(engine.submit_query(origins[i % origins.len()], q).unwrap());
    }
    engine.run_until_quiescent().unwrap();
    // Split every attribute key of the head relation up front (the preset
    // schema has 3 attributes).
    for attr in ["A0", "A1", "A2"] {
        let key = rjoin_query::IndexKey::attribute("R0", attr);
        engine.split_key(&key, 4).unwrap();
        // Activation purges stale cached RIC estimates for the base key on
        // every node — a pre-split rate must never steer placement away
        // from the freshly split key for the cache-validity horizon.
        let ring = key.hashed().ring();
        for id in engine.node_ids().to_vec() {
            let cached = engine.node_state(id).and_then(|s| s.cached_ric(ring, 0, None));
            assert!(cached.is_none(), "split activation must purge cached RIC for {attr}");
        }
    }
    assert_eq!(engine.split_map().len(), 3);
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        let origin = engine.node_ids()[i % engine.node_ids().len()];
        engine.publish_tuple(origin, t).unwrap();
        engine.run_until_quiescent().unwrap();
    }

    for qid in qids {
        let mut rows = engine.answers().rows_for(qid);
        rows.sort();
        assert_eq!(rows, unsplit[&qid], "forced split must not change {qid}'s answers");
    }
}
