//! Differential tests of the value-partitioned trigger index against the
//! linear bucket walk it replaces: for sliding and tumbling windows, with
//! shared sub-joins, the ALTT, hot-key splitting, hypercube cells and
//! membership churn in the mix, the indexed engine must deliver the same
//! per-query answer rows as the linear engine. Rows are compared **sorted**:
//! the index hands candidates out residual-first and column-by-column, so
//! intra-tick trigger order (and therefore answer order within a tick) may
//! legitimately differ from bucket order; the answer *set* per query may
//! not.
//!
//! The shard counts exercised honor the `RJOIN_SHARDS` environment variable
//! (comma-separated, e.g. `RJOIN_SHARDS=1,4`), which is what the CI
//! shard-count matrix sets; the default covers `1,4`.

use rjoin_core::{EngineConfig, QueryId, RJoinEngine};
use rjoin_query::WindowSpec;
use rjoin_relation::{Tuple, Value};
use rjoin_workload::Scenario;

/// Shard counts to exercise, from `RJOIN_SHARDS` (default `1,4`). A count
/// of 1 runs the single-queue driver, larger counts the sharded runtime.
fn shard_counts() -> Vec<usize> {
    std::env::var("RJOIN_SHARDS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4])
}

fn scenario(window: WindowSpec) -> Scenario {
    Scenario {
        nodes: 24,
        queries: 30,
        tuples: 60,
        joins: 2,
        relations: 6,
        attributes: 4,
        domain: 6,
        window,
        ..Scenario::small_test()
    }
}

fn drain(engine: &mut RJoinEngine, shards: usize) {
    if shards > 1 {
        engine.run_until_quiescent_parallel().unwrap();
    } else {
        engine.run_until_quiescent().unwrap();
    }
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

/// Runs the windowed workload — overlapping queries, two tuple waves with a
/// node joining between them and leaving after them (so re-homed state must
/// stay correctly indexed at its new home too) — with or without the
/// trigger index.
fn run(
    window: WindowSpec,
    base: EngineConfig,
    shards: usize,
    indexed: bool,
) -> (RJoinEngine, Vec<QueryId>) {
    let scenario = scenario(window);
    let queries = scenario.generate_overlapping_queries(5);
    let config = base.with_shards(shards).with_trigger_index(indexed);
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();
    let mut qids = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        qids.push(engine.submit_query(origins[i % origins.len()], q.clone()).unwrap());
    }
    drain(&mut engine, shards);

    let half = Scenario { tuples: scenario.tuples / 2, ..scenario.clone() };
    let second = Scenario { seed: scenario.seed ^ 0x9E37, ..half.clone() };
    let publish = |engine: &mut RJoinEngine, wave: &[Tuple], shards: usize| {
        for (i, t) in wave.iter().enumerate() {
            engine.publish_tuple(origins[i % origins.len()], t.clone()).unwrap();
        }
        drain(engine, shards);
    };
    let wave = half.generate_tuples(engine.now() + 1);
    publish(&mut engine, &wave, shards);
    // Churn at the quiescent points: the joiner steals buckets mid-run
    // (their index entries move with the re-homed state), then leaves
    // again, re-homing everything a second time.
    let joined = engine.join_node("trigger-index-churn").unwrap();
    let wave = second.generate_tuples(engine.now() + 1);
    publish(&mut engine, &wave, shards);
    engine.leave_node(joined).unwrap();
    (engine, qids)
}

/// Asserts the two engines produced the same per-query answer sets and
/// that each took the probing path it claims. Returns the number of rows
/// produced so callers can require a non-vacuous workload.
fn assert_equivalent(
    tag: &str,
    indexed: &RJoinEngine,
    linear: &RJoinEngine,
    qids: &[QueryId],
) -> usize {
    let mut produced = 0usize;
    for qid in qids {
        let indexed_rows = sorted(indexed.answers().rows_for(*qid));
        let linear_rows = sorted(linear.answers().rows_for(*qid));
        assert_eq!(indexed_rows, linear_rows, "{tag}: answers diverge for {qid}");
        produced += indexed_rows.len();
    }

    let on = indexed.probe_counters();
    let off = linear.probe_counters();
    assert!(on.indexed_probes > 0, "{tag}: the indexed engine never probed the index");
    assert_eq!(on.linear_walks, 0, "{tag}: the indexed engine must not walk linearly");
    assert!(off.linear_walks > 0, "{tag}: the linear engine never walked a bucket");
    assert_eq!(off.indexed_probes, 0, "{tag}: the linear engine must not probe the index");
    assert!(
        on.candidates_probed <= on.bucket_len_total,
        "{tag}: the index must never hand out more candidates than a linear walk \
         would have scanned ({} > {})",
        on.candidates_probed,
        on.bucket_len_total,
    );
    produced
}

#[test]
fn indexed_probing_matches_linear_walk_differentially() {
    for shards in shard_counts() {
        for (kind, window) in [
            ("sliding", WindowSpec::sliding_tuples(16)),
            ("tumbling", WindowSpec::tumbling_time(16)),
        ] {
            for (variant, config) in [
                ("shared+altt", EngineConfig::default().with_subjoin_sharing(true).with_altt(64)),
                ("unshared+altt", EngineConfig::default().with_altt(64)),
                ("split+altt", EngineConfig::default().with_altt(32).with_hot_key_splitting(4, 2)),
            ] {
                let tag = format!("shards={shards} window={kind} variant={variant}");
                let (with_index, qids) = run(window, config.clone(), shards, true);
                let (without, linear_qids) = run(window, config.clone(), shards, false);
                assert_eq!(qids, linear_qids, "{tag}: query ids must line up");
                let produced = assert_equivalent(&tag, &with_index, &without, &qids);
                assert!(produced > 0, "{tag}: the workload should produce answers");
            }
        }
    }
}

/// Forced splitting interacting with churn: `split_key` re-homes stored
/// windowed state to the sub-key owners mid-run (the donor's index entries
/// are dropped ring-by-ring, the receivers re-file them under the split
/// sub-keys, which keep the original key text — so pins stay vacuous-aware),
/// a joining node steals some of it again, and the leave re-homes it a
/// third time. No stored query may be orphaned or double-filed along the
/// way: answers must match the linear oracle exactly.
#[test]
fn forced_split_and_churn_keep_the_index_consistent() {
    let window = WindowSpec::sliding_tuples(16);
    let run_split = |indexed: bool| -> (RJoinEngine, Vec<QueryId>) {
        let scenario = scenario(window);
        let config = EngineConfig::default()
            .with_subjoin_sharing(true)
            .with_altt(64)
            .with_trigger_index(indexed);
        let catalog = scenario.workload_schema().build_catalog();
        let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
        let origins: Vec<_> = engine.node_ids().to_vec();
        let mut qids = Vec::new();
        for (i, q) in scenario.generate_overlapping_queries(5).into_iter().enumerate() {
            qids.push(engine.submit_query(origins[i % origins.len()], q).unwrap());
        }
        engine.run_until_quiescent().unwrap();
        let half = Scenario { tuples: scenario.tuples / 2, ..scenario.clone() };
        let second = Scenario { seed: scenario.seed ^ 0x9E37, ..half.clone() };
        let publish = |engine: &mut RJoinEngine, wave: Vec<Tuple>| {
            for (i, t) in wave.into_iter().enumerate() {
                engine.publish_tuple(origins[i % origins.len()], t).unwrap();
            }
            engine.run_until_quiescent().unwrap();
        };
        let wave = half.generate_tuples(engine.now() + 1);
        publish(&mut engine, wave);
        // Split every attribute key of the head relation while its buckets
        // hold live indexed entries, then churn the membership.
        for attr in ["A0", "A1", "A2", "A3"] {
            engine.split_key(&rjoin_query::IndexKey::attribute("R0", attr), 4).unwrap();
        }
        let joined = engine.join_node("trigger-index-split-churn").unwrap();
        let wave = second.generate_tuples(engine.now() + 1);
        publish(&mut engine, wave);
        engine.leave_node(joined).unwrap();
        (engine, qids)
    };

    let (with_index, qids) = run_split(true);
    let (without, linear_qids) = run_split(false);
    assert_eq!(qids, linear_qids);
    let produced = assert_equivalent("split+churn", &with_index, &without, &qids);
    assert!(produced > 0, "the split workload should produce answers");
}

/// Cyclic shapes on the hypercube plan: replicated cell registrations
/// trigger on every relation of the query, so they are filed as residual
/// entries — the index must hand every one of them to every arriving
/// tuple, with churn re-homing cell state mid-stream. Answers must match
/// the linear oracle exactly.
#[test]
fn hypercube_cells_match_linear_walk_under_churn() {
    let scenario = Scenario { nodes: 24, queries: 6, tuples: 48, ..Scenario::cyclic_test() };
    let run_cyclic = |indexed: bool| -> (RJoinEngine, Vec<QueryId>) {
        let config = EngineConfig::default().with_trigger_index(indexed);
        let catalog = scenario.workload_schema().build_catalog();
        let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
        let origins: Vec<_> = engine.node_ids().to_vec();
        let mut qids = Vec::new();
        let mut owners = Vec::new();
        for (i, q) in scenario.generate_queries().into_iter().enumerate() {
            let origin = origins[i % origins.len()];
            owners.push(origin);
            qids.push(engine.submit_query(origin, q).unwrap());
        }
        engine.run_until_quiescent().unwrap();

        let tuples = scenario.generate_tuples(engine.now() + 1);
        let churn_point = tuples.len() / 2;
        for (i, t) in tuples.iter().enumerate() {
            if i == churn_point {
                engine.run_until_quiescent().unwrap();
                engine.join_node("trigger-index-cyclic-churn").unwrap();
            }
            let origin = engine.node_ids()[i % engine.node_ids().len()];
            engine.publish_tuple(origin, t.clone()).unwrap();
        }
        engine.run_until_quiescent().unwrap();
        (engine, qids)
    };

    let (with_index, qids) = run_cyclic(true);
    let (without, linear_qids) = run_cyclic(false);
    assert_eq!(qids, linear_qids);
    assert!(
        with_index.planner_counters().any_hypercube(),
        "the cyclic workload must take the hypercube plan"
    );
    let produced = assert_equivalent("hypercube", &with_index, &without, &qids);
    assert!(produced > 0, "the cyclic workload should produce answers");
    // Hypercube cell registrations trigger on every relation: they must be
    // filed as residual, never under a single discriminating column.
    let counters = with_index.probe_counters();
    assert!(
        counters.residual_probed > 0,
        "hypercube cell entries must be probed from the residual list"
    );
}
