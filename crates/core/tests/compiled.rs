//! Engine-level differential tests of the compiled predicate-program hot
//! loop: for every configuration variant and shard count, the compiled
//! engine must deliver **byte-identical** per-query answers — same rows, in
//! the same delivery order — as the interpreter it replaces, while the
//! compile counters show that each run actually took the path it claims.
//!
//! The shard counts exercised honor the `RJOIN_SHARDS` environment variable
//! (comma-separated, e.g. `RJOIN_SHARDS=1,4`), which is what the CI
//! shard-count matrix sets; the default covers `1,4`.

use rjoin_core::{EngineConfig, QueryId, RJoinEngine};
use rjoin_query::JoinQuery;
use rjoin_relation::Tuple;
use rjoin_workload::Scenario;

/// Shard counts to exercise, from `RJOIN_SHARDS` (default `1,4`). A count
/// of 1 runs the single-queue driver, larger counts the sharded runtime.
fn shard_counts() -> Vec<usize> {
    std::env::var("RJOIN_SHARDS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4])
}

fn workload() -> (Scenario, Vec<JoinQuery>, Vec<Tuple>) {
    let scenario = Scenario {
        nodes: 24,
        queries: 40,
        tuples: 50,
        joins: 2,
        relations: 6,
        attributes: 4,
        domain: 6,
        ..Scenario::small_test()
    };
    // Overlapping queries give the fingerprint cache twins to hit; the
    // constant-heavy generator mix exercises the pre-folded filters.
    let queries = scenario.generate_overlapping_queries(5);
    let tuples = scenario.generate_tuples(2);
    (scenario, queries, tuples)
}

/// The configuration variants the hot loop runs under in the rest of the
/// suite: default placement, value-level rewrites, shared sub-joins, ALTT
/// retention and hot-key splitting.
fn variants() -> Vec<(&'static str, EngineConfig)> {
    vec![
        ("default", EngineConfig::default()),
        ("value_level", EngineConfig::default().with_value_level_only(true)),
        ("shared", EngineConfig::default().with_value_level_only(true).with_subjoin_sharing(true)),
        ("altt", EngineConfig::default().with_altt(200)),
        ("split", EngineConfig::default().with_hot_key_splitting(4, 2)),
    ]
}

fn run(config: EngineConfig, shards: usize, compiled: bool) -> (RJoinEngine, Vec<QueryId>) {
    let (scenario, queries, tuples) = workload();
    let config = config.with_shards(shards).with_compiled_predicates(compiled);
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();
    let mut qids = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        qids.push(engine.submit_query(origins[i % origins.len()], q.clone()).unwrap());
    }
    engine.run_until_quiescent().unwrap();
    for (i, t) in tuples.iter().enumerate() {
        engine.publish_tuple(origins[i % origins.len()], t.clone()).unwrap();
    }
    if shards > 1 {
        engine.run_until_quiescent_parallel().unwrap();
    } else {
        engine.run_until_quiescent().unwrap();
    }
    (engine, qids)
}

/// The acceptance gate of the compile PR: across every configuration
/// variant and shard count, compiled and interpreted runs deliver the same
/// per-query answer logs byte for byte.
#[test]
fn compiled_answers_are_byte_identical_to_the_interpreter() {
    for shards in shard_counts() {
        for (name, config) in variants() {
            let (compiled, qids) = run(config.clone(), shards, true);
            let (interpreted, qids_b) = run(config, shards, false);
            assert_eq!(qids, qids_b);
            assert!(
                !compiled.answers().is_empty(),
                "the {name} workload must deliver answers (shards={shards})"
            );
            for qid in &qids {
                assert_eq!(
                    compiled.answers().rows_for(*qid),
                    interpreted.answers().rows_for(*qid),
                    "compiled and interpreted answers diverge for {qid} \
                     under variant={name} shards={shards}"
                );
            }
        }
    }
}

/// Each run takes the path its configuration claims: compiled runs compile
/// programs and never fall back to the interpreter, interpreted runs never
/// compile. The fingerprint cache must see hits on the overlapping
/// workload, and the per-delivery timer must have accumulated.
#[test]
fn compile_counters_reflect_the_configured_path() {
    for shards in shard_counts() {
        let (compiled, _) = run(EngineConfig::default(), shards, true);
        let c = compiled.compile_counters();
        assert!(c.programs_compiled > 0, "shards={shards}: {c:?}");
        assert!(c.cache_hits > 0, "overlapping twins must hit the cache: {c:?}");
        assert!(c.compiled_rewrites > 0, "shards={shards}: {c:?}");
        assert_eq!(c.interpreted_rewrites, 0, "shards={shards}: {c:?}");
        assert!(c.eval_nanos > 0, "the trigger walks must be timed: {c:?}");
        assert_eq!(compiled.stats().compile, c, "stats snapshot must carry the counters");

        let (interpreted, _) = run(EngineConfig::default(), shards, false);
        let i = interpreted.compile_counters();
        assert_eq!(i.programs_compiled, 0, "shards={shards}: {i:?}");
        assert_eq!(i.compiled_rewrites, 0, "shards={shards}: {i:?}");
        assert!(i.interpreted_rewrites > 0, "shards={shards}: {i:?}");
        assert!(!i.any_compiled(), "shards={shards}: {i:?}");
    }
}
