//! Oracle suite for cyclic query shapes: triangles, 4-cycles and cliques
//! are planned as replicated hypercubes, and their answers must be exactly
//! the centralized windowed oracle's — under every driver the
//! `RJOIN_SHARDS` matrix selects, under graceful churn, and byte-identical
//! across shard counts. The suite also pins the two-plan cost model
//! (acyclic stays on the rewrite pipeline) and the fail-fast
//! `CyclicShape` rejection when the hypercube planner is disabled.

use rjoin_core::{EngineConfig, EngineError, QueryId, RJoinEngine};
use rjoin_query::{parse_query, Conjunct, JoinQuery, QueryError, SelectItem};
use rjoin_relation::{Catalog, Timestamp, Tuple, Value};
use rjoin_workload::Scenario;

/// Shard counts to exercise, from `RJOIN_SHARDS` (default `1,4`), exactly
/// like the sharding suite.
fn shard_counts() -> Vec<usize> {
    std::env::var("RJOIN_SHARDS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4])
}

fn attr_value<'a>(
    catalog: &Catalog,
    relations: &[rjoin_relation::Name],
    combo: &[&'a Tuple],
    relation: &str,
    attribute: &str,
) -> Option<&'a Value> {
    let idx = relations.iter().position(|r| r == relation)?;
    let schema = catalog.schema(relation)?;
    combo[idx].value(schema.index_of(attribute)?)
}

fn satisfies(
    catalog: &Catalog,
    query: &JoinQuery,
    relations: &[rjoin_relation::Name],
    combo: &[&Tuple],
) -> bool {
    query.conjuncts().iter().all(|conjunct| match conjunct {
        Conjunct::JoinEq(a, b) => {
            attr_value(catalog, relations, combo, &a.relation, &a.attribute)
                == attr_value(catalog, relations, combo, &b.relation, &b.attribute)
        }
        Conjunct::ConstEq(a, v) => {
            attr_value(catalog, relations, combo, &a.relation, &a.attribute) == Some(v)
        }
    })
}

fn project(
    catalog: &Catalog,
    query: &JoinQuery,
    relations: &[rjoin_relation::Name],
    combo: &[&Tuple],
) -> Vec<Value> {
    query
        .select()
        .iter()
        .map(|item| match item {
            SelectItem::Const(v) => v.clone(),
            SelectItem::Attr(a) => attr_value(catalog, relations, combo, &a.relation, &a.attribute)
                .cloned()
                .expect("valid queries only reference existing attributes"),
        })
        .collect()
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

/// Brute-force windowed evaluation (Definition 1 + the Section 5 validity
/// test applied to the whole combination) — shape-agnostic, so it covers
/// cyclic `WHERE` clauses that the rewrite pipeline cannot run.
fn windowed_oracle_answers(
    catalog: &Catalog,
    query: &JoinQuery,
    insert_time: Timestamp,
    tuples: &[Tuple],
) -> Vec<Vec<Value>> {
    let window = *query.window();
    let relations = query.relations();
    let per_relation: Vec<Vec<&Tuple>> = relations
        .iter()
        .map(|r| {
            tuples.iter().filter(|t| t.relation() == r && t.pub_time() >= insert_time).collect()
        })
        .collect();
    if per_relation.iter().any(|v| v.is_empty()) {
        return Vec::new();
    }

    let mut results = Vec::new();
    let mut indices = vec![0usize; relations.len()];
    loop {
        let combo: Vec<&Tuple> = indices.iter().zip(&per_relation).map(|(&i, v)| v[i]).collect();
        let earliest = combo.iter().map(|t| t.pub_time()).min().expect("non-empty combo");
        let latest = combo.iter().map(|t| t.pub_time()).max().expect("non-empty combo");
        if window.within(earliest, latest) && satisfies(catalog, query, relations, &combo) {
            results.push(project(catalog, query, relations, &combo));
        }
        let mut pos = 0;
        loop {
            indices[pos] += 1;
            if indices[pos] < per_relation[pos].len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
            if pos == relations.len() {
                return results;
            }
        }
    }
}

/// Per-query sorted answer rows, in query-submission order.
type AnswersByQuery = Vec<(QueryId, Vec<Vec<Value>>)>;

/// Drives a scenario, optionally with graceful churn one third and two
/// thirds into the tuple stream. Returns the engine, the per-query sorted
/// answers in submission order, and the published tuples.
///
/// The stream is published without intermediate drains (churn boundaries
/// excepted — membership changes require a quiescent network): draining
/// after every tuple races the simulation clock arbitrarily far ahead of
/// publication times, which breaks the engine's delivery-slack contract —
/// windowed state would wheel-expire before in-window tuples are even
/// delivered.
fn run(
    scenario: &Scenario,
    config: EngineConfig,
    churn: bool,
) -> (RJoinEngine, AnswersByQuery, Vec<Tuple>) {
    let shards = config.shards;
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();
    let drain = |engine: &mut RJoinEngine| {
        if shards > 1 {
            engine.run_until_quiescent_parallel().unwrap()
        } else {
            engine.run_until_quiescent().unwrap()
        }
    };

    let mut qids = Vec::new();
    let mut owners = Vec::new();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        let origin = origins[i % origins.len()];
        owners.push(origin);
        qids.push(engine.submit_query(origin, q).unwrap());
    }
    drain(&mut engine);

    let tuples = scenario.generate_tuples(engine.now() + 1);
    let churn_points = [tuples.len() / 3, 2 * tuples.len() / 3];
    for (i, t) in tuples.iter().enumerate() {
        if churn && i == churn_points[0] {
            drain(&mut engine);
            engine.join_node("cyclic-churn-join-a").unwrap();
            engine.join_node("cyclic-churn-join-b").unwrap();
        }
        if churn && i == churn_points[1] {
            drain(&mut engine);
            // A query owner must not leave: answers are delivered to it.
            let leaver = engine
                .node_ids()
                .iter()
                .copied()
                .find(|id| !owners.contains(id))
                .expect("the ring keeps non-owner nodes");
            engine.leave_node(leaver).unwrap();
        }
        let origin = engine.node_ids()[i % engine.node_ids().len()];
        engine.publish_tuple(origin, t.clone()).unwrap();
    }
    drain(&mut engine);

    let answers: AnswersByQuery =
        qids.into_iter().map(|qid| (qid, sorted(engine.answers().rows_for(qid)))).collect();
    (engine, answers, tuples)
}

/// Checks one scenario against the oracle under one shard count and returns
/// the answer map (for cross-shard-count identity checks).
fn check_against_oracle(scenario: &Scenario, shards: usize, churn: bool) -> AnswersByQuery {
    let config = EngineConfig::default().with_shards(shards);
    let (engine, answers, tuples) = run(scenario, config, churn);
    let catalog = scenario.workload_schema().build_catalog();
    let queries = scenario.generate_queries();

    assert!(
        engine.planner_counters().any_hypercube(),
        "cyclic workloads must take the hypercube plan (shards={shards})"
    );
    let mut total = 0usize;
    for ((qid, actual), query) in answers.iter().zip(&queries) {
        let expected = sorted(windowed_oracle_answers(&catalog, query, 0, &tuples));
        assert_eq!(
            actual, &expected,
            "cyclic query {qid} diverges from the centralized oracle \
             (shards={shards}, churn={churn}): {query}"
        );
        total += expected.len();
    }
    assert!(total > 0, "the cyclic workload must produce at least one answer");
    answers
}

/// The acceptance triangle, end to end: `R.A = S.A AND S.B = T.B AND
/// T.C = R.C` with hand-placed tuples whose joining combinations are known,
/// answers checked against the oracle under every shard count in the
/// matrix and required to be identical across them.
#[test]
fn explicit_triangle_matches_oracle_and_is_shard_deterministic() {
    let schema = rjoin_workload::WorkloadSchema::new(3, 3, 16);
    let catalog = schema.build_catalog();
    let query = parse_query(
        "SELECT R0.A2, R2.A2 FROM R0, R1, R2 \
         WHERE R0.A0 = R1.A0 AND R1.A1 = R2.A1 AND R2.A2 = R0.A2",
    )
    .unwrap();
    assert_eq!(rjoin_query::classify_shape(&query), rjoin_query::QueryShape::Cyclic);

    let tuple = |rel: &str, vals: [i64; 3], at: Timestamp| {
        Tuple::new(rel, vals.iter().map(|v| Value::from(*v)).collect(), at)
    };
    // Two full triangles (a = 1 and a = 2), one broken one (a = 3: the
    // closing T.C = R.C edge fails), plus noise rows per relation.
    let make_tuples = |base: Timestamp| -> Vec<Tuple> {
        vec![
            tuple("R0", [1, 9, 5], base),
            tuple("R1", [1, 4, 9], base + 1),
            tuple("R2", [9, 4, 5], base + 2),
            tuple("R0", [2, 9, 6], base + 3),
            tuple("R1", [2, 7, 9], base + 4),
            tuple("R2", [8, 7, 6], base + 5),
            tuple("R0", [3, 9, 7], base + 6),
            tuple("R1", [3, 5, 9], base + 7),
            tuple("R2", [8, 5, 12], base + 8),
            tuple("R0", [14, 9, 5], base + 9),
            tuple("R1", [15, 4, 9], base + 10),
            tuple("R2", [9, 15, 5], base + 11),
        ]
    };

    let mut per_shards: Vec<Vec<Vec<Value>>> = Vec::new();
    for shards in [1usize, 2, 4] {
        let config = EngineConfig::default().with_shards(shards);
        let mut engine = RJoinEngine::new(config, catalog.clone(), 24);
        let origin = engine.node_ids()[0];
        let drain = |engine: &mut RJoinEngine| {
            if shards > 1 {
                engine.run_until_quiescent_parallel().unwrap()
            } else {
                engine.run_until_quiescent().unwrap()
            }
        };
        let qid = engine.submit_query(origin, query.clone()).unwrap();
        drain(&mut engine);
        let tuples = make_tuples(engine.now() + 1);
        for (i, t) in tuples.iter().enumerate() {
            let origin = engine.node_ids()[i % engine.node_ids().len()];
            engine.publish_tuple(origin, t.clone()).unwrap();
        }
        drain(&mut engine);

        let expected = sorted(windowed_oracle_answers(&catalog, &query, 0, &tuples));
        assert_eq!(expected.len(), 2, "the hand-placed workload forms exactly two triangles");
        let actual = sorted(engine.answers().rows_for(qid));
        assert_eq!(actual, expected, "triangle answers diverge from the oracle at {shards} shards");

        let planner = engine.planner_counters();
        assert_eq!(planner.hypercube_plans, 1);
        assert_eq!(planner.pipeline_plans, 0);
        assert!(planner.cells_allocated > 0 && planner.replicated_evals > 0);
        assert!(planner.tuple_copies >= planner.tuples_routed);
        per_shards.push(actual);
    }
    assert!(
        per_shards.windows(2).all(|w| w[0] == w[1]),
        "triangle answers must be identical across shard counts 1, 2, 4"
    );
}

/// The cyclic preset (random triangles) against the oracle, per shard-count
/// matrix leg, with the answer maps identical across legs.
#[test]
fn cyclic_preset_matches_oracle_across_shard_counts() {
    let scenario = Scenario::cyclic_test();
    let runs: Vec<_> =
        shard_counts().into_iter().map(|s| check_against_oracle(&scenario, s, false)).collect();
    assert!(
        runs.windows(2).all(|w| w[0] == w[1]),
        "cyclic answers must be identical across the shard-count matrix"
    );
}

/// Random 4-cycles against the oracle.
#[test]
fn four_cycles_match_oracle() {
    let scenario = Scenario {
        cycle: 4,
        queries: 8,
        tuples: 56,
        domain: 4,
        relations: 4,
        attributes: 3,
        ..Scenario::cyclic_test()
    };
    for shards in shard_counts() {
        check_against_oracle(&scenario, shards, false);
    }
}

/// A windowed triangle workload: the hypercube's cell-local partials must
/// respect sliding-window validity exactly like the pipeline does.
#[test]
fn windowed_triangles_match_windowed_oracle() {
    let scenario = Scenario {
        window: rjoin_query::WindowSpec::sliding_tuples(12),
        tuples: 72,
        ..Scenario::cyclic_test()
    };
    // Sanity: the window must actually exclude some combination, so compare
    // windowed vs unwindowed oracle totals on the first query.
    let catalog = scenario.workload_schema().build_catalog();
    let queries = scenario.generate_queries();
    let (_, answers, tuples) = run(&scenario, EngineConfig::default(), false);
    let mut windowed_total = 0usize;
    let mut unwindowed_total = 0usize;
    for ((qid, actual), query) in answers.iter().zip(&queries) {
        let expected = sorted(windowed_oracle_answers(&catalog, query, 0, &tuples));
        assert_eq!(actual, &expected, "windowed cyclic query {qid} diverges from the oracle");
        windowed_total += expected.len();
        let unwindowed = query.clone().with_window(rjoin_query::WindowSpec::None);
        unwindowed_total += windowed_oracle_answers(&catalog, &unwindowed, 0, &tuples).len();
    }
    assert!(windowed_total > 0, "the windowed cyclic workload must produce answers");
    assert!(
        unwindowed_total > windowed_total,
        "the window must exclude at least one cyclic combination"
    );
}

/// Graceful churn mid-stream: hypercube cell state (replicated query
/// copies, routed tuple copies, cell-local partials) re-homes with ring
/// membership, and the answers still match the oracle exactly.
#[test]
fn cyclic_answers_survive_churn() {
    let scenario = Scenario { tuples: 45, ..Scenario::cyclic_test() };
    for shards in shard_counts() {
        check_against_oracle(&scenario, shards, true);
    }
}

/// Satellite regression: with the hypercube planner disabled, submitting a
/// cyclic query fails fast with `QueryError::CyclicShape` instead of
/// entering a rewrite pipeline that cannot finish; acyclic queries are
/// unaffected.
#[test]
fn cyclic_shape_is_rejected_when_planner_disabled() {
    let scenario = Scenario::cyclic_test();
    let catalog = scenario.workload_schema().build_catalog();
    let config = EngineConfig::default().with_hypercube_planner(false);
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origin = engine.node_ids()[0];

    let triangle = scenario.generate_queries().remove(0);
    let err = engine.submit_query(origin, triangle).unwrap_err();
    assert!(
        matches!(err, EngineError::Query(QueryError::CyclicShape)),
        "expected CyclicShape, got {err:?}"
    );
    assert_eq!(engine.planner_counters().hypercube_plans, 0);

    // Acyclic submissions still go through on the pipeline.
    let chain = parse_query("SELECT R0.A1, R1.A1 FROM R0, R1 WHERE R0.A0 = R1.A0").unwrap();
    engine.submit_query(origin, chain).unwrap();
    assert_eq!(engine.planner_counters().pipeline_plans, 1);
}

/// The cost model's two legs, observable through the planner counters: an
/// acyclic chain stays on the pipeline (one hop per join beats a cell
/// budget's worth of replicas), a cyclic triangle must take the hypercube.
#[test]
fn cost_model_picks_pipeline_for_acyclic_and_hypercube_for_cyclic() {
    let scenario = Scenario::cyclic_test();
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(EngineConfig::default(), catalog, scenario.nodes);
    let origin = engine.node_ids()[0];

    let chain =
        parse_query("SELECT R0.A1, R2.A1 FROM R0, R1, R2 WHERE R0.A0 = R1.A0 AND R1.A1 = R2.A1")
            .unwrap();
    engine.submit_query(origin, chain).unwrap();
    let after_chain = *engine.planner_counters();
    assert_eq!(after_chain.pipeline_plans, 1);
    assert_eq!(after_chain.hypercube_plans, 0);

    let triangle = scenario.generate_queries().remove(0);
    engine.submit_query(origin, triangle).unwrap();
    let after_triangle = *engine.planner_counters();
    assert_eq!(after_triangle.pipeline_plans, 1);
    assert_eq!(after_triangle.hypercube_plans, 1);
    assert!(after_triangle.cells_allocated >= 2, "the default budget allocates multiple cells");
    // The planner's decisions surface through the stats snapshot too.
    engine.run_until_quiescent().unwrap();
    assert_eq!(engine.stats().planner, after_triangle);
}
