//! Engine-level tests of the sharded event-queue runtime: mid-flight
//! membership churn checked against a brute-force oracle under both the
//! sequential and the sharded drivers, plus observability of the
//! shard-aware accounting.
//!
//! The shard counts exercised honor the `RJOIN_SHARDS` environment
//! variable (comma-separated, e.g. `RJOIN_SHARDS=1,4`), which is what the
//! CI shard-count matrix sets; the default covers `1,4`.

use rjoin_core::{EngineConfig, PlacementStrategy, QueryId, RJoinEngine};
use rjoin_query::{Conjunct, JoinQuery, SelectItem};
use rjoin_relation::{Catalog, Timestamp, Tuple, Value};
use rjoin_workload::Scenario;

/// Shard counts to exercise, from `RJOIN_SHARDS` (default `1,4`). A count
/// of 1 runs the single-queue driver, larger counts the sharded runtime.
fn shard_counts() -> Vec<usize> {
    std::env::var("RJOIN_SHARDS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4])
}

fn attr_value<'a>(
    catalog: &Catalog,
    relations: &[rjoin_relation::Name],
    combo: &[&'a Tuple],
    relation: &str,
    attribute: &str,
) -> Option<&'a Value> {
    let idx = relations.iter().position(|r| r == relation)?;
    let schema = catalog.schema(relation)?;
    combo[idx].value(schema.index_of(attribute)?)
}

/// Brute-force evaluation of one query over the published tuples
/// (Definition 1: one answer per combination of tuples published at or
/// after the query's submission that satisfies every conjunct).
fn oracle_answers(
    catalog: &Catalog,
    query: &JoinQuery,
    insert_time: Timestamp,
    tuples: &[Tuple],
) -> Vec<Vec<Value>> {
    let relations = query.relations().to_vec();
    let pools: Vec<Vec<&Tuple>> = relations
        .iter()
        .map(|rel| {
            tuples.iter().filter(|t| t.relation() == rel && t.pub_time() >= insert_time).collect()
        })
        .collect();
    let mut combos: Vec<Vec<&Tuple>> = vec![Vec::new()];
    for pool in &pools {
        let mut next = Vec::new();
        for combo in &combos {
            for tuple in pool {
                let mut extended = combo.clone();
                extended.push(*tuple);
                next.push(extended);
            }
        }
        combos = next;
    }
    combos
        .into_iter()
        .filter(|combo| {
            query.conjuncts().iter().all(|conjunct| match conjunct {
                Conjunct::JoinEq(a, b) => {
                    attr_value(catalog, &relations, combo, &a.relation, &a.attribute)
                        == attr_value(catalog, &relations, combo, &b.relation, &b.attribute)
                }
                Conjunct::ConstEq(a, v) => {
                    attr_value(catalog, &relations, combo, &a.relation, &a.attribute) == Some(v)
                }
            })
        })
        .map(|combo| {
            query
                .select()
                .iter()
                .map(|item| match item {
                    SelectItem::Const(v) => v.clone(),
                    SelectItem::Attr(a) => {
                        attr_value(catalog, &relations, &combo, &a.relation, &a.attribute)
                            .cloned()
                            .expect("valid queries only reference existing attributes")
                    }
                })
                .collect()
        })
        .collect()
}

fn churn_scenario() -> Scenario {
    Scenario {
        nodes: 24,
        queries: 60,
        tuples: 50,
        joins: 2,
        relations: 5,
        attributes: 3,
        domain: 8,
        seed: 0xC4E5_0001,
        ..Scenario::small_test()
    }
}

/// Drives the churn workload: queries indexed, tuples published, then —
/// **while the tuple/Eval cascade is still in flight** — the sequential
/// driver single-steps partway into the cascade, two nodes join and one
/// leaves, and the remaining drain runs under the requested driver.
/// Returns the engine plus everything the oracle needs.
type ChurnRun = (RJoinEngine, Vec<(QueryId, JoinQuery, Timestamp)>, Vec<Tuple>, Catalog);

fn run_churn(shards: usize) -> ChurnRun {
    let scenario = churn_scenario();
    let catalog = scenario.workload_schema().build_catalog();
    let config = EngineConfig::with_placement(PlacementStrategy::FirstInClause)
        .with_altt(200)
        .with_shards(shards);
    let mut engine = RJoinEngine::new(config, catalog.clone(), scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();

    let mut submitted = Vec::new();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        let insert_time = engine.now();
        let qid = engine.submit_query(origins[i % origins.len()], q.clone()).unwrap();
        submitted.push((qid, q, insert_time));
    }
    engine.run_until_quiescent().unwrap();

    let tuples = scenario.generate_tuples(engine.now() + 1);
    for (i, t) in tuples.iter().enumerate() {
        engine.publish_tuple(origins[i % origins.len()], t.clone()).unwrap();
    }

    // Step into the middle of the cascade: Eval/Index/NewTuple messages are
    // in flight when the membership changes below happen.
    for _ in 0..40 {
        if !engine.step().unwrap() {
            break;
        }
    }
    assert!(engine.in_flight() > 0, "churn must happen while messages are in flight");
    engine.join_node("churn-join-a").unwrap();
    engine.join_node("churn-join-b").unwrap();
    let leaver = engine.node_ids()[3];
    engine.leave_node(leaver).unwrap();
    assert!(engine.in_flight() > 0, "messages must still be in flight after churn");

    if shards > 1 {
        engine.run_until_quiescent_parallel().unwrap();
    } else {
        engine.run_until_quiescent().unwrap();
    }
    (engine, submitted, tuples, catalog)
}

/// Mid-tick churn soundness oracle: with join/leave happening while
/// Eval/Index messages are in flight, every delivered answer must still be
/// an answer of the centralized oracle — under the sequential *and* the
/// sharded drivers. (Completeness may legitimately degrade: messages in
/// flight to a departed node are lost, exactly as in a real deployment.)
#[test]
fn mid_flight_churn_answers_stay_sound_under_all_drivers() {
    for shards in shard_counts() {
        let (engine, submitted, tuples, catalog) = run_churn(shards);
        assert!(
            !engine.answers().is_empty(),
            "churn scenario must deliver answers (shards={shards})"
        );
        for (qid, query, insert_time) in &submitted {
            // Bag inclusion: every delivered row must appear in the oracle's
            // bag at most as often as the oracle derives it (bag semantics —
            // distinct tuple combinations may project to equal rows).
            let mut allowed = oracle_answers(&catalog, query, *insert_time, &tuples);
            allowed.sort();
            let mut delivered = engine.answers().rows_for(*qid);
            delivered.sort();
            let mut cursor = 0usize;
            for row in &delivered {
                while cursor < allowed.len() && allowed[cursor] < *row {
                    cursor += 1;
                }
                assert!(
                    cursor < allowed.len() && allowed[cursor] == *row,
                    "unsound or over-delivered answer {row:?} for {qid} under shards={shards}"
                );
                cursor += 1;
            }
        }
    }
}

/// The mid-flight churn run is deterministic under the sharded driver:
/// repeating it yields the identical answer log.
#[test]
fn mid_flight_churn_is_deterministic() {
    for shards in shard_counts() {
        let (engine_a, submitted, _, _) = run_churn(shards);
        let (engine_b, _, _, _) = run_churn(shards);
        assert_eq!(engine_a.answers().len(), engine_b.answers().len());
        for (qid, _, _) in &submitted {
            assert_eq!(
                engine_a.answers().rows_for(*qid),
                engine_b.answers().rows_for(*qid),
                "churn run must be deterministic (shards={shards})"
            );
        }
    }
}

/// A zero-delay configuration (legal for the single queue) cannot run the
/// watermark protocol (lookahead = δ): the parallel driver must fall back
/// to the tick-batched path and stay byte-identical to sequential.
#[test]
fn zero_delay_falls_back_to_the_single_queue_driver() {
    let scenario = churn_scenario();
    let run = |parallel: bool| {
        let catalog = scenario.workload_schema().build_catalog();
        let mut config = EngineConfig::default().with_shards(4);
        config.network_delay = 0;
        let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
        let origins: Vec<_> = engine.node_ids().to_vec();
        for (i, q) in scenario.generate_queries().into_iter().enumerate() {
            engine.submit_query(origins[i % origins.len()], q).unwrap();
        }
        if parallel {
            engine.run_until_quiescent_parallel().unwrap();
        } else {
            engine.run_until_quiescent().unwrap();
        }
        for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
            engine.publish_tuple(origins[i % origins.len()], t).unwrap();
        }
        if parallel {
            engine.run_until_quiescent_parallel().unwrap();
        } else {
            engine.run_until_quiescent().unwrap();
        }
        let stats = engine.stats();
        (stats.answers, stats.qpl_total, stats.traffic_total, stats.shard_runtime.drains)
    };
    let sequential = run(false);
    let parallel = run(true);
    assert_eq!(sequential.0, parallel.0, "answers must match under the fallback");
    assert_eq!(sequential.1, parallel.1, "QPL must match under the fallback");
    assert_eq!(sequential.2, parallel.2, "traffic must match under the fallback");
    assert_eq!(parallel.3, 0, "no sharded drain may run at zero delay");
}

/// The shard-aware accounting is observable: a sharded drain reports its
/// shard count, tick activations and intra/cross-shard delivery split, and
/// the split covers exactly the messages scheduled during sharded drains.
#[test]
fn sharded_runtime_counters_are_observable() {
    let scenario = churn_scenario();
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine =
        RJoinEngine::new(EngineConfig::default().with_shards(4), catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        engine.submit_query(origins[i % origins.len()], q).unwrap();
    }
    engine.run_until_quiescent_parallel().unwrap();
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(origins[i % origins.len()], t).unwrap();
    }
    engine.run_until_quiescent_parallel().unwrap();

    let stats = engine.stats();
    let runtime = &stats.shard_runtime;
    assert_eq!(runtime.shards, 4);
    assert_eq!(runtime.drains, 2);
    assert!(runtime.ticks > 0, "tick activations must be counted");
    assert!(runtime.deliveries > 0, "deliveries must be counted");
    assert!(runtime.deliveries_per_tick() >= 1.0);
    let scheduled = stats.intra_shard_messages + stats.cross_shard_messages;
    assert!(scheduled > 0, "shard-locality split must be populated");
    assert!(
        stats.cross_shard_messages > 0,
        "a 24-node ring at 4 shards must exchange cross-shard messages"
    );
    assert!(
        scheduled <= runtime.deliveries,
        "every scheduled message is eventually delivered or counted as seeded"
    );

    // The sequential driver leaves all sharded counters untouched.
    let catalog = scenario.workload_schema().build_catalog();
    let mut sequential = RJoinEngine::new(EngineConfig::default(), catalog, scenario.nodes);
    let origins: Vec<_> = sequential.node_ids().to_vec();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        sequential.submit_query(origins[i % origins.len()], q).unwrap();
    }
    sequential.run_until_quiescent().unwrap();
    let stats = sequential.stats();
    assert_eq!(stats.shard_runtime.drains, 0);
    assert_eq!(stats.intra_shard_messages + stats.cross_shard_messages, 0);
}
