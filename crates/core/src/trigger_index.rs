//! Value-partitioned trigger index: probe O(matching) stored queries per
//! tuple instead of walking the whole bucket.
//!
//! Every stored query whose compiled rewrite pins a **tuple-resolvable
//! equality** — a `ConstEq` over the relation of its index key, i.e. a
//! constant predicate of the original query or a join value already bound
//! by an earlier rewrite — is filed under `(ring, column, value)`; queries
//! with no such pin (no constants over the key relation, `DISTINCT`
//! entries whose dedup filter mutates on contact, hypercube cell replicas
//! that trigger on several relations) go to a per-ring **residual** list
//! that is always walked. A tuple arrival then probes
//! `residual ∪ index[(ring, column, tuple[column])]`: entries pinned to a
//! different value of a column the tuple resolves would have rewritten to
//! `Mismatch` anyway, so skipping them cannot change any answer.
//!
//! # Maintenance contract
//!
//! The index shadows `NodeState::stored_queries` exactly: **every** site
//! that inserts a stored-query handle into a bucket must `insert` it here,
//! and every site that unlinks one (contact expiry in the trigger walk,
//! timer-wheel pops, the sweep-mode collector, churn drains) must `remove`
//! it with the same entry — the pin is a pure function of the entry's
//! query, key text, dedup and hypercube state, none of which mutate while
//! it is stored, so removal recomputes the pin and finds the one vector
//! the insertion filed the handle under. Whole-ring teardown
//! (`drain_misplaced`) uses `remove_ring`.
//!
//! Range and θ-predicates have no equality pin and would stay residual;
//! the query model is pure equi-join today, so the residual list only
//! holds the unpinned cases listed above.
//!
//! # Why skipping is sound
//!
//! The linear walk (kept as a differential oracle behind
//! [`crate::EngineConfig::with_trigger_index`]`(false)`) contacts every
//! entry of the bucket. A skipped entry differs from a contacted one in
//! two ways only:
//!
//! * **No `Mismatch` rewrite** — by construction the skipped entry's
//!   pinned constant filter rejects the tuple, so the contact would have
//!   produced no action and mutated nothing (entries whose contact *can*
//!   mutate state — `DISTINCT` dedup admission — are residual).
//! * **No contact expiry** — the network's constant delay δ makes per-ring
//!   tuple publication times monotone in delivery order, so an entry whose
//!   window already expired against a skipped tuple can never trigger on
//!   any later tuple either; its removal shifts to its wheel deadline (or
//!   a later contact) without affecting any answer.
//!
//! Ring identifiers are 64-bit digests of the key text, so two key texts
//! may collide onto one ring and a bucket may mix entries of several keys.
//! Collisions stay sound: a probing tuple only skips columns of **its own
//! relation** that it resolves to a different value — foreign-relation
//! columns and columns its schema cannot resolve are walked in full,
//! exactly like the residual list.

use crate::node_state::StoredQuery;
use crate::slab::Handle;
use rjoin_dht::{RingHasher, RingMap};
use rjoin_metrics::ProbeCounters;
use rjoin_query::probe_pins;
use rjoin_relation::{Name, Schema, Tuple, Value};
use std::hash::{Hash, Hasher};

/// 64-bit digest a value is filed under. Within-column digest collisions
/// are harmless: a colliding candidate's constant filter rejects the tuple
/// during the trigger, exactly as the linear walk would have.
fn value_digest(value: &Value) -> u64 {
    let mut hasher = RingHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

/// The discriminating pin of a stored entry: the first tuple-resolvable
/// constant equality over the key's relation, as
/// `(relation, attribute, value)`. `None` sends the entry to the residual
/// list.
///
/// At a value-level key the pin equal to the key's own `(attribute,
/// value)` pair is **vacuous** — every tuple routed to the key satisfies
/// it already — so a later constant is preferred and the vacuous pin is
/// only the fallback (it still separates colliding key texts).
fn entry_pin(stored: &StoredQuery) -> Option<(&Name, &Name, &Value)> {
    if stored.pending.hypercube.is_some() || stored.dedup.is_some() {
        return None;
    }
    let mut parts = stored.key.as_str().splitn(3, '+');
    let key_rel = parts.next()?;
    let key_attr = parts.next();
    let key_frag = parts.next();
    let mut vacuous = None;
    for (attr, value) in probe_pins(&stored.pending.query, key_rel) {
        let is_vacuous = key_frag.is_some_and(|frag| {
            key_attr.is_some_and(|ka| attr.attribute == ka) && value.key_fragment() == frag
        });
        if is_vacuous {
            if vacuous.is_none() {
                vacuous = Some((attr, value));
            }
        } else {
            return Some((&attr.relation, &attr.attribute, value));
        }
    }
    vacuous.map(|(attr, value)| (&attr.relation, &attr.attribute, value))
}

/// One pinned column of a ring: the handles of every entry pinned on
/// `relation.attribute`, partitioned by pinned-value digest.
#[derive(Debug, Clone)]
struct ColumnIndex {
    relation: Name,
    attribute: Name,
    by_value: RingMap<Vec<Handle>>,
}

/// The partition of one ring's bucket.
#[derive(Debug, Clone, Default)]
struct RingIndex {
    /// Pinned entries, grouped by pin column (a handful per ring: queries
    /// stored under one key pin constants over the same few attributes).
    columns: Vec<ColumnIndex>,
    /// Entries with no tuple-resolvable pin; walked on every arrival.
    residual: Vec<Handle>,
    /// Handles currently filed in this ring (columns + residual).
    live: usize,
}

/// Per-node trigger index over the stored-query buckets. See the module
/// docs for the maintenance contract and the soundness argument.
#[derive(Debug, Clone)]
pub(crate) struct TriggerIndex {
    /// Disabled instances no-op on every call (the linear-walk oracle
    /// mode). Selected once at node creation, before anything is stored.
    enabled: bool,
    rings: RingMap<RingIndex>,
    /// Handles currently filed across all rings.
    live: usize,
    counters: ProbeCounters,
    /// Candidate buffer reused across tuple arrivals.
    scratch: Vec<Handle>,
}

impl TriggerIndex {
    pub(crate) fn new() -> Self {
        TriggerIndex {
            enabled: true,
            rings: RingMap::default(),
            live: 0,
            counters: ProbeCounters::new(),
            scratch: Vec::new(),
        }
    }

    /// Selects indexed probing or the linear-walk oracle. Must be called
    /// before any query is stored (the engine configures nodes at
    /// creation): enabling an index that missed earlier insertions would
    /// skip live entries.
    pub(crate) fn configure(&mut self, enabled: bool) {
        debug_assert!(self.live == 0, "trigger index reconfigured with entries filed");
        self.enabled = enabled;
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Snapshot of the probe counters.
    pub(crate) fn counters(&self) -> ProbeCounters {
        self.counters
    }

    /// Takes the reusable candidate buffer (cleared).
    pub(crate) fn take_scratch(&mut self) -> Vec<Handle> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch
    }

    /// Returns the candidate buffer for reuse.
    pub(crate) fn put_scratch(&mut self, scratch: Vec<Handle>) {
        self.scratch = scratch;
    }

    /// Files a stored entry's handle under its pin (or the residual list).
    pub(crate) fn insert(&mut self, ring: u64, handle: Handle, stored: &StoredQuery) {
        if !self.enabled {
            return;
        }
        let ring_index = self.rings.entry(ring).or_default();
        match entry_pin(stored) {
            None => ring_index.residual.push(handle),
            Some((relation, attribute, value)) => {
                let digest = value_digest(value);
                let pos = ring_index
                    .columns
                    .iter()
                    .position(|c| c.relation == *relation && c.attribute == *attribute);
                let column = match pos {
                    Some(pos) => &mut ring_index.columns[pos],
                    None => {
                        ring_index.columns.push(ColumnIndex {
                            relation: relation.clone(),
                            attribute: attribute.clone(),
                            by_value: RingMap::default(),
                        });
                        ring_index.columns.last_mut().expect("pushed above")
                    }
                };
                column.by_value.entry(digest).or_default().push(handle);
            }
        }
        ring_index.live += 1;
        self.live += 1;
        self.counters.index_entries_high_water =
            self.counters.index_entries_high_water.max(self.live as u64);
    }

    /// Unfiles a removed entry's handle. `stored` must be the entry the
    /// handle was inserted with (the pin is recomputed from it).
    pub(crate) fn remove(&mut self, ring: u64, handle: Handle, stored: &StoredQuery) {
        if !self.enabled {
            return;
        }
        let Some(ring_index) = self.rings.get_mut(&ring) else {
            debug_assert!(false, "trigger-index removal from an unindexed ring");
            return;
        };
        let found = match entry_pin(stored) {
            None => remove_handle(&mut ring_index.residual, handle),
            Some((relation, attribute, value)) => {
                let digest = value_digest(value);
                ring_index
                    .columns
                    .iter_mut()
                    .find(|c| c.relation == *relation && c.attribute == *attribute)
                    .is_some_and(|column| match column.by_value.get_mut(&digest) {
                        Some(bucket) => {
                            let found = remove_handle(bucket, handle);
                            if bucket.is_empty() {
                                column.by_value.remove(&digest);
                            }
                            found
                        }
                        None => false,
                    })
            }
        };
        debug_assert!(found, "trigger-index maintenance contract violated: handle not filed");
        if found {
            ring_index.live -= 1;
            self.live -= 1;
            if ring_index.live == 0 {
                self.rings.remove(&ring);
            }
        }
    }

    /// Tears down a whole ring's partition (churn drained the bucket).
    pub(crate) fn remove_ring(&mut self, ring: u64) {
        if !self.enabled {
            return;
        }
        if let Some(ring_index) = self.rings.remove(&ring) {
            self.live -= ring_index.live;
        }
    }

    /// Collects the handles a tuple arrival must contact: the residual
    /// list, the tuple's own slice of every column it resolves, and every
    /// column it cannot resolve (foreign relation, unknown attribute,
    /// arity-short tuple) in full. `schema` is the schema of `tuple`'s
    /// relation; `bucket_len` is the length of the full bucket, recorded
    /// for the probe counters.
    pub(crate) fn collect_candidates(
        &mut self,
        ring: u64,
        tuple: &Tuple,
        schema: &Schema,
        bucket_len: usize,
        out: &mut Vec<Handle>,
    ) {
        self.counters.indexed_probes += 1;
        self.counters.bucket_len_total += bucket_len as u64;
        let Some(ring_index) = self.rings.get(&ring) else { return };
        out.extend_from_slice(&ring_index.residual);
        self.counters.residual_probed += ring_index.residual.len() as u64;
        for column in &ring_index.columns {
            let resolved = if column.relation == tuple.relation() {
                schema.index_of(&column.attribute).and_then(|offset| tuple.value(offset))
            } else {
                None
            };
            match resolved {
                Some(value) => {
                    if let Some(bucket) = column.by_value.get(&value_digest(value)) {
                        out.extend_from_slice(bucket);
                    }
                }
                None => {
                    for bucket in column.by_value.values() {
                        out.extend_from_slice(bucket);
                    }
                }
            }
        }
        self.counters.candidates_probed += out.len() as u64;
    }

    /// Books one linear bucket walk (oracle mode).
    pub(crate) fn note_linear_walk(&mut self) {
        self.counters.linear_walks += 1;
    }

    /// Books one span-bounded eval walk: an arriving query probed `probed`
    /// of the `bucket_len` tuples stored under its key (the eval-side twin
    /// of [`collect_candidates`](Self::collect_candidates) — see the module
    /// docs).
    pub(crate) fn note_span_probe(&mut self, bucket_len: usize, probed: usize) {
        self.counters.indexed_probes += 1;
        self.counters.bucket_len_total += bucket_len as u64;
        self.counters.candidates_probed += probed as u64;
    }

    /// Handles currently filed (test support).
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.live
    }
}

fn remove_handle(bucket: &mut Vec<Handle>, handle: Handle) -> bool {
    match bucket.iter().position(|h| *h == handle) {
        Some(pos) => {
            bucket.swap_remove(pos);
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{PendingQuery, QueryId};
    use rjoin_dht::{HashedKey, Id};
    use rjoin_query::{parse_query, IndexLevel};
    use rjoin_relation::Timestamp;

    fn stored(sql: &str, key_text: &str, level: IndexLevel) -> StoredQuery {
        let pending = PendingQuery::input(
            QueryId { owner: Id(1), seq: 0 },
            Id(1),
            0,
            parse_query(sql).unwrap(),
        );
        StoredQuery::new(pending, HashedKey::new(key_text), level)
    }

    fn tuple(relation: &str, values: Vec<Value>, pub_time: Timestamp) -> Tuple {
        Tuple::new(relation, values, pub_time)
    }

    /// Mints `n` distinct live handles (the index only compares them).
    fn handles(n: usize) -> Vec<Handle> {
        let mut slab = crate::slab::Slab::new();
        (0..n).map(|i| slab.insert(i)).collect()
    }

    #[test]
    fn pin_prefers_first_constant_at_attribute_level() {
        let s = stored(
            "SELECT S.B FROM R, S WHERE R.A = 2 AND R.B = 7 AND R.C = S.C",
            "R+C",
            IndexLevel::Attribute,
        );
        let (rel, attr, value) = entry_pin(&s).unwrap();
        assert_eq!(rel, "R");
        assert_eq!(attr, "A");
        assert_eq!(*value, Value::from(2));
    }

    #[test]
    fn pin_skips_the_vacuous_key_equality_at_value_level() {
        let s = stored(
            "SELECT S.B FROM R, S WHERE R.A = 2 AND R.B = 7 AND R.C = S.C",
            "R+A+i:2",
            IndexLevel::Value,
        );
        let (_, attr, value) = entry_pin(&s).unwrap();
        assert_eq!(attr, "B");
        assert_eq!(*value, Value::from(7));
        // With the key equality as the only constant, the vacuous pin is
        // still used (it separates colliding key texts).
        let sole = stored(
            "SELECT S.B FROM R, S WHERE R.A = 2 AND R.C = S.C",
            "R+A+i:2",
            IndexLevel::Value,
        );
        let (_, attr, value) = entry_pin(&sole).unwrap();
        assert_eq!(attr, "A");
        assert_eq!(*value, Value::from(2));
    }

    #[test]
    fn distinct_and_unpinned_queries_are_residual() {
        let distinct = stored(
            "SELECT DISTINCT S.B FROM R, S WHERE R.A = 2 AND R.C = S.C",
            "R+C",
            IndexLevel::Attribute,
        );
        assert!(entry_pin(&distinct).is_none(), "dedup admission mutates on contact");
        let unpinned = stored("SELECT S.B FROM R, S WHERE R.C = S.C", "R+C", IndexLevel::Attribute);
        assert!(entry_pin(&unpinned).is_none(), "no constant over the key relation");
        let foreign = stored(
            "SELECT S.B FROM R, S WHERE S.B = 3 AND R.C = S.C",
            "R+C",
            IndexLevel::Attribute,
        );
        assert!(entry_pin(&foreign).is_none(), "constants over other relations do not resolve");
    }

    #[test]
    fn probes_return_residual_and_matching_slice_only() {
        let mut index = TriggerIndex::new();
        let schema = Schema::new("R", ["A", "B", "C"]).unwrap();
        let ring = 42;
        let pinned_2 = stored(
            "SELECT S.B FROM R, S WHERE R.A = 2 AND R.C = S.C",
            "R+C",
            IndexLevel::Attribute,
        );
        let pinned_9 = stored(
            "SELECT S.B FROM R, S WHERE R.A = 9 AND R.C = S.C",
            "R+C",
            IndexLevel::Attribute,
        );
        let residual = stored("SELECT S.B FROM R, S WHERE R.C = S.C", "R+C", IndexLevel::Attribute);
        let minted = handles(3);
        let (h2, h9, hr) = (minted[0], minted[1], minted[2]);
        index.insert(ring, h2, &pinned_2);
        index.insert(ring, h9, &pinned_9);
        index.insert(ring, hr, &residual);
        assert_eq!(index.live(), 3);

        // An R tuple with A = 2 probes the residual plus the A = 2 slice.
        let mut out = Vec::new();
        let t = tuple("R", vec![Value::from(2), Value::from(0), Value::from(0)], 0);
        index.collect_candidates(ring, &t, &schema, 3, &mut out);
        out.sort();
        let mut expected = vec![hr, h2];
        expected.sort();
        assert_eq!(out, expected);

        // A foreign-relation tuple cannot resolve the column: full walk.
        let mut out = Vec::new();
        let s_schema = Schema::new("S", ["B", "C"]).unwrap();
        let t = tuple("S", vec![Value::from(2), Value::from(0)], 0);
        index.collect_candidates(ring, &t, &s_schema, 3, &mut out);
        assert_eq!(out.len(), 3, "collision safety: foreign columns are walked in full");

        let counters = index.counters();
        assert_eq!(counters.indexed_probes, 2);
        assert_eq!(counters.bucket_len_total, 6);
        assert_eq!(counters.residual_probed, 2);
        assert_eq!(counters.candidates_probed, 5);
        assert_eq!(counters.index_entries_high_water, 3);

        // Removal unfiles exactly the handle's slice and empties the ring.
        index.remove(ring, h2, &pinned_2);
        index.remove(ring, h9, &pinned_9);
        index.remove(ring, hr, &residual);
        assert_eq!(index.live(), 0);
        let mut out = Vec::new();
        let t = tuple("R", vec![Value::from(2), Value::from(0), Value::from(0)], 0);
        index.collect_candidates(ring, &t, &schema, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn disabled_index_noops() {
        let mut index = TriggerIndex::new();
        index.configure(false);
        let s = stored(
            "SELECT S.B FROM R, S WHERE R.A = 2 AND R.C = S.C",
            "R+C",
            IndexLevel::Attribute,
        );
        let handle = handles(1)[0];
        index.insert(7, handle, &s);
        assert_eq!(index.live(), 0);
        index.remove(7, handle, &s);
        index.remove_ring(7);
        assert_eq!(index.counters(), ProbeCounters::default());
    }
}
