//! Aggregated statistics of an engine run, in the units the paper reports.

use rjoin_metrics::{
    CompileCounters, Distribution, PlannerCounters, ProbeCounters, ShardRuntimeStats,
    SharingCounters, SplitCounters, StateCounters,
};
use serde::{Deserialize, Serialize};

/// A snapshot of the metrics the paper's figures are built from.
///
/// Built by [`RJoinEngine::stats`](crate::RJoinEngine::stats); the benchmark
/// harness prints selected fields of these snapshots as the rows/series of
/// each figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentStats {
    /// Number of nodes in the network.
    pub nodes: usize,
    /// Total messages sent (created + routed) across all nodes.
    pub traffic_total: u64,
    /// Messages spent requesting/returning RIC information.
    pub traffic_ric: u64,
    /// Per-node traffic distribution (messages sent per node).
    pub traffic_per_node: Distribution,
    /// Per-node query-processing load distribution.
    pub qpl: Distribution,
    /// Total query-processing load.
    pub qpl_total: u64,
    /// Per-node (cumulative) storage-load distribution.
    pub sl: Distribution,
    /// Total (cumulative) storage load.
    pub sl_total: u64,
    /// Per-node *current* storage (stored rewritten queries + tuples right
    /// now, i.e. after window garbage collection).
    pub current_storage: Distribution,
    /// Number of answers delivered to querying nodes.
    pub answers: u64,
    /// Number of nodes with non-zero query-processing load.
    pub qpl_participants: usize,
    /// Number of nodes with non-zero storage load.
    pub sl_participants: usize,
    /// Queries (input + rewritten) currently stored across all nodes — one
    /// shared entry counts once however many subscribers it carries.
    pub stored_queries_current: u64,
    /// Cumulative shared sub-join savings (zero when sharing is disabled).
    pub sharing: SharingCounters,
    /// Deliveries that stayed inside their source shard (sharded drains
    /// only; zero under the single-queue driver).
    pub intra_shard_messages: u64,
    /// Deliveries that crossed a shard boundary (sharded drains only).
    pub cross_shard_messages: u64,
    /// How the sharded runtime executed (zeroed for single-queue runs).
    pub shard_runtime: ShardRuntimeStats,
    /// Per-key heat: the query-processing load of every index key that
    /// received at least one delivery, ranked. `key_heat.max()` is the
    /// heaviest hitter; under hot-key splitting the partitions of a split
    /// key appear as separate (cooler) keys, so the drop in `max` and in
    /// `key_heat.gini()` is the direct measure of the split's effect.
    pub key_heat: Distribution,
    /// What the hot-key splitting subsystem did (zeroed when disabled).
    pub splits: SplitCounters,
    /// What the two-plan query planner decided: plans chosen per kind,
    /// hypercube cells/shares allocated, replicated query registrations and
    /// tuple copies routed into cell spaces (hypercube-side counters stay
    /// zero for purely acyclic workloads).
    pub planner: PlannerCounters,
    /// How the compiled rewrite hot loop behaved: programs compiled, cache
    /// hits, per-path rewrite counts and per-delivery eval time
    /// (`interpreted_rewrites` counts triggers when compiled predicates are
    /// disabled).
    pub compile: CompileCounters,
    /// How the O(active) state machinery behaved: live/peak slab occupancy
    /// per store, scheduled wheel deadlines, and reclamations split into
    /// wheel pops vs contact expirations (all-contact in sweep mode).
    pub state: StateCounters,
    /// How tuple-arrival probing behaved: indexed probes vs linear walks,
    /// candidates handed out vs the bucket lengths a linear walk would have
    /// scanned, the residual share, and the summed per-node peak of indexed
    /// handles. `candidates_probed / bucket_len_total` is the direct measure
    /// of what the value-partitioned trigger index saves.
    pub probe: ProbeCounters,
}

impl ExperimentStats {
    /// Average messages per node (the y-axis of the paper's traffic plots).
    pub fn traffic_per_node_avg(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.traffic_total as f64 / self.nodes as f64
        }
    }

    /// Average RIC-request messages per node.
    pub fn ric_per_node_avg(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.traffic_ric as f64 / self.nodes as f64
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "nodes={} traffic={} (ric={}) qpl={} sl={} answers={} qpl_participants={} max_qpl={}",
            self.nodes,
            self.traffic_total,
            self.traffic_ric,
            self.qpl_total,
            self.sl_total,
            self.answers,
            self.qpl_participants,
            self.qpl.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentStats {
        ExperimentStats {
            nodes: 10,
            traffic_total: 100,
            traffic_ric: 20,
            traffic_per_node: Distribution::from_values([10; 10]),
            qpl: Distribution::from_values([5, 5, 0, 0, 0, 0, 0, 0, 0, 0]),
            qpl_total: 10,
            sl: Distribution::from_values([1; 10]),
            sl_total: 10,
            current_storage: Distribution::from_values([1; 10]),
            answers: 3,
            qpl_participants: 2,
            sl_participants: 10,
            stored_queries_current: 12,
            sharing: SharingCounters::default(),
            intra_shard_messages: 0,
            cross_shard_messages: 0,
            shard_runtime: ShardRuntimeStats::default(),
            key_heat: Distribution::from_values([6, 4]),
            splits: SplitCounters::default(),
            planner: PlannerCounters::default(),
            compile: CompileCounters::default(),
            state: StateCounters::default(),
            probe: ProbeCounters::default(),
        }
    }

    #[test]
    fn averages() {
        let s = sample();
        assert!((s.traffic_per_node_avg() - 10.0).abs() < 1e-9);
        assert!((s.ric_per_node_avg() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let s = sample().summary();
        assert!(s.contains("traffic=100"));
        assert!(s.contains("answers=3"));
    }

    #[test]
    fn zero_nodes_do_not_divide_by_zero() {
        let mut s = sample();
        s.nodes = 0;
        assert_eq!(s.traffic_per_node_avg(), 0.0);
        assert_eq!(s.ric_per_node_avg(), 0.0);
    }
}
