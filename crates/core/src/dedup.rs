//! Duplicate elimination for `SELECT DISTINCT` queries (Section 4).

use rjoin_query::{Conjunct, JoinQuery, SelectItem};
use rjoin_relation::{Schema, Tuple, Value};
use std::collections::HashSet;

/// The per-stored-query filter implementing the paper's set-semantics rule:
///
/// > let `A1, ..., Ak` be the attributes of `R` in the select or where
/// > clause of `q'`; a new tuple `τ'` may trigger `q'` only if its
/// > projection on `A1, ..., Ak` has not occurred in one of the tuples that
/// > already triggered `q'`.
#[derive(Debug, Clone, Default)]
pub struct DedupFilter {
    seen: HashSet<Vec<Option<Value>>>,
}

impl DedupFilter {
    /// Creates an empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct projections recorded so far.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no projection has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Returns `true` (and records the projection) if the tuple's projection
    /// on the query's attributes of the tuple's relation has not been seen
    /// before; returns `false` if it is a duplicate and must not trigger the
    /// query again.
    pub fn admit(&mut self, query: &JoinQuery, tuple: &Tuple, schema: &Schema) -> bool {
        let projection = projection(query, tuple, schema);
        self.seen.insert(projection)
    }
}

/// Computes the projection `π_{A1..Ak}(τ)` where `A1..Ak` are the attributes
/// of the tuple's relation that appear in the query's `SELECT` list or
/// `WHERE` clause (in schema order, so equal projections compare equal).
///
/// The projection is **total**: every selected position yields exactly one
/// entry, with `None` marking an attribute the tuple does not carry (e.g. a
/// short tuple). Silently skipping missing values would let two tuples with
/// different missing-attribute patterns collapse onto the same projection
/// and wrongly suppress answers.
pub fn projection(query: &JoinQuery, tuple: &Tuple, schema: &Schema) -> Vec<Option<Value>> {
    let relation = tuple.relation();
    let mut wanted: Vec<usize> = Vec::new();
    let mut add = |attr_name: &str| {
        if let Some(idx) = schema.index_of(attr_name) {
            if !wanted.contains(&idx) {
                wanted.push(idx);
            }
        }
    };
    for item in query.select() {
        if let SelectItem::Attr(a) = item {
            if a.relation == relation {
                add(&a.attribute);
            }
        }
    }
    for conjunct in query.conjuncts() {
        match conjunct {
            Conjunct::JoinEq(a, b) => {
                if a.relation == relation {
                    add(&a.attribute);
                }
                if b.relation == relation {
                    add(&b.attribute);
                }
            }
            Conjunct::ConstEq(a, _) => {
                if a.relation == relation {
                    add(&a.attribute);
                }
            }
        }
    }
    wanted.sort_unstable();
    wanted.into_iter().map(|idx| tuple.value(idx).cloned()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjoin_query::parse_query;

    fn schema() -> Schema {
        Schema::new("S", ["B1", "B2", "B3"]).unwrap()
    }

    fn tuple(values: [i64; 3]) -> Tuple {
        Tuple::new("S", values.iter().map(|v| Value::from(*v)).collect(), 0)
    }

    /// The exact scenario of Example 2 in the paper: tuples (b,2,c) and
    /// (b,2,e) of S both join with (1,2,3) of R and would produce the answer
    /// (1, b) twice; the projection on {B1, B2} is identical, so the second
    /// tuple must be rejected.
    #[test]
    fn example_two_duplicate_is_rejected() {
        // The rewritten query after R's tuple (1,2,3) arrived:
        // select 1, S.B1 from S where S.B2 = 2
        let q = parse_query("SELECT 1, S.B1 FROM S WHERE S.B2 = 2").unwrap();
        let mut filter = DedupFilter::new();
        let t1 = Tuple::new("S", vec![Value::from("b"), Value::from(2), Value::from("c")], 2);
        let t2 = Tuple::new("S", vec![Value::from("b"), Value::from(2), Value::from("e")], 3);
        assert!(filter.admit(&q, &t1, &schema()));
        assert!(!filter.admit(&q, &t2, &schema()), "same projection must be rejected");
        assert_eq!(filter.len(), 1);
    }

    #[test]
    fn different_projection_is_admitted() {
        let q = parse_query("SELECT 1, S.B1 FROM S WHERE S.B2 = 2").unwrap();
        let mut filter = DedupFilter::new();
        assert!(filter.admit(&q, &tuple([7, 2, 1]), &schema()));
        assert!(filter.admit(&q, &tuple([8, 2, 1]), &schema()));
        assert_eq!(filter.len(), 2);
    }

    #[test]
    fn projection_ignores_unreferenced_attributes() {
        let q = parse_query("SELECT 1, S.B1 FROM S WHERE S.B2 = 2").unwrap();
        // B3 differs but is not referenced, so the projections are equal.
        let p1 = projection(&q, &tuple([5, 2, 100]), &schema());
        let p2 = projection(&q, &tuple([5, 2, 999]), &schema());
        assert_eq!(p1, p2);
        assert_eq!(p1, vec![Some(Value::from(5)), Some(Value::from(2))]);
    }

    /// Regression: the projection used to `filter_map` over missing values,
    /// silently shrinking when a tuple did not carry a referenced attribute.
    /// The projection is now **total**: every referenced attribute yields one
    /// positional entry, with an explicit absent marker, so a tuple missing a
    /// referenced value can never collapse onto the projection of a tuple
    /// that carries one.
    #[test]
    fn projection_is_total_with_explicit_absent_markers() {
        // The query references B1 and B2 of S.
        let q = parse_query("SELECT S.B1 FROM S, R WHERE S.B2 = R.A").unwrap();
        let missing_b2 = Tuple::new("S", vec![Value::from(7)], 0);
        let full = Tuple::new("S", vec![Value::from(7), Value::from(7)], 0);
        let p_short = projection(&q, &missing_b2, &schema());
        let p_full = projection(&q, &full, &schema());
        // Both projections cover both referenced attributes — the absent B2
        // is an explicit `None`, not a silently dropped entry.
        assert_eq!(p_short, vec![Some(Value::from(7)), None]);
        assert_eq!(p_full, vec![Some(Value::from(7)), Some(Value::from(7))]);
        assert_ne!(p_short, p_full);

        // The filter therefore admits both: different missing-attribute
        // patterns are different projections.
        let mut filter = DedupFilter::new();
        assert!(filter.admit(&q, &missing_b2, &schema()));
        assert!(
            filter.admit(&q, &full, &schema()),
            "a tuple carrying a value where another was absent must not be suppressed"
        );
        assert_eq!(filter.len(), 2);
    }

    #[test]
    fn projection_is_in_schema_order_regardless_of_query_order() {
        let q1 = parse_query("SELECT S.B2, S.B1 FROM S, R WHERE S.B1 = R.A").unwrap();
        let q2 = parse_query("SELECT S.B1, S.B2 FROM S, R WHERE S.B1 = R.A").unwrap();
        let t = tuple([1, 2, 3]);
        assert_eq!(projection(&q1, &t, &schema()), projection(&q2, &t, &schema()));
    }

    #[test]
    fn projection_for_other_relation_is_empty() {
        let q = parse_query("SELECT R.A FROM R WHERE R.A = 1").unwrap();
        assert!(projection(&q, &tuple([1, 2, 3]), &schema()).is_empty());
    }
}
