//! Duplicate elimination for `SELECT DISTINCT` queries (Section 4).

use rjoin_query::{Conjunct, JoinQuery, SelectItem};
use rjoin_relation::{Schema, Tuple, Value};
use std::collections::HashSet;

/// The per-stored-query filter implementing the paper's set-semantics rule:
///
/// > let `A1, ..., Ak` be the attributes of `R` in the select or where
/// > clause of `q'`; a new tuple `τ'` may trigger `q'` only if its
/// > projection on `A1, ..., Ak` has not occurred in one of the tuples that
/// > already triggered `q'`.
#[derive(Debug, Clone, Default)]
pub struct DedupFilter {
    seen: HashSet<Vec<Value>>,
}

impl DedupFilter {
    /// Creates an empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct projections recorded so far.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no projection has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Returns `true` (and records the projection) if the tuple's projection
    /// on the query's attributes of the tuple's relation has not been seen
    /// before; returns `false` if it is a duplicate and must not trigger the
    /// query again.
    pub fn admit(&mut self, query: &JoinQuery, tuple: &Tuple, schema: &Schema) -> bool {
        let projection = projection(query, tuple, schema);
        self.seen.insert(projection)
    }
}

/// Computes the projection `π_{A1..Ak}(τ)` where `A1..Ak` are the attributes
/// of the tuple's relation that appear in the query's `SELECT` list or
/// `WHERE` clause (in schema order, so equal projections compare equal).
pub fn projection(query: &JoinQuery, tuple: &Tuple, schema: &Schema) -> Vec<Value> {
    let relation = tuple.relation();
    let mut wanted: Vec<usize> = Vec::new();
    let mut add = |attr_name: &str| {
        if let Some(idx) = schema.index_of(attr_name) {
            if !wanted.contains(&idx) {
                wanted.push(idx);
            }
        }
    };
    for item in query.select() {
        if let SelectItem::Attr(a) = item {
            if a.relation == relation {
                add(&a.attribute);
            }
        }
    }
    for conjunct in query.conjuncts() {
        match conjunct {
            Conjunct::JoinEq(a, b) => {
                if a.relation == relation {
                    add(&a.attribute);
                }
                if b.relation == relation {
                    add(&b.attribute);
                }
            }
            Conjunct::ConstEq(a, _) => {
                if a.relation == relation {
                    add(&a.attribute);
                }
            }
        }
    }
    wanted.sort_unstable();
    wanted
        .into_iter()
        .filter_map(|idx| tuple.value(idx).cloned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjoin_query::parse_query;

    fn schema() -> Schema {
        Schema::new("S", ["B1", "B2", "B3"]).unwrap()
    }

    fn tuple(values: [i64; 3]) -> Tuple {
        Tuple::new("S", values.iter().map(|v| Value::from(*v)).collect(), 0)
    }

    /// The exact scenario of Example 2 in the paper: tuples (b,2,c) and
    /// (b,2,e) of S both join with (1,2,3) of R and would produce the answer
    /// (1, b) twice; the projection on {B1, B2} is identical, so the second
    /// tuple must be rejected.
    #[test]
    fn example_two_duplicate_is_rejected() {
        // The rewritten query after R's tuple (1,2,3) arrived:
        // select 1, S.B1 from S where S.B2 = 2
        let q = parse_query("SELECT 1, S.B1 FROM S WHERE S.B2 = 2").unwrap();
        let mut filter = DedupFilter::new();
        let t1 = Tuple::new("S", vec![Value::from("b"), Value::from(2), Value::from("c")], 2);
        let t2 = Tuple::new("S", vec![Value::from("b"), Value::from(2), Value::from("e")], 3);
        assert!(filter.admit(&q, &t1, &schema()));
        assert!(!filter.admit(&q, &t2, &schema()), "same projection must be rejected");
        assert_eq!(filter.len(), 1);
    }

    #[test]
    fn different_projection_is_admitted() {
        let q = parse_query("SELECT 1, S.B1 FROM S WHERE S.B2 = 2").unwrap();
        let mut filter = DedupFilter::new();
        assert!(filter.admit(&q, &tuple([7, 2, 1]), &schema()));
        assert!(filter.admit(&q, &tuple([8, 2, 1]), &schema()));
        assert_eq!(filter.len(), 2);
    }

    #[test]
    fn projection_ignores_unreferenced_attributes() {
        let q = parse_query("SELECT 1, S.B1 FROM S WHERE S.B2 = 2").unwrap();
        // B3 differs but is not referenced, so the projections are equal.
        let p1 = projection(&q, &tuple([5, 2, 100]), &schema());
        let p2 = projection(&q, &tuple([5, 2, 999]), &schema());
        assert_eq!(p1, p2);
        assert_eq!(p1, vec![Value::from(5), Value::from(2)]);
    }

    #[test]
    fn projection_is_in_schema_order_regardless_of_query_order() {
        let q1 = parse_query("SELECT S.B2, S.B1 FROM S, R WHERE S.B1 = R.A").unwrap();
        let q2 = parse_query("SELECT S.B1, S.B2 FROM S, R WHERE S.B1 = R.A").unwrap();
        let t = tuple([1, 2, 3]);
        assert_eq!(projection(&q1, &t, &schema()), projection(&q2, &t, &schema()));
    }

    #[test]
    fn projection_for_other_relation_is_empty() {
        let q = parse_query("SELECT R.A FROM R WHERE R.A = 1").unwrap();
        assert!(projection(&q, &tuple([1, 2, 3]), &schema()).is_empty());
    }
}
