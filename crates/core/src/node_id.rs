//! The public identity of an engine node.

use rjoin_dht::Id;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Deref;

/// The identity of a node participating in an RJoin deployment.
///
/// Engine entry points ([`submit_query`](crate::RJoinEngine::submit_query),
/// [`publish_tuple`](crate::RJoinEngine::publish_tuple),
/// [`leave_node`](crate::RJoinEngine::leave_node)) address nodes through
/// this newtype instead of exposing the raw ring identifier type. It wraps
/// the node's position on the identifier ring ([`Id`]) and converts freely
/// in both directions, so existing code that holds `Id`s (returned by
/// [`RJoinEngine::node_ids`](crate::RJoinEngine::node_ids), stored in
/// answer records, compared in tests) keeps working: every entry point
/// takes `impl Into<NodeId>`, and `NodeId` compares equal to the `Id` it
/// wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub Id);

impl NodeId {
    /// The node identity derived from hashing a textual label, the way
    /// engine constructors name their nodes (`"rjoin-node-3"`).
    pub fn from_label(label: &str) -> Self {
        NodeId(Id::hash_key(label))
    }

    /// The wrapped ring identifier.
    pub fn id(self) -> Id {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", self.0)
    }
}

impl From<Id> for NodeId {
    fn from(id: Id) -> Self {
        NodeId(id)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(Id(raw))
    }
}

impl From<&Id> for NodeId {
    fn from(id: &Id) -> Self {
        NodeId(*id)
    }
}

impl From<NodeId> for Id {
    fn from(node: NodeId) -> Self {
        node.0
    }
}

impl Deref for NodeId {
    type Target = Id;

    fn deref(&self) -> &Id {
        &self.0
    }
}

impl PartialEq<Id> for NodeId {
    fn eq(&self, other: &Id) -> bool {
        self.0 == *other
    }
}

impl PartialEq<NodeId> for Id {
    fn eq(&self, other: &NodeId) -> bool {
        *self == other.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_and_compares_with_raw_ids() {
        let id = Id::hash_key("rjoin-node-0");
        let node: NodeId = id.into();
        assert_eq!(node, id);
        assert_eq!(id, node);
        assert_eq!(Id::from(node), id);
        assert_eq!(NodeId::from_label("rjoin-node-0"), node);
        assert_eq!(*node, id, "deref reaches the wrapped ring identifier");
        assert_eq!(node.to_string(), format!("node:{id}"));
    }
}
