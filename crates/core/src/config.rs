//! Engine configuration.

use rjoin_net::SimTime;
use serde::{Deserialize, Serialize};

/// How a node chooses, among the candidate keys of a query, the one under
/// which the query is (re-)indexed.
///
/// The paper's Figure 2 compares RJoin's RIC-aware choice against a random
/// choice and against an adversarial "always pick the worst candidate"
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PlacementStrategy {
    /// Ask candidate nodes for their rate of incoming tuples and pick the
    /// candidate with the lowest rate (the RJoin strategy, Section 6).
    #[default]
    RicAware,
    /// Pick a candidate uniformly at random (no RIC traffic).
    Random,
    /// Always pick the candidate with the *highest* incoming-tuple rate
    /// (the paper's worst-case baseline; uses oracle knowledge and is not
    /// charged RIC traffic).
    Worst,
    /// Always pick the first candidate in the `WHERE` clause order (the
    /// naive strategy used in Section 3 before RIC information is
    /// introduced).
    FirstInClause,
}

/// Configuration of an [`RJoinEngine`](crate::RJoinEngine) run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Placement strategy for input and rewritten queries.
    pub placement: PlacementStrategy,
    /// Whether RIC information is piggy-backed on rewritten queries and
    /// cached in each node's candidate table (Section 7). When disabled,
    /// every (re-)indexing decision under [`PlacementStrategy::RicAware`]
    /// pays the full RIC-request cost again.
    pub reuse_ric: bool,
    /// Length of the observation window (in ticks) used to estimate the
    /// rate of incoming tuples: the estimate for a key is the number of
    /// tuples that arrived under that key during the last `ric_window`
    /// ticks ("we observe what has happened during the last time window and
    /// assume a similar behaviour for the future", Section 6).
    pub ric_window: SimTime,
    /// Validity horizon of cached RIC information in the candidate table:
    /// entries older than this are refreshed (one extra direct hop), as
    /// described at the end of Section 7. `None` disables expiry.
    pub ct_validity: Option<SimTime>,
    /// Retention time Δ of the attribute-level tuple table (ALTT,
    /// Section 4): a retained tuple stays matchable until Δ ticks past its
    /// *publication* time, so a query delivered at tick `a` sees exactly the
    /// recently published tuples with `pub + Δ >= a`. `None` disables the
    /// ALTT, i.e. tuples received at the attribute level are used to trigger
    /// stored queries and then discarded, as in the base algorithm.
    pub altt_delta: Option<SimTime>,
    /// When `true`, rewritten queries are only indexed under value-level
    /// keys, as in the base algorithm of Section 3. This guarantees that a
    /// rewritten query always finds matching tuples that arrived before it
    /// (they are stored at the value level), i.e. eventual completeness
    /// without the ALTT. When `false` (the default), the Section 6
    /// generalisation is used: rewritten queries may also be indexed at the
    /// attribute level if RIC information favours it.
    pub rewritten_value_level_only: bool,
    /// When `true`, nodes share the evaluation of structurally identical
    /// (sub-)queries: a query arriving at a node that already stores a query
    /// with the same sub-join fingerprint (same `FROM`/`WHERE`/window, any
    /// `SELECT` list) under the same key is merged into it as an extra
    /// subscriber instead of being stored and rewritten separately. The
    /// shared entry is rewritten and re-indexed once per triggering tuple
    /// and completed answers fan back out to every subscriber — the
    /// multi-query optimization of Dossinger & Michel. Off by default: the
    /// unshared path reproduces the paper's per-query accounting exactly.
    pub share_subjoins: bool,
    /// Per-message delivery delay bound δ of the simulated network.
    pub network_delay: SimTime,
    /// Successor-list length of the Chord nodes.
    pub successor_list_len: usize,
    /// Seed for the engine's internal randomness (random placement).
    pub seed: u64,
    /// Number of event-queue shards used by
    /// [`RJoinEngine::run_until_quiescent_parallel`](crate::RJoinEngine::run_until_quiescent_parallel).
    ///
    /// With `1` (the default) the driver uses the single global event queue
    /// and is byte-identical to the sequential driver. With `n > 1` the
    /// ring's nodes are split into `n` contiguous identifier ranges, each
    /// owning its own bucket queue, local virtual clock and worker thread,
    /// synchronized only through the conservative watermark protocol of
    /// [`rjoin_net::ShardedNetwork`]. Sharded runs are deterministic and
    /// produce identical answers/loads/traffic for every `n > 1`; they can
    /// differ from the `n = 1` trace only through placement-RNG draws
    /// (derived per decision instead of from one global stream) and the
    /// pruning-free RIC reads.
    pub shards: usize,
    /// Number of worker threads the sharded drain may use, decoupled from
    /// the shard count. `None` (the default) resolves at drain time: the
    /// `RJOIN_WORKERS` environment variable if set, otherwise the machine's
    /// available parallelism. `1` forces the cooperative single-threaded
    /// scheduler; values between `2` and `shards - 1` drive the shards with
    /// a phase-parallel worker pool; values `>= shards` give every shard
    /// its own persistent worker. The choice never changes results — only
    /// how the same deterministic schedule is executed.
    pub workers: Option<usize>,
    /// Heavy-hitter threshold for hot-key splitting: when a tuple
    /// publication observes that one of its index keys received at least
    /// this many tuples during the last [`ric_window`](Self::ric_window)
    /// ticks (read from the owning node's RIC tracker), the key is split
    /// into [`hot_key_partitions`](Self::hot_key_partitions) sub-keys.
    /// `None` (the default) disables splitting: the paper's base system.
    pub hot_key_threshold: Option<u64>,
    /// Number of sub-keys `s` a hot key is split into (the key's *share* in
    /// Afrati et al.'s terms). Ignored while
    /// [`hot_key_threshold`](Self::hot_key_threshold) is `None`.
    pub hot_key_partitions: u32,
    /// When `true` (the default), per-tuple rewriting runs compiled
    /// predicate programs: at first trigger the stored query's sub-join is
    /// compiled into a flat rewrite template (attribute references resolved
    /// to column offsets, constant filters pre-folded and hoisted before
    /// join-residue emission), cached per node keyed by the sub-join
    /// fingerprint so all subscribers of a shared shape compile once. When
    /// `false`, every trigger walks the query AST through the
    /// `rjoin_query::rewrite` interpreter — the semantics oracle the
    /// differential tests compare against. Both paths produce byte-identical
    /// answers.
    pub compiled_predicates: bool,
    /// When `true` (the default), each node indexes every windowed stored
    /// query and ALTT entry by its deadline on a per-node timer wheel, and
    /// the drivers pop expired entries as the clock crosses their deadline —
    /// O(expired) reclamation, independent of how much state is stored.
    /// When `false`, dead state is only reclaimed when a later arrival walks
    /// the bucket it sits in (the legacy contact-driven sweep, retained as a
    /// differential oracle). Answer streams are identical either way —
    /// wheel deadlines are provably past the last tick at which an entry
    /// could still trigger, **provided tuples enter the network at their
    /// publication time** (`pub_time >= engine clock` when published, which
    /// is how every driver in this workspace publishes). A publisher that
    /// back-dates tuples behind the clock stretches delivery lag beyond the
    /// delay bound the deadlines account for and should run in sweep mode.
    pub wheel_expiry: bool,
    /// When `true` (the default), submitted queries go through the two-plan
    /// cost model (`rjoin_query::plan`): cyclic join graphs are placed as a
    /// replicated hypercube of cells, acyclic ones stay on the paper's
    /// rewrite pipeline unless the hypercube is strictly cheaper. When
    /// `false`, cyclic queries are rejected with
    /// `QueryError::CyclicShape` — the rewrite pipeline cannot express
    /// them, and silently dropping the cycle-closing conjunct would change
    /// answers.
    pub hypercube_planner: bool,
    /// Cell budget of a hypercube plan: the planner allocates per-axis
    /// shares `s_1 × … × s_k` with `∏ s_i` at most this value.
    pub hypercube_cells: u32,
    /// When `true` (the default), each node partitions its stored-query
    /// buckets by the entries' discriminating probe value (the first
    /// tuple-resolvable constant equality of the compiled rewrite) and a
    /// tuple arrival contacts only the residual entries plus its own value
    /// slice — O(matching) instead of O(bucket). When `false`, every
    /// arrival walks the whole bucket (the linear-walk oracle the
    /// differential suite compares against). Answers are byte-identical
    /// either way: skipped entries would have rewritten to `Mismatch`, and
    /// skipped contact-expiry removals are provably unobservable (see
    /// `trigger_index` module docs).
    pub trigger_index: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            placement: PlacementStrategy::RicAware,
            reuse_ric: true,
            ric_window: 200,
            ct_validity: Some(500),
            altt_delta: None,
            rewritten_value_level_only: false,
            share_subjoins: false,
            network_delay: 1,
            successor_list_len: 4,
            seed: 0x8101_2008,
            shards: 1,
            workers: None,
            hot_key_threshold: None,
            hot_key_partitions: 8,
            compiled_predicates: true,
            wheel_expiry: true,
            hypercube_planner: true,
            hypercube_cells: 8,
            trigger_index: true,
        }
    }
}

/// Construction and quantitative tuning knobs.
///
/// Boolean feature toggles live in the [Features](#features) block below;
/// this block holds the constructors and the setters that take a magnitude
/// (a tick count, a shard count, a cell budget, …).
impl EngineConfig {
    /// The configuration used for the paper's main experiments: RIC-aware
    /// placement with reuse, no windows-specific settings (windows are per
    /// query), base algorithm without ALTT.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A configuration using the given placement strategy and otherwise
    /// default settings.
    pub fn with_placement(placement: PlacementStrategy) -> Self {
        EngineConfig { placement, ..Self::default() }
    }

    /// Enables the ALTT with retention Δ (for the message-delay experiments
    /// and completeness tests).
    pub fn with_altt(mut self, delta: SimTime) -> Self {
        self.altt_delta = Some(delta);
        self
    }

    /// Sets the network delay bound δ.
    pub fn with_delay(mut self, delay: SimTime) -> Self {
        self.network_delay = delay;
        self
    }

    /// Sets the number of event-queue shards the parallel driver uses
    /// (clamped to at least 1). `with_shards(1)` keeps the single global
    /// queue and is byte-identical to the sequential driver.
    ///
    /// The sharded runtime's conservative synchronization uses the delay
    /// bound δ as its lookahead, so it requires `network_delay >= 1`; with
    /// a zero-delay configuration the parallel driver falls back to the
    /// single-queue tick-batched path regardless of the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Pins the number of worker threads the sharded drain uses (clamped to
    /// at least 1), independent of the shard count. Without this the drain
    /// honours the `RJOIN_WORKERS` environment variable, falling back to
    /// the machine's available parallelism.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Sets the hypercube cell budget (clamped to at least 2 — a one-cell
    /// budget would centralize every hypercube-planned query).
    pub fn with_hypercube_cells(mut self, cells: u32) -> Self {
        self.hypercube_cells = cells.max(2);
        self
    }

    /// Enables hot-key splitting: a key observed to receive at least
    /// `threshold` tuples per RIC window is split into `partitions`
    /// deterministic sub-keys — tuples route to exactly one sub-key,
    /// queries register at all of them, and the answer stream is identical
    /// to the unsplit run while the hot key's load spreads over
    /// `partitions` nodes. `partitions` is clamped to at least 2.
    pub fn with_hot_key_splitting(mut self, threshold: u64, partitions: u32) -> Self {
        self.hot_key_threshold = Some(threshold);
        self.hot_key_partitions = partitions.max(2);
        self
    }
}

/// # Features
///
/// Every boolean feature toggle has the same shape: `with_<feature>(bool)`,
/// where `true` enables the feature and `false` selects the baseline the
/// differential suites compare against. Each setter documents which of the
/// two is the default; chaining setters is order-independent because each
/// writes exactly one field.
impl EngineConfig {
    /// Selects RIC reuse (Section 7): `true` (the default) piggy-backs RIC
    /// information on rewritten queries and caches it in each node's
    /// candidate table, `false` pays the full RIC-request cost on every
    /// (re-)indexing decision — the ablation discussed in Section 7.
    pub fn with_ric_reuse(mut self, enabled: bool) -> Self {
        self.reuse_ric = enabled;
        self
    }

    /// Selects where rewritten queries may be indexed: `true` restricts
    /// them to value-level keys (the Section 3 base algorithm, which
    /// guarantees eventual completeness without the ALTT), `false` (the
    /// default) allows attribute-level placement when RIC information
    /// favours it (the Section 6 generalisation).
    pub fn with_value_level_only(mut self, enabled: bool) -> Self {
        self.rewritten_value_level_only = enabled;
        self
    }

    /// Selects shared sub-join evaluation (the multi-query optimization):
    /// `true` stores, rewrites and re-indexes structurally identical
    /// queries once, fanning answers back out per subscriber; `false` (the
    /// default) keeps the unshared path that reproduces the paper's
    /// per-query accounting exactly.
    pub fn with_subjoin_sharing(mut self, enabled: bool) -> Self {
        self.share_subjoins = enabled;
        self
    }

    /// Selects the per-tuple rewrite path: `true` (the default) executes
    /// compiled predicate programs, `false` runs the AST interpreter on
    /// every trigger. Results are byte-identical either way; the
    /// interpreter is retained as the oracle for differential tests and the
    /// `compiled` bench ablation.
    pub fn with_compiled_predicates(mut self, compiled: bool) -> Self {
        self.compiled_predicates = compiled;
        self
    }

    /// Selects the expiry machinery: `true` (the default) pops expired
    /// windowed queries and ALTT entries from each node's timer wheel at
    /// their deadline, `false` leaves dead state in place until a bucket
    /// walk contacts it (the legacy sweep, retained as the oracle for
    /// differential tests and the `scale/sweep` bench ablation).
    pub fn with_wheel_expiry(mut self, wheel: bool) -> Self {
        self.wheel_expiry = wheel;
        self
    }

    /// Selects the tuple-arrival probe path: `true` (the default) probes
    /// the value-partitioned trigger index, `false` walks the whole stored-
    /// query bucket on every arrival (the linear-walk oracle, retained for
    /// differential tests and the `probe/linear` bench ablation).
    pub fn with_trigger_index(mut self, enabled: bool) -> Self {
        self.trigger_index = enabled;
        self
    }

    /// Selects whether the hypercube planner is available: `true` (the
    /// default) lets the cost model place cyclic queries as replicated
    /// hypercube cells, `false` rejects cyclic shapes at submission with
    /// `QueryError::CyclicShape` (the paper's pipeline-only system).
    pub fn with_hypercube_planner(mut self, enabled: bool) -> Self {
        self.hypercube_planner = enabled;
        self
    }
}

/// # Deprecated setter shims
///
/// Earlier revisions grew feature toggles by accretion, so some took no
/// argument (`with_shared_subjoins()`) while others took an explicit
/// `bool` (`with_compiled_predicates(false)`). The argument-less shapes
/// survive here as shims over the consolidated
/// [Features](#features) setters.
impl EngineConfig {
    /// Disables RIC reuse (piggy-backing and candidate-table caching).
    #[deprecated(note = "use `with_ric_reuse(false)`")]
    pub fn without_ric_reuse(self) -> Self {
        self.with_ric_reuse(false)
    }

    /// Restricts rewritten queries to value-level placement.
    #[deprecated(note = "use `with_value_level_only(true)`")]
    pub fn with_value_level_rewrites(self) -> Self {
        self.with_value_level_only(true)
    }

    /// Enables shared sub-join evaluation.
    #[deprecated(note = "use `with_subjoin_sharing(true)`")]
    pub fn with_shared_subjoins(self) -> Self {
        self.with_subjoin_sharing(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ric_aware_with_reuse() {
        let c = EngineConfig::default();
        assert_eq!(c.placement, PlacementStrategy::RicAware);
        assert!(c.reuse_ric);
        assert!(c.altt_delta.is_none());
        assert!(!c.share_subjoins, "sharing is opt-in: the default reproduces the paper");
        assert!(EngineConfig::default().with_subjoin_sharing(true).share_subjoins);
        assert_eq!(c.shards, 1, "the default driver is the single-queue one");
        assert_eq!(EngineConfig::default().with_shards(8).shards, 8);
        assert_eq!(EngineConfig::default().with_shards(0).shards, 1, "shards clamp to >= 1");
        assert_eq!(c.workers, None, "worker count resolves at drain time by default");
        assert_eq!(EngineConfig::default().with_workers(3).workers, Some(3));
        assert_eq!(EngineConfig::default().with_workers(0).workers, Some(1));
        assert!(c.hot_key_threshold.is_none(), "splitting is opt-in: the default is the paper");
        assert!(c.compiled_predicates, "compiled predicate programs are the default hot path");
        assert!(!EngineConfig::default().with_compiled_predicates(false).compiled_predicates);
        assert!(c.wheel_expiry, "timer-wheel expiry is the default");
        assert!(!EngineConfig::default().with_wheel_expiry(false).wheel_expiry);
        assert!(c.trigger_index, "indexed tuple-arrival probing is the default");
        assert!(!EngineConfig::default().with_trigger_index(false).trigger_index);
        assert!(c.hypercube_planner, "cyclic shapes are a supported workload by default");
        assert_eq!(c.hypercube_cells, 8);
        assert!(!EngineConfig::default().with_hypercube_planner(false).hypercube_planner);
        assert_eq!(EngineConfig::default().with_hypercube_cells(16).hypercube_cells, 16);
        assert_eq!(
            EngineConfig::default().with_hypercube_cells(0).hypercube_cells,
            2,
            "the cell budget clamps to >= 2"
        );
    }

    #[test]
    fn feature_setters_take_explicit_bool() {
        let c = EngineConfig::default()
            .with_ric_reuse(false)
            .with_value_level_only(true)
            .with_subjoin_sharing(true);
        assert!(!c.reuse_ric);
        assert!(c.rewritten_value_level_only);
        assert!(c.share_subjoins);
        let back = c.with_ric_reuse(true).with_value_level_only(false).with_subjoin_sharing(false);
        assert!(back.reuse_ric);
        assert!(!back.rewritten_value_level_only);
        assert!(!back.share_subjoins);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_forward_to_bool_setters() {
        let c = EngineConfig::default()
            .without_ric_reuse()
            .with_value_level_rewrites()
            .with_shared_subjoins();
        assert!(!c.reuse_ric);
        assert!(c.rewritten_value_level_only);
        assert!(c.share_subjoins);
    }

    #[test]
    fn hot_key_splitting_builder_sets_and_clamps() {
        let c = EngineConfig::default().with_hot_key_splitting(25, 4);
        assert_eq!(c.hot_key_threshold, Some(25));
        assert_eq!(c.hot_key_partitions, 4);
        let c = EngineConfig::default().with_hot_key_splitting(1, 0);
        assert_eq!(c.hot_key_partitions, 2, "a split needs at least two partitions");
    }

    #[test]
    fn builders_set_fields() {
        let c = EngineConfig::with_placement(PlacementStrategy::Worst)
            .with_altt(50)
            .with_delay(9)
            .with_ric_reuse(false);
        assert_eq!(c.placement, PlacementStrategy::Worst);
        assert_eq!(c.altt_delta, Some(50));
        assert_eq!(c.network_delay, 9);
        assert!(!c.reuse_ric);
    }

    #[test]
    fn serde_round_trip() {
        let c = EngineConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.placement, c.placement);
        assert_eq!(back.ric_window, c.ric_window);
    }
}
