//! The per-node message handlers: Procedures 1–3 of the paper.
//!
//! These functions operate on a single node's [`NodeState`] and return the
//! list of [`Action`]s the node wants to perform (answers to deliver,
//! rewritten queries to re-index). Sending those actions through the network
//! — including the RIC-aware placement decision — is the engine's job, which
//! keeps these handlers purely local, exactly like the pseudo-code in the
//! paper.
//!
//! Tuple arrivals ([`handle_new_tuple`]) contact stored queries through the
//! node's value-partitioned trigger index by default (`O(matching)` probes;
//! see [`crate::trigger_index`]), falling back to the linear bucket walk
//! when `EngineConfig::with_trigger_index(false)` selects the oracle mode.
//! Either way, a contact-expiry removal here is a handle-unlink site under
//! the index's maintenance contract: it must unfile the removed entry
//! (`TriggerIndex::remove`) and fix the moved entry's `bucket_pos`
//! ([`unlink_from_bucket`]) like every other removal path.

use crate::config::EngineConfig;
use crate::messages::{PendingQuery, QueryId, Subscriber};
use crate::node_state::{unlink_from_bucket, NodeState, ProgramCache, StoredQuery};
use rjoin_dht::HashedKey;
use rjoin_metrics::{CompileCounters, SharingCounters};
use rjoin_net::SimTime;
use rjoin_query::{
    compile_subjoin, fingerprint, resolve_select_items, rewrite, CompiledTrigger, Fingerprint,
    IndexLevel, JoinQuery, RewriteResult, SelectItem,
};
use rjoin_relation::{Catalog, Schema, Timestamp, Tuple, Value};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// An outgoing action produced by a local handler.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Deliver an answer row to the node that submitted the query
    /// (`sendDirect` in the paper).
    DeliverAnswer {
        /// The original query.
        query: QueryId,
        /// The owner node to deliver to.
        owner: rjoin_dht::Id,
        /// The answer row.
        row: Vec<Value>,
    },
    /// Re-index a rewritten query at another node (the `Eval` message of
    /// Procedures 2 and 3). The engine chooses the target key.
    Reindex {
        /// The rewritten query and its metadata (boxed: a `PendingQuery`
        /// dwarfs the answer variant, and actions move through `Vec`s).
        pending: Box<PendingQuery>,
    },
}

/// Read-only context shared by the handlers.
pub struct ProcCtx<'a> {
    /// The schema catalog.
    pub catalog: &'a Catalog,
    /// Engine configuration.
    pub config: &'a EngineConfig,
    /// Current simulation time (the clock, `>= at` when the driver advanced
    /// the clock past pending deliveries).
    pub now: SimTime,
    /// The raw delivery tick of the message being handled. Recorded next to
    /// `now` for RIC arrivals so the sharded runtime can answer remote rate
    /// reads exactly as of a reader's tick.
    pub at: SimTime,
}

/// Outcome of attempting to trigger one stored query with one tuple.
enum TriggerOutcome {
    /// The stored query expired (window violation) and must be deleted.
    Expired,
    /// The tuple did not trigger the query (mismatch, dedup or time filter).
    NotTriggered,
    /// The tuple triggered the query. Unshared entries produce exactly one
    /// action; shared entries can fan a completion out into one answer per
    /// subscriber.
    Triggered(Vec<Action>),
}

/// Resolves a subscriber's `SELECT` continuation with the completing tuple
/// and extracts the answer row. Returns `None` if any item is still
/// unresolved, which cannot happen for subscribers merged on an identical
/// sub-join structure (defensive: an unresolved item must not produce a
/// malformed answer).
fn subscriber_row(select: &[SelectItem], tuple: &Tuple, schema: &Schema) -> Option<Vec<Value>> {
    let resolved = resolve_select_items(select, tuple, schema).ok()?;
    resolved
        .into_iter()
        .map(|item| match item {
            SelectItem::Const(v) => Some(v),
            SelectItem::Attr(_) => None,
        })
        .collect()
}

/// Builds the rewritten descendant of a (possibly shared) triggered query.
///
/// Subscribers only ride on the child if the triggering tuple was published
/// at or after their own insertion time, and their `SELECT` continuations
/// are resolved with the tuple in lockstep with the shared `WHERE` rewrite.
/// When the primary subscriber itself is ineligible, the first eligible
/// extra subscriber is promoted to primary (its resolved `SELECT` list
/// becomes the representative one). Returns `None` when no subscriber is
/// eligible.
fn shared_child(
    pending: &PendingQuery,
    rewritten: rjoin_query::JoinQuery,
    new_start: Option<Timestamp>,
    tuple: &Tuple,
    schema: &Schema,
) -> Option<PendingQuery> {
    let eligible_extras: Vec<Subscriber> = pending
        .extra_subscribers
        .iter()
        .filter(|s| tuple.pub_time() >= s.insert_time)
        .filter_map(|s| {
            Some(Subscriber {
                id: s.id,
                owner: s.owner,
                insert_time: s.insert_time,
                select: resolve_select_items(&s.select, tuple, schema).ok()?,
            })
        })
        .collect();
    let mut child = if tuple.pub_time() >= pending.insert_time {
        let mut child = pending.child(rewritten, new_start);
        child.extra_subscribers = eligible_extras;
        child
    } else {
        let mut extras = eligible_extras.into_iter();
        let promoted = extras.next()?;
        let query = rewritten.with_select(promoted.select).ok()?;
        PendingQuery {
            id: promoted.id,
            owner: promoted.owner,
            insert_time: promoted.insert_time,
            original_joins: pending.original_joins,
            window_start: new_start,
            window_min: pending.window_min,
            window_max: pending.window_max,
            query,
            extra_subscribers: extras.collect(),
            hypercube: pending.hypercube.clone(),
        }
    };
    child.note_contribution(tuple.pub_time());
    Some(child)
}

/// Returns the stored entry's compiled trigger program for the schema's
/// relation, compiling (or fetching from the engine-wide fingerprint-keyed
/// cache) on first use. `slot`/`query`/`known_fp` are disjoint borrows of
/// one [`StoredQuery`].
///
/// Returns `None` when the query cannot be compiled — exactly the queries
/// the interpreter would error on (unknown attribute, orphaned residue from
/// unchecked construction), which map to "not triggered" either way.
fn ensure_program<'a>(
    slot: &'a mut Option<CompiledTrigger>,
    query: &JoinQuery,
    known_fp: Option<Fingerprint>,
    schema: &Schema,
    cache: &Mutex<ProgramCache>,
    counters: &mut CompileCounters,
) -> Option<&'a CompiledTrigger> {
    let cached = slot.as_ref().is_some_and(|p| p.relation() == schema.relation());
    if !cached {
        let fp = known_fp.unwrap_or_else(|| fingerprint(query));
        let mut cache = cache.lock().expect("program cache lock poisoned");
        let bucket = cache.entry(fp.0).or_default();
        let shared = match bucket.iter().find(|p| p.matches_source(query, schema.relation())) {
            Some(shared) => {
                counters.cache_hits += 1;
                Arc::clone(shared)
            }
            None => {
                let shared = Arc::new(compile_subjoin(query, schema).ok()?);
                counters.programs_compiled += 1;
                bucket.push(Arc::clone(&shared));
                shared
            }
        };
        *slot = Some(CompiledTrigger::new(shared, query, schema).ok()?);
    }
    slot.as_ref()
}

/// Applies one tuple to one stored query following the trigger rules:
/// publication-time filter, window validity (Section 5), duplicate
/// elimination (Section 4) and the rewriting step itself.
///
/// `start_rule` computes the `start` parameter of the produced rewritten
/// query from the stored query's own `start` and the tuple's publication
/// time (the rule differs between Procedure 2 and Procedure 3).
///
/// For shared entries (subscriber count > 1) the `WHERE` clause is rewritten
/// **once**; eligibility and `SELECT` resolution are applied per subscriber.
///
/// `schema` is the schema of `tuple`'s relation, resolved once per delivery
/// by the caller (not per stored query). `programs` is the engine-wide
/// compiled-program cache; `counters` are the node's compile counters,
/// threaded in as a split borrow so the caller can keep iterating its
/// stored-query bucket.
fn try_trigger(
    stored: &mut StoredQuery,
    tuple: &Tuple,
    schema: &Schema,
    ctx: &ProcCtx<'_>,
    programs: &Mutex<ProgramCache>,
    counters: &mut CompileCounters,
    start_rule: impl Fn(Option<Timestamp>, Timestamp) -> Option<Timestamp>,
) -> TriggerOutcome {
    let pending = &stored.pending;
    // Only tuples published at or after the submission of at least one
    // subscriber can trigger (per-subscriber eligibility is re-checked when
    // answers or children are produced).
    if tuple.pub_time() < pending.min_insert_time() {
        return TriggerOutcome::NotTriggered;
    }
    // Window validity (Section 5): a rewritten query whose window has been
    // exceeded is deleted; input queries (start = None) never expire.
    let window = *pending.query.window();
    if window.use_windows() {
        if let Some(start) = pending.window_start {
            if !window.within(start, tuple.pub_time()) {
                return TriggerOutcome::Expired;
            }
        }
        // Exact sliding-window span: the paper's pairwise `|start - now|`
        // test misses combinations that pick up an *older* stored/ALTT tuple
        // late, so additionally require the whole contribution span
        // `[window_min, window_max] ∪ {now}` to fit one window. (Tumbling
        // buckets are transitive, so the pairwise test is already exact for
        // them.) The entry itself stays stored: other tuples may still fit.
        if matches!(window, rjoin_query::WindowSpec::Sliding { .. }) {
            if let (Some(min), Some(max)) = (pending.window_min, pending.window_max) {
                let p = tuple.pub_time();
                if !window.within(min.min(p), max.max(p)) {
                    return TriggerOutcome::NotTriggered;
                }
            }
        }
    }
    // Duplicate elimination for DISTINCT queries (never shared, so the
    // projection is always the single subscriber's).
    if let Some(dedup) = stored.dedup.as_mut() {
        if !dedup.admit(&stored.pending.query, tuple, schema) {
            return TriggerOutcome::NotTriggered;
        }
    }
    let result = if ctx.config.compiled_predicates {
        // `program`, `pending` and `fingerprint` are disjoint fields of
        // `stored`, so the compiled program can be cached on the entry while
        // its query is borrowed.
        match ensure_program(
            &mut stored.program,
            &stored.pending.query,
            stored.fingerprint,
            schema,
            programs,
            counters,
        ) {
            Some(program) => {
                counters.compiled_rewrites += 1;
                program.execute(tuple)
            }
            None => return TriggerOutcome::NotTriggered,
        }
    } else {
        counters.interpreted_rewrites += 1;
        rewrite(&stored.pending.query, tuple, schema)
    };
    let pending = &stored.pending;
    match result {
        Ok(RewriteResult::Complete(row)) => {
            let mut actions = Vec::with_capacity(pending.subscriber_count());
            if tuple.pub_time() >= pending.insert_time {
                actions.push(Action::DeliverAnswer {
                    query: pending.id,
                    owner: pending.owner,
                    row,
                });
            }
            for sub in &pending.extra_subscribers {
                if tuple.pub_time() < sub.insert_time {
                    continue;
                }
                if let Some(row) = subscriber_row(&sub.select, tuple, schema) {
                    actions.push(Action::DeliverAnswer { query: sub.id, owner: sub.owner, row });
                }
            }
            if actions.is_empty() {
                TriggerOutcome::NotTriggered
            } else {
                TriggerOutcome::Triggered(actions)
            }
        }
        Ok(RewriteResult::Partial(q1)) => {
            let new_start = start_rule(pending.window_start, tuple.pub_time());
            match shared_child(pending, q1, new_start, tuple, schema) {
                Some(child) => {
                    TriggerOutcome::Triggered(vec![Action::Reindex { pending: Box::new(child) }])
                }
                None => TriggerOutcome::NotTriggered,
            }
        }
        Ok(RewriteResult::Mismatch) | Err(_) => TriggerOutcome::NotTriggered,
    }
}

/// Books the savings a shared trigger realized into the node's counters:
/// each extra subscriber riding on a re-indexed child is one `Eval` message
/// that was not sent, and each answer delivered to a non-primary subscriber
/// is a fanned-out answer.
fn record_sharing(sharing: &mut SharingCounters, primary: QueryId, actions: &[Action]) {
    for action in actions {
        match action {
            Action::Reindex { pending } => {
                sharing.evals_saved += pending.extra_subscribers.len() as u64;
            }
            Action::DeliverAnswer { query, .. } if *query != primary => {
                sharing.fanout_answers += 1;
            }
            Action::DeliverAnswer { .. } => {}
        }
    }
}

/// Procedure 2: a node receives a new tuple (at the attribute or value
/// level).
///
/// Returns the actions to perform. Window-expired rewritten queries are
/// removed from the node's store as a side effect.
pub fn handle_new_tuple(
    state: &mut NodeState,
    ctx: &ProcCtx<'_>,
    tuple: &Arc<Tuple>,
    key: &HashedKey,
    level: IndexLevel,
) -> Vec<Action> {
    let ring = key.ring();
    // The node observes the arrival for RIC purposes regardless of level;
    // the retention horizon keeps the per-key history bounded without being
    // observable by any rate read (sequential reads never use an older
    // clock, sharded remote readers lag by at most the δ lookahead).
    let horizon = ctx.config.ric_window + 2 * ctx.config.network_delay.max(1);
    state.ric().record_arrival_bounded(ring, ctx.now, ctx.at, horizon);

    let mut actions = Vec::new();
    let mut removed = 0usize;
    let mut removed_rewritten = 0usize;
    let mut sharing: Vec<(QueryId, usize, usize)> = Vec::new();
    // Children produced by hypercube-tagged entries stay in this cell: they
    // are collected during the walk and stored afterwards, so a child never
    // triggers on the tuple that created it (newest-tuple-drives: each tuple
    // subset forms exactly one partial, at its latest member's arrival).
    let mut cell_children: Vec<StoredQuery> = Vec::new();
    // The schema is resolved once per delivery, not once per stored query;
    // published tuples are catalog-validated, so a missing schema cannot
    // occur for tuples that entered through the engine.
    let schema = ctx.catalog.schema(tuple.relation());
    // Disjoint field borrows: the walk resolves candidate handles against
    // the query slab while expiry removals unlink their bucket slot, unfile
    // their index entry and unregister their registry slot, all in one pass.
    let stored_map = &mut state.stored_queries;
    let queries = &mut state.queries;
    let subjoins = &mut state.subjoins;
    let state_counters = &mut state.state_counters;
    let tindex = &mut state.trigger_index;
    let programs = Arc::clone(&state.programs);
    let counters = &mut state.compile;
    if let (Some(schema), Some(bucket)) = (schema, stored_map.get_mut(&ring)) {
        let walk = Instant::now();
        // The contact set of this arrival: with the trigger index on, the
        // residual list plus the tuple's value slice of every pinned column
        // (entries skipped here would have rewritten to `Mismatch` — see
        // the `trigger_index` module docs for the soundness argument); with
        // it off, a snapshot of the whole bucket (the linear-walk oracle).
        let mut candidates = tindex.take_scratch();
        if tindex.enabled() {
            tindex.collect_candidates(ring, tuple.as_ref(), schema, bucket.len(), &mut candidates);
        } else {
            tindex.note_linear_walk();
            candidates.extend_from_slice(bucket);
        }
        for handle in candidates.drain(..) {
            let Some(stored) = queries.get_mut(handle) else { continue };
            let primary = stored.pending.id;
            let hypercube_parent =
                stored.pending.hypercube.is_some().then(|| (stored.key.clone(), stored.level));
            let outcome = try_trigger(
                stored,
                tuple.as_ref(),
                schema,
                ctx,
                &programs,
                counters,
                |start, pub_time| {
                    // Procedure 2 rules (Section 5): a rewritten query created
                    // by triggering an *input* query records the tuple's
                    // publication time as its window start; a rewritten query
                    // created from an already-rewritten query *inherits* the
                    // start unchanged.
                    match start {
                        None => Some(pub_time),
                        Some(existing) => Some(existing),
                    }
                },
            );
            match outcome {
                TriggerOutcome::Expired => {
                    let expired = queries.remove(handle).expect("resolved above");
                    unlink_from_bucket(bucket, queries, handle, expired.bucket_pos);
                    tindex.remove(ring, handle, &expired);
                    removed += 1;
                    if !expired.pending.is_input() {
                        removed_rewritten += 1;
                    }
                    if let Some(fp) = expired.fingerprint {
                        let window = (
                            expired.pending.window_start,
                            expired.pending.window_min,
                            expired.pending.window_max,
                        );
                        subjoins.unregister(ring, fp, window, handle);
                    }
                    state_counters.contact_expirations += 1;
                }
                TriggerOutcome::Triggered(produced) => {
                    let mut produced = match hypercube_parent {
                        Some((key, level)) => {
                            // A hypercube partial is cell-local: its child is
                            // stored under the same cell key instead of being
                            // re-indexed over the network, and duplicate
                            // elimination for DISTINCT collapses owner-side
                            // (the meeting property makes completions unique,
                            // but equal *rows* can complete in other cells).
                            let mut kept = Vec::with_capacity(produced.len());
                            for action in produced {
                                match action {
                                    Action::Reindex { pending } => {
                                        let mut child =
                                            StoredQuery::new(*pending, key.clone(), level);
                                        child.dedup = None;
                                        cell_children.push(child);
                                    }
                                    deliver => kept.push(deliver),
                                }
                            }
                            kept
                        }
                        None => produced,
                    };
                    sharing.push((primary, actions.len(), produced.len()));
                    actions.append(&mut produced);
                }
                TriggerOutcome::NotTriggered => {}
            }
        }
        tindex.put_scratch(candidates);
        counters.eval_nanos += walk.elapsed().as_nanos() as u64;
        if bucket.is_empty() {
            stored_map.remove(&ring);
        }
    }
    if removed > 0 {
        state.debit_removed_queries(removed, removed_rewritten);
    }
    for (primary, start, len) in sharing {
        record_sharing(&mut state.sharing, primary, &actions[start..start + len]);
    }
    for child in cell_children {
        state.store_query(child);
    }

    match level {
        IndexLevel::Value => {
            // Value-level copies are stored so future rewritten queries can
            // find them (Procedure 2, last step). The payload is shared, not
            // copied.
            state.store_tuple(ring, Arc::clone(tuple));
        }
        IndexLevel::Attribute => {
            // Attribute-level copies are normally discarded; with the ALTT
            // extension (Section 4) they are retained until Δ ticks past
            // their publication so delayed input queries cannot miss them.
            // Publication-anchored deadlines keep the table O(recent):
            // anchoring at the handler clock instead would retain a burst-
            // published backlog forever (the clock already sits at the last
            // publication when the backlog drains).
            if let Some(delta) = ctx.config.altt_delta {
                state.altt_insert(ring, Arc::clone(tuple), tuple.pub_time().saturating_add(delta));
            }
        }
    }
    actions
}

/// Common logic for the arrival of a query (input or rewritten) at the node
/// it has been indexed at: the query is matched against every tuple the node
/// already holds under the same key — value-level stored tuples
/// (Procedure 3) and, when the ALTT extension is enabled, retained
/// attribute-level tuples (Section 4, rule 2) — and is then stored locally
/// so future tuples can trigger it.
fn handle_query_arrival(
    state: &mut NodeState,
    ctx: &ProcCtx<'_>,
    pending: PendingQuery,
    key: &HashedKey,
    level: IndexLevel,
) -> Vec<Action> {
    let ring = key.ring();
    let mut stored = StoredQuery::new(pending, key.clone(), level);
    let mut actions = Vec::new();

    if ctx.config.altt_delta.is_some() {
        // Reclaim expired front entries before the walk (under wheel expiry
        // they were already popped at their deadline and this is a no-op).
        state.altt_prune(ring, ctx.at);
    }

    // Both walks run in place over slab handles by shared reference — the
    // arrival allocates nothing per stored or retained tuple. The explicit
    // `expires_at >= at` filter stays even under wheel expiry (physical
    // removal timing must never decide an answer), and it is checked against
    // the delivery tick, never the clock: the clock is driver-dependent (a
    // burst publish parks it at the last publication; a sharded handler's
    // local clock can run ahead of `at`), while the delivery tick is part of
    // the deterministic message schedule.
    let programs = Arc::clone(&state.programs);
    let indexed = state.trigger_index.enabled();
    let mut span = std::mem::take(&mut state.span_scratch);
    span.clear();
    let counters = &mut state.compile;
    let sharing = &mut state.sharing;
    let tuples = &state.tuples;
    let stored_here = state.stored_tuples.get(&ring).map(Vec::as_slice).unwrap_or_default();
    let bucket_len = stored_here.len();
    let min_insert = stored.pending.min_insert_time();
    if indexed {
        // Bound the stored-tuple walk to the publication span the arriving
        // query could possibly combine with (see [`admissible_pub_span`]):
        // binary-search the publication-sorted sidecar, then restore bucket
        // (arrival) order so answers and partials come out exactly as the
        // linear oracle's would.
        let (lo, hi) = admissible_pub_span(&stored.pending);
        if lo <= hi {
            let times = state.stored_tuple_times.get(&ring).map(Vec::as_slice).unwrap_or_default();
            let from = times.partition_point(|&(t, _)| t < lo);
            let to = times.partition_point(|&(t, _)| t <= hi);
            span.extend(times[from..to].iter().map(|&(_, pos)| pos));
            span.sort_unstable();
        }
    }
    let probed = span.len();
    let retained = state
        .altt
        .get(&ring)
        .filter(|_| ctx.config.altt_delta.is_some())
        .into_iter()
        .flatten()
        .filter_map(|h| state.altt_entries.get(*h))
        .filter(|e| e.expires_at >= ctx.at && e.tuple.pub_time() >= min_insert)
        .map(|e| &e.tuple);
    let mut bounded_tuples;
    let mut all_tuples;
    let value_tuples: &mut dyn Iterator<Item = &Arc<Tuple>> = if indexed {
        bounded_tuples = span.iter().filter_map(|&pos| tuples.get(stored_here[pos as usize]));
        &mut bounded_tuples
    } else {
        all_tuples = stored_here.iter().filter_map(|h| tuples.get(*h));
        &mut all_tuples
    };
    let walk = Instant::now();
    for tuple in value_tuples.chain(retained) {
        // Stored tuples under one ring key can come from different
        // relations, so the schema lookup cannot be hoisted out of the
        // loop the way the tuple-delivery walk hoists it.
        let Some(schema) = ctx.catalog.schema(tuple.relation()) else {
            continue;
        };
        let outcome = try_trigger(
            &mut stored,
            tuple.as_ref(),
            schema,
            ctx,
            &programs,
            counters,
            |start, pub_time| {
                // Procedure 3 rule (Section 5): the produced rewritten query's
                // start is the *maximum* of the stored query's start and the
                // stored tuple's publication time. For input queries (start =
                // None) this reduces to the Procedure 2 rule (start = pubT(τ)).
                match start {
                    None => Some(pub_time),
                    Some(existing) => Some(existing.max(pub_time)),
                }
            },
        );
        if let TriggerOutcome::Triggered(mut produced) = outcome {
            record_sharing(sharing, stored.pending.id, &produced);
            actions.append(&mut produced);
        }
        // A stored tuple outside the window simply does not trigger; the
        // query itself stays, waiting for newer tuples.
    }
    counters.eval_nanos += walk.elapsed().as_nanos() as u64;
    if indexed {
        state.trigger_index.note_span_probe(bucket_len, probed);
    } else {
        state.trigger_index.note_linear_walk();
    }
    span.clear();
    state.span_scratch = span;

    // Stored for future tuples — merged into a structurally identical entry
    // instead when the shared sub-join path is enabled and a twin exists.
    // The arrival matching above always runs for the newcomer alone: the
    // twin already consumed the stored tuples for its own subscribers.
    state.store_query_shared(stored, ctx.config.share_subjoins);
    actions
}

/// The closed publication-time span `[lo, hi]` outside of which no stored
/// tuple can pass the pre-dedup gates of [`try_trigger`] for `pending`: the
/// `min_insert_time` floor, the window-validity test against `window_start`,
/// and the sliding contribution-span test against
/// `[window_min, window_max]`. Every gate ahead of the dedup admission is a
/// pure predicate over the tuple's publication time — nothing before
/// `dedup.admit` mutates the entry — so skipping out-of-span tuples is
/// unobservable, which is what lets an arriving query binary-search the
/// publication-sorted sidecar instead of scanning its whole bucket. The
/// span is a *superset* of what the gates admit (they still run for every
/// walked tuple); `lo > hi` means no stored tuple can trigger.
fn admissible_pub_span(pending: &PendingQuery) -> (Timestamp, Timestamp) {
    let mut lo = pending.min_insert_time();
    let mut hi = Timestamp::MAX;
    match *pending.query.window() {
        rjoin_query::WindowSpec::None => {}
        rjoin_query::WindowSpec::Sliding { duration, .. } => {
            // `within(a, b)` is `|a - b| + 1 <= duration`, so a tuple can
            // only pass with a publication time within `duration - 1` of
            // the window start, and within `duration - 1` of both ends of
            // the partial combination's contribution span.
            let reach = duration.saturating_sub(1);
            if let Some(start) = pending.window_start {
                lo = lo.max(start.saturating_sub(reach));
                hi = hi.min(start.saturating_add(reach));
            }
            if let (Some(min), Some(max)) = (pending.window_min, pending.window_max) {
                lo = lo.max(max.saturating_sub(reach));
                hi = hi.min(min.saturating_add(reach));
            }
        }
        rjoin_query::WindowSpec::Tumbling { duration, .. } => {
            if let Some(start) = pending.window_start {
                if duration == 0 {
                    // `within` rejects everything for a zero-length bucket.
                    return (1, 0);
                }
                let base = start - start % duration;
                lo = lo.max(base);
                hi = hi.min(base.saturating_add(duration - 1));
            }
        }
    }
    (lo, hi)
}

/// Registers a hypercube cell replica of an input query: the replica is
/// cascaded over the tuples already stored in this cell (copies that were
/// routed here before the registration arrived) and every partial the
/// cascade builds is stored locally.
///
/// The cascade replays the newest-tuple-drives discipline: walking the
/// stored tuples in arrival order, each tuple triggers exactly the partials
/// that existed *before* it was processed (`upto` snapshot), so every tuple
/// subset forms exactly one partial — at its latest member's position — and
/// a full combination completes exactly once. Combined with the meeting
/// property of the grid (a joining combination co-occurs in exactly one
/// cell) this yields bag-exact answers without any cross-cell coordination;
/// `DISTINCT` collapses owner-side, so per-entry dedup filters are disabled.
fn handle_hypercube_arrival(
    state: &mut NodeState,
    ctx: &ProcCtx<'_>,
    pending: PendingQuery,
    key: &HashedKey,
    level: IndexLevel,
) -> Vec<Action> {
    let ring = key.ring();
    let mut actions = Vec::new();
    // Snapshot the cell's stored tuples in arrival order. Payloads are
    // shared `Arc` handles; the clone frees `state` for the partial store
    // below without copying tuple data.
    let tuples: Vec<Arc<Tuple>> = state
        .stored_tuples
        .get(&ring)
        .map(Vec::as_slice)
        .unwrap_or_default()
        .iter()
        .filter_map(|h| state.tuples.get(*h).cloned())
        .collect();
    let mut seed = StoredQuery::new(pending, key.clone(), level);
    seed.dedup = None;
    let mut partials: Vec<StoredQuery> = vec![seed];
    let mut alive: Vec<bool> = vec![true];
    let programs = Arc::clone(&state.programs);
    let counters = &mut state.compile;
    let walk = Instant::now();
    for tuple in &tuples {
        let Some(schema) = ctx.catalog.schema(tuple.relation()) else {
            continue;
        };
        let upto = partials.len();
        for idx in 0..upto {
            if !alive[idx] {
                continue;
            }
            let outcome = try_trigger(
                &mut partials[idx],
                tuple.as_ref(),
                schema,
                ctx,
                &programs,
                counters,
                |start, pub_time| {
                    // Procedure 3 rule, as in `handle_query_arrival`: the
                    // arrival is matching tuples that were stored first.
                    match start {
                        None => Some(pub_time),
                        Some(existing) => Some(existing.max(pub_time)),
                    }
                },
            );
            match outcome {
                TriggerOutcome::Expired => alive[idx] = false,
                TriggerOutcome::Triggered(produced) => {
                    for action in produced {
                        match action {
                            Action::Reindex { pending } => {
                                let mut child = StoredQuery::new(*pending, key.clone(), level);
                                child.dedup = None;
                                partials.push(child);
                                alive.push(true);
                            }
                            deliver => actions.push(deliver),
                        }
                    }
                }
                TriggerOutcome::NotTriggered => {}
            }
        }
    }
    counters.eval_nanos += walk.elapsed().as_nanos() as u64;
    for (stored, alive) in partials.into_iter().zip(alive) {
        if alive {
            state.store_query(stored);
        }
    }
    actions
}

/// Handles the arrival of an *input* query at the node it was indexed at.
///
/// The base algorithm simply stores it; with the ALTT extension the node
/// also searches the attribute-level tuple table for tuples that arrived
/// before the query did (Section 4, rule 2). Hypercube cell replicas take
/// the cascade path instead: their partials live and die inside the cell.
pub fn handle_index_query(
    state: &mut NodeState,
    ctx: &ProcCtx<'_>,
    pending: PendingQuery,
    key: &HashedKey,
    level: IndexLevel,
) -> Vec<Action> {
    if pending.hypercube.is_some() {
        return handle_hypercube_arrival(state, ctx, pending, key, level);
    }
    handle_query_arrival(state, ctx, pending, key, level)
}

/// Procedure 3: a node receives a rewritten query with an `Eval` message.
///
/// The query is stored locally and matched against every value-level tuple
/// already stored under the same key (tuples that arrived after the original
/// query was submitted but before this rewritten query reached the node), as
/// well as against ALTT-retained attribute-level tuples when that extension
/// is enabled.
pub fn handle_eval(
    state: &mut NodeState,
    ctx: &ProcCtx<'_>,
    pending: PendingQuery,
    key: &HashedKey,
    level: IndexLevel,
) -> Vec<Action> {
    // The query-side heat signal of hot-key splitting: `Eval` arrivals are
    // tracked per key exactly like tuple arrivals, bounded by the same
    // retention horizon.
    let horizon = ctx.config.ric_window + 2 * ctx.config.network_delay.max(1);
    state.eval_ric.record_arrival_bounded(key.ring(), ctx.now, ctx.at, horizon);
    debug_assert!(
        pending.hypercube.is_none(),
        "hypercube partials are cell-local and never travel as Eval messages"
    );
    handle_query_arrival(state, ctx, pending, key, level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::QueryId;
    use rjoin_dht::Id;
    use rjoin_query::{parse_query, IndexKey};
    use rjoin_relation::Schema;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for rel in ["R", "S", "J", "M"] {
            c.register(Schema::new(rel, ["A", "B", "C"]).unwrap()).unwrap();
        }
        c
    }

    fn config() -> EngineConfig {
        EngineConfig::default()
    }

    fn ctx<'a>(catalog: &'a Catalog, config: &'a EngineConfig, now: SimTime) -> ProcCtx<'a> {
        ProcCtx { catalog, config, now, at: now }
    }

    fn pending(sql: &str, insert_time: u64) -> PendingQuery {
        PendingQuery::input(
            QueryId { owner: Id(42), seq: 1 },
            Id(42),
            insert_time,
            parse_query(sql).unwrap(),
        )
    }

    fn tuple(rel: &str, values: [i64; 3], pub_time: u64) -> Arc<Tuple> {
        Arc::new(Tuple::new(rel, values.iter().map(|v| Value::from(*v)).collect(), pub_time))
    }

    #[test]
    fn input_query_triggered_by_matching_tuple() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let p = pending("SELECT R.B, S.B FROM R, S WHERE R.A = S.A", 0);
        let key = IndexKey::attribute("R", "A");
        let actions = handle_index_query(
            &mut state,
            &ctx(&catalog, &config, 0),
            p,
            &key.hashed(),
            key.level(),
        );
        assert!(actions.is_empty());
        assert_eq!(state.stored_query_count(), 1);

        // A matching tuple arrives at the attribute level.
        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 5),
            &tuple("R", [7, 9, 0], 5),
            &key.hashed(),
            IndexLevel::Attribute,
        );
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Reindex { pending } => {
                assert_eq!(pending.query.join_count(), 0);
                assert_eq!(pending.query.relations(), &["S".to_string()]);
            }
            other => panic!("unexpected action {other:?}"),
        }
        // Attribute-level tuples are not stored (ALTT disabled by default).
        assert_eq!(state.stored_tuple_count(), 0);
        // The input query remains stored for future tuples.
        assert_eq!(state.stored_query_count(), 1);
    }

    #[test]
    fn old_tuples_do_not_trigger() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let p = pending("SELECT R.B, S.B FROM R, S WHERE R.A = S.A", 10);
        let key = IndexKey::attribute("R", "A");
        handle_index_query(&mut state, &ctx(&catalog, &config, 10), p, &key.hashed(), key.level());
        // Tuple published before the query was submitted: no trigger.
        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 12),
            &tuple("R", [7, 9, 0], 5),
            &key.hashed(),
            IndexLevel::Attribute,
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn value_level_tuple_is_stored_and_triggers_later_eval() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::value("M", "C", Value::from(2));

        // Tuple of M arrives first and is stored at the value level.
        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 3),
            &tuple("M", [9, 1, 2], 3),
            &key.hashed(),
            IndexLevel::Value,
        );
        assert!(actions.is_empty());
        assert_eq!(state.stored_tuple_count(), 1);

        // A rewritten query "SELECT 6, M.A FROM M WHERE M.C = 2" arrives.
        let input = pending("SELECT S.B, M.A FROM S, M WHERE S.B = M.C", 0);
        let rewritten =
            input.child(parse_query("SELECT 6, M.A FROM M WHERE M.C = 2").unwrap(), Some(1));
        let actions = handle_eval(
            &mut state,
            &ctx(&catalog, &config, 5),
            rewritten,
            &key.hashed(),
            key.level(),
        );
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::DeliverAnswer { row, owner, .. } => {
                assert_eq!(row, &vec![Value::from(6), Value::from(9)]);
                assert_eq!(*owner, Id(42));
            }
            other => panic!("unexpected action {other:?}"),
        }
        // The rewritten query is stored for future tuples as well.
        assert_eq!(state.stored_rewritten_count(), 1);
    }

    #[test]
    fn window_expiry_deletes_rewritten_query() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::value("S", "A", Value::from(7));
        // A rewritten query with a 10-tuple window that started at time 5.
        let input =
            pending("SELECT R.B, S.B FROM R, S WHERE R.A = S.A WINDOW SLIDING 10 TUPLES", 0);
        let rewritten = input.child(
            parse_query("SELECT 9, S.B FROM S WHERE S.A = 7 WINDOW SLIDING 10 TUPLES").unwrap(),
            Some(5),
        );
        handle_eval(&mut state, &ctx(&catalog, &config, 6), rewritten, &key.hashed(), key.level());
        assert_eq!(state.stored_rewritten_count(), 1);

        // A tuple far outside the window arrives: the query is deleted, not
        // triggered.
        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 100),
            &tuple("S", [7, 3, 0], 100),
            &key.hashed(),
            IndexLevel::Value,
        );
        assert!(actions.is_empty());
        assert_eq!(state.stored_rewritten_count(), 0);
    }

    #[test]
    fn window_valid_tuple_triggers_and_inherits_start() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::value("S", "A", Value::from(7));
        let input = pending(
            "SELECT R.B, S.B, J.A FROM R, S, J WHERE R.A = S.A AND S.B = J.B WINDOW SLIDING 10 TUPLES",
            0,
        );
        let rewritten = input.child(
            parse_query(
                "SELECT 9, S.B, J.A FROM S, J WHERE S.A = 7 AND S.B = J.B WINDOW SLIDING 10 TUPLES",
            )
            .unwrap(),
            Some(5),
        );
        handle_eval(&mut state, &ctx(&catalog, &config, 6), rewritten, &key.hashed(), key.level());

        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 12),
            &tuple("S", [7, 3, 0], 12),
            &key.hashed(),
            IndexLevel::Value,
        );
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Reindex { pending } => {
                // Procedure 2 (incoming tuple): start is inherited unchanged.
                assert_eq!(pending.window_start, Some(5));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn eval_start_uses_max_of_start_and_tuple_time() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::value("S", "A", Value::from(7));
        // A stored tuple published at time 20.
        handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 20),
            &tuple("S", [7, 3, 0], 20),
            &key.hashed(),
            IndexLevel::Value,
        );
        let input = pending(
            "SELECT R.B, S.B, J.A FROM R, S, J WHERE R.A = S.A AND S.B = J.B WINDOW SLIDING 50 TUPLES",
            0,
        );
        let rewritten = input.child(
            parse_query(
                "SELECT 9, S.B, J.A FROM S, J WHERE S.A = 7 AND S.B = J.B WINDOW SLIDING 50 TUPLES",
            )
            .unwrap(),
            Some(5),
        );
        let actions = handle_eval(
            &mut state,
            &ctx(&catalog, &config, 25),
            rewritten,
            &key.hashed(),
            key.level(),
        );
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Reindex { pending } => {
                // Procedure 3: start = max(start(q1), pubT(τ)) = max(5, 20).
                assert_eq!(pending.window_start, Some(20));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    /// Regression for the exact sliding-window span: a combination that
    /// picks up an *older* stored tuple late passes the paper's pairwise
    /// `|start - now|` test (start follows the max under Procedure 3) but
    /// its true span already exceeds the window — it must not trigger.
    #[test]
    fn sliding_window_span_counts_oldest_contribution() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let skey = IndexKey::value("S", "A", Value::from(7));
        // A stored S tuple published at 5.
        handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 5),
            &tuple("S", [7, 3, 0], 5),
            &skey.hashed(),
            IndexLevel::Value,
        );
        // A rewritten query created by an R tuple published at 10 (window 8).
        let input = pending(
            "SELECT R.B, J.A FROM R, S, J WHERE R.A = S.A AND S.B = J.B WINDOW SLIDING 8 TUPLES",
            0,
        );
        let mut rewritten = input.child(
            parse_query(
                "SELECT 9, J.A FROM S, J WHERE S.A = 7 AND S.B = J.B WINDOW SLIDING 8 TUPLES",
            )
            .unwrap(),
            Some(10),
        );
        rewritten.note_contribution(10);
        // Procedure 3 picks up the stored tuple: start = max(10, 5) = 10,
        // but the true span is now [5, 10].
        let actions = handle_eval(
            &mut state,
            &ctx(&catalog, &config, 11),
            rewritten,
            &skey.hashed(),
            skey.level(),
        );
        assert_eq!(actions.len(), 1);
        let child = match &actions[0] {
            Action::Reindex { pending } => pending.clone(),
            other => panic!("unexpected action {other:?}"),
        };
        assert_eq!(child.window_start, Some(10), "paper rule: start = max(start, pubT)");
        assert_eq!((child.window_min, child.window_max), (Some(5), Some(10)));

        // A J tuple published at 13: pairwise |10 - 13| + 1 = 4 <= 8 passes,
        // but the combination's span [5, 13] = 9 exceeds the window.
        let jkey = IndexKey::value("J", "B", Value::from(3));
        let mut state2 = NodeState::new(Id(2));
        handle_eval(&mut state2, &ctx(&catalog, &config, 12), *child, &jkey.hashed(), jkey.level());
        let actions = handle_new_tuple(
            &mut state2,
            &ctx(&catalog, &config, 13),
            &tuple("J", [1, 3, 0], 13),
            &jkey.hashed(),
            IndexLevel::Value,
        );
        assert!(actions.is_empty(), "a combination spanning more than the window must not fire");
        // The entry is *not* expired: a J tuple inside the span still fires.
        assert_eq!(state2.stored_rewritten_count(), 1);
        let actions = handle_new_tuple(
            &mut state2,
            &ctx(&catalog, &config, 14),
            &tuple("J", [2, 3, 0], 12),
            &jkey.hashed(),
            IndexLevel::Value,
        );
        assert_eq!(actions.len(), 1, "a within-span tuple must still complete the join");
    }

    #[test]
    fn distinct_query_not_triggered_twice_by_same_projection() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::value("S", "B", Value::from(2));
        let input = pending("SELECT DISTINCT R.A, S.A FROM R, S WHERE R.B = S.B", 0);
        let rewritten = input
            .child(parse_query("SELECT DISTINCT 1, S.A FROM S WHERE S.B = 2").unwrap(), Some(1));
        handle_eval(&mut state, &ctx(&catalog, &config, 2), rewritten, &key.hashed(), key.level());

        // Two tuples with the same projection on S's referenced attributes
        // (A and B): only the first triggers.
        let first = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 3),
            &tuple("S", [5, 2, 100], 3),
            &key.hashed(),
            IndexLevel::Value,
        );
        let second = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 4),
            &tuple("S", [5, 2, 999], 4),
            &key.hashed(),
            IndexLevel::Value,
        );
        assert_eq!(first.len(), 1);
        assert!(second.is_empty());
    }

    #[test]
    fn altt_lets_delayed_query_catch_earlier_tuple() {
        let catalog = catalog();
        let config = EngineConfig::default().with_altt(100);
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::attribute("R", "A");

        // The tuple arrives *before* the query (message delay scenario of
        // Example 1); with the ALTT it is retained.
        handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 5),
            &tuple("R", [7, 9, 0], 5),
            &key.hashed(),
            IndexLevel::Attribute,
        );
        let p = pending("SELECT R.B, S.B FROM R, S WHERE R.A = S.A", 2);
        let actions = handle_index_query(
            &mut state,
            &ctx(&catalog, &config, 9),
            p,
            &key.hashed(),
            key.level(),
        );
        assert_eq!(actions.len(), 1, "the retained tuple must trigger the delayed query");
    }

    #[test]
    fn without_altt_delayed_query_misses_earlier_tuple() {
        let catalog = catalog();
        let config = config(); // ALTT disabled
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::attribute("R", "A");
        handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 5),
            &tuple("R", [7, 9, 0], 5),
            &key.hashed(),
            IndexLevel::Attribute,
        );
        let p = pending("SELECT R.B, S.B FROM R, S WHERE R.A = S.A", 2);
        let actions = handle_index_query(
            &mut state,
            &ctx(&catalog, &config, 9),
            p,
            &key.hashed(),
            key.level(),
        );
        assert!(actions.is_empty(), "base algorithm discards attribute-level tuples");
    }

    fn shared_config() -> EngineConfig {
        EngineConfig::default().with_subjoin_sharing(true)
    }

    fn pending_from(owner: u64, sql: &str, insert_time: u64) -> PendingQuery {
        PendingQuery::input(
            QueryId { owner: Id(owner), seq: owner },
            Id(owner),
            insert_time,
            parse_query(sql).unwrap(),
        )
    }

    /// Two overlapping input queries merge at the node; a triggering tuple
    /// rewrites the shared entry once and the single produced `Eval` carries
    /// both subscribers with their SELECT continuations resolved in
    /// lockstep.
    #[test]
    fn shared_entry_reindexes_once_with_subscribers() {
        let catalog = catalog();
        let config = shared_config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::attribute("R", "A");
        let a = pending_from(10, "SELECT R.B, S.B FROM R, S WHERE R.A = S.A", 0);
        let b = pending_from(20, "SELECT S.C, R.C FROM R, S WHERE R.A = S.A", 0);
        handle_index_query(&mut state, &ctx(&catalog, &config, 0), a, &key.hashed(), key.level());
        handle_index_query(&mut state, &ctx(&catalog, &config, 1), b, &key.hashed(), key.level());
        assert_eq!(state.stored_query_count(), 1, "the twin must merge, not stack");

        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 5),
            &tuple("R", [7, 9, 2], 5),
            &key.hashed(),
            IndexLevel::Attribute,
        );
        // One rewrite, one re-index — not one per input query.
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Reindex { pending } => {
                assert_eq!(pending.subscriber_count(), 2);
                assert_eq!(pending.id, QueryId { owner: Id(10), seq: 10 });
                // Primary SELECT: R.B resolved to 9.
                assert_eq!(
                    pending.query.select()[0],
                    rjoin_query::SelectItem::Const(Value::from(9))
                );
                // Subscriber continuation: S.C untouched, R.C resolved to 2.
                let sub = &pending.extra_subscribers[0];
                assert_eq!(sub.id, QueryId { owner: Id(20), seq: 20 });
                assert_eq!(sub.select[1], rjoin_query::SelectItem::Const(Value::from(2)));
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(state.sharing().evals_saved, 1);
    }

    /// A completing tuple fans one answer out to every subscriber, each with
    /// its own resolved SELECT row.
    #[test]
    fn shared_completion_fans_out_per_subscriber() {
        let catalog = catalog();
        let config = shared_config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::attribute("S", "A");
        let a = pending_from(10, "SELECT S.B FROM S, R WHERE S.A = R.A", 0);
        let b = pending_from(20, "SELECT S.C, S.B FROM S, R WHERE S.A = R.A", 0);
        handle_index_query(&mut state, &ctx(&catalog, &config, 0), a, &key.hashed(), key.level());
        handle_index_query(&mut state, &ctx(&catalog, &config, 0), b, &key.hashed(), key.level());
        assert_eq!(state.stored_query_count(), 1);

        // S arrives: the shared entry rewrites into "... FROM R WHERE R.A=7"
        // carrying both subscribers.
        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 2),
            &tuple("S", [7, 8, 9], 2),
            &key.hashed(),
            IndexLevel::Attribute,
        );
        assert_eq!(actions.len(), 1);
        let child = match &actions[0] {
            Action::Reindex { pending } => pending.clone(),
            other => panic!("unexpected action {other:?}"),
        };

        // The child arrives at the value-level node where a matching R tuple
        // is already stored: both subscribers get their own answer.
        let vkey = IndexKey::value("R", "A", Value::from(7));
        let mut state2 = NodeState::new(Id(2));
        handle_new_tuple(
            &mut state2,
            &ctx(&catalog, &config, 3),
            &tuple("R", [7, 1, 1], 3),
            &vkey.hashed(),
            IndexLevel::Value,
        );
        let answers = handle_eval(
            &mut state2,
            &ctx(&catalog, &config, 4),
            *child,
            &vkey.hashed(),
            vkey.level(),
        );
        assert_eq!(answers.len(), 2);
        match (&answers[0], &answers[1]) {
            (
                Action::DeliverAnswer { query: q1, row: r1, owner: o1 },
                Action::DeliverAnswer { query: q2, row: r2, owner: o2 },
            ) => {
                assert_eq!(
                    (*q1, o1, r1.clone()),
                    (QueryId { owner: Id(10), seq: 10 }, &Id(10), vec![Value::from(8)])
                );
                assert_eq!(
                    (*q2, o2, r2.clone()),
                    (
                        QueryId { owner: Id(20), seq: 20 },
                        &Id(20),
                        vec![Value::from(9), Value::from(8)]
                    )
                );
            }
            other => panic!("unexpected actions {other:?}"),
        }
        assert_eq!(state2.sharing().fanout_answers, 1);
    }

    /// A tuple published before the primary subscriber's insertion time but
    /// after an extra subscriber's still triggers the shared entry: the
    /// eligible subscriber is promoted to primary on the child.
    #[test]
    fn ineligible_primary_is_not_served_but_extras_are() {
        let catalog = catalog();
        let config = shared_config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::attribute("R", "A");
        // Early subscriber (insert_time 0) merged into a late primary
        // (insert_time 10): merge order makes the late one primary.
        let late = pending_from(10, "SELECT R.B, S.B FROM R, S WHERE R.A = S.A", 10);
        let early = pending_from(20, "SELECT R.C, S.C FROM R, S WHERE R.A = S.A", 0);
        handle_index_query(
            &mut state,
            &ctx(&catalog, &config, 10),
            late,
            &key.hashed(),
            key.level(),
        );
        handle_index_query(
            &mut state,
            &ctx(&catalog, &config, 10),
            early,
            &key.hashed(),
            key.level(),
        );
        assert_eq!(state.stored_query_count(), 1);

        // Published at time 5: before the primary's submission, after the
        // extra subscriber's.
        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 11),
            &tuple("R", [7, 9, 2], 5),
            &key.hashed(),
            IndexLevel::Attribute,
        );
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Reindex { pending } => {
                assert_eq!(
                    pending.id,
                    QueryId { owner: Id(20), seq: 20 },
                    "eligible extra promoted"
                );
                assert_eq!(pending.subscriber_count(), 1, "the ineligible primary must not ride");
                assert_eq!(pending.insert_time, 0);
                // The promoted SELECT (R.C, S.C) is the representative one.
                assert_eq!(
                    pending.query.select()[0],
                    rjoin_query::SelectItem::Const(Value::from(2))
                );
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    /// Regression for the stale-slot-after-expiry path: when a contact
    /// expiry removes one of several registered entries from a bucket, the
    /// dying entry's registry slot must be unregistered (and only its own),
    /// so a later twin of the survivor still merges and a twin of the
    /// expired entry re-registers cleanly instead of resolving a dangling
    /// reference. With positional slots this required revalidating every
    /// slot on use; with slab handles the single `unregister` in the expiry
    /// path is sufficient — which is exactly what this test pins.
    #[test]
    fn contact_expiry_unregisters_only_its_own_slot() {
        let catalog = catalog();
        let config = shared_config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::value("J", "B", Value::from(3));
        let rewritten = |owner: u64, start: u64| {
            pending_from(
                owner,
                "SELECT R.B, J.A FROM R, S, J WHERE R.A = S.A AND S.B = J.B WINDOW SLIDING 8 TUPLES",
                0,
            )
            .child(
                parse_query(
                    "SELECT 9, J.A FROM S, J WHERE S.A = 7 AND S.B = J.B WINDOW SLIDING 8 TUPLES",
                )
                .unwrap(),
                Some(start),
            )
        };
        // Two structurally identical entries with different window starts:
        // they register two distinct slots under the same ring key.
        handle_eval(
            &mut state,
            &ctx(&catalog, &config, 11),
            rewritten(10, 10),
            &key.hashed(),
            key.level(),
        );
        handle_eval(
            &mut state,
            &ctx(&catalog, &config, 51),
            rewritten(20, 50),
            &key.hashed(),
            key.level(),
        );
        assert_eq!(state.stored_query_count(), 2);
        assert_eq!(state.subjoins().len(), 2);

        // A tuple at 55 contact-expires the start-10 entry (|10-55|+1 > 8)
        // while the start-50 entry stays within its window.
        handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 55),
            &tuple("J", [1, 3, 0], 55),
            &key.hashed(),
            IndexLevel::Value,
        );
        assert_eq!(state.stored_query_count(), 1, "the start-10 entry expired by contact");
        assert_eq!(state.subjoins().len(), 1, "the expired entry's slot was unregistered");

        // A twin of the survivor still merges into it...
        handle_eval(
            &mut state,
            &ctx(&catalog, &config, 56),
            rewritten(30, 50),
            &key.hashed(),
            key.level(),
        );
        assert_eq!(state.stored_query_count(), 1, "the survivor's slot must still resolve");
        assert_eq!(state.sharing().merged_queries, 1);
        // ...and a twin of the expired entry re-registers a fresh slot.
        handle_eval(
            &mut state,
            &ctx(&catalog, &config, 56),
            rewritten(40, 10),
            &key.hashed(),
            key.level(),
        );
        assert_eq!(state.stored_query_count(), 2);
        assert_eq!(state.subjoins().len(), 2);
    }

    /// DISTINCT queries never share: their dedup projection depends on the
    /// SELECT list that sharing abstracts away.
    #[test]
    fn distinct_queries_are_not_shared() {
        let catalog = catalog();
        let config = shared_config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::attribute("R", "A");
        let a = pending_from(10, "SELECT DISTINCT R.B, S.B FROM R, S WHERE R.A = S.A", 0);
        let b = pending_from(20, "SELECT DISTINCT R.C, S.C FROM R, S WHERE R.A = S.A", 0);
        handle_index_query(&mut state, &ctx(&catalog, &config, 0), a, &key.hashed(), key.level());
        handle_index_query(&mut state, &ctx(&catalog, &config, 0), b, &key.hashed(), key.level());
        assert_eq!(state.stored_query_count(), 2);
        assert_eq!(state.sharing().merged_queries, 0);
    }

    #[test]
    fn windowless_queries_never_expire() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::attribute("R", "A");
        let p = pending("SELECT R.B, S.B FROM R, S WHERE R.A = S.A", 0);
        handle_index_query(&mut state, &ctx(&catalog, &config, 0), p, &key.hashed(), key.level());
        // Even a very late tuple triggers the (windowless) input query.
        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 1_000_000),
            &tuple("R", [1, 2, 3], 1_000_000),
            &key.hashed(),
            IndexLevel::Attribute,
        );
        assert_eq!(actions.len(), 1);
        assert_eq!(state.stored_query_count(), 1);
    }

    /// Builds a deliberately malformed query — `SELECT` referencing a
    /// relation absent from `FROM` — by mutating the serialized form of a
    /// valid query. `JoinQuery::new` and the parser both reject this shape,
    /// but serde round-trips (like `from_parts_unchecked` inside the query
    /// crate) are unvalidated, which is exactly the hole the rewrite paths
    /// must stay robust against.
    fn orphan_select_query() -> rjoin_query::JoinQuery {
        use serde::json::JsonValue;
        use serde::{Deserialize, Serialize};
        let mut v = parse_query("SELECT R.B FROM R WHERE R.A = 7").unwrap().serialize_json();
        let JsonValue::Object(fields) = &mut v else { panic!("queries serialize to objects") };
        let (_, select) = fields.iter_mut().find(|(k, _)| k == "select").unwrap();
        let JsonValue::Array(items) = select else { panic!("SELECT is an array") };
        let JsonValue::Object(variant) = &mut items[0] else {
            panic!("select items are externally tagged")
        };
        let JsonValue::Object(attr) = &mut variant[0].1 else {
            panic!("attribute refs are objects")
        };
        let (_, relation) = attr.iter_mut().find(|(k, _)| k == "relation").unwrap();
        *relation = JsonValue::Str("M".into());
        rjoin_query::JoinQuery::deserialize_json(&v).unwrap()
    }

    /// Regression for the `Partial`-with-empty-`FROM` wart: a trigger that
    /// resolves the whole `WHERE` clause but leaves a `SELECT` attribute
    /// unresolvable must not re-index (and thus never store) an empty-`FROM`
    /// child — on the interpreted *and* the compiled path.
    #[test]
    fn orphan_select_never_stores_an_empty_from_child() {
        for compiled in [true, false] {
            let catalog = catalog();
            let config = EngineConfig::default().with_compiled_predicates(compiled);
            let mut state = NodeState::new(Id(1));
            let key = IndexKey::attribute("R", "A");
            let p = PendingQuery::input(
                QueryId { owner: Id(42), seq: 9 },
                Id(42),
                0,
                orphan_select_query(),
            );
            handle_index_query(
                &mut state,
                &ctx(&catalog, &config, 0),
                p,
                &key.hashed(),
                key.level(),
            );
            let actions = handle_new_tuple(
                &mut state,
                &ctx(&catalog, &config, 5),
                &tuple("R", [7, 9, 0], 5),
                &key.hashed(),
                IndexLevel::Attribute,
            );
            assert!(
                actions.is_empty(),
                "an unresolvable SELECT must not trigger (compiled={compiled}): {actions:?}"
            );
            assert_eq!(state.stored_query_count(), 1);
            for bucket in state.stored_queries.values() {
                for handle in bucket {
                    let stored = state.queries.get(*handle).unwrap();
                    assert!(
                        !stored.pending.query.relations().is_empty(),
                        "no empty-FROM query may ever be stored (compiled={compiled})"
                    );
                }
            }
        }
    }

    /// The program cache is keyed by sub-join fingerprint and confirmed
    /// structurally: two stored queries that differ only in `SELECT` share
    /// one compiled program (one compile, one cache hit, two compiled
    /// rewrites — and no interpreted ones).
    #[test]
    fn fingerprint_twins_share_one_compiled_program() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::attribute("R", "A");
        let a = pending_from(10, "SELECT R.B, S.B FROM R, S WHERE R.A = S.A", 0);
        let b = pending_from(20, "SELECT R.C, S.C FROM R, S WHERE R.A = S.A", 0);
        handle_index_query(&mut state, &ctx(&catalog, &config, 0), a, &key.hashed(), key.level());
        handle_index_query(&mut state, &ctx(&catalog, &config, 0), b, &key.hashed(), key.level());
        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 5),
            &tuple("R", [7, 9, 0], 5),
            &key.hashed(),
            IndexLevel::Attribute,
        );
        assert_eq!(actions.len(), 2);
        let counters = state.compile_counters();
        assert_eq!(counters.programs_compiled, 1, "{counters:?}");
        assert_eq!(counters.cache_hits, 1, "{counters:?}");
        assert_eq!(counters.compiled_rewrites, 2, "{counters:?}");
        assert_eq!(counters.interpreted_rewrites, 0, "{counters:?}");
    }

    /// With compiled predicates disabled every trigger takes the interpreter
    /// path and no program is ever compiled.
    #[test]
    fn interpreter_config_never_compiles() {
        let catalog = catalog();
        let config = EngineConfig::default().with_compiled_predicates(false);
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::attribute("R", "A");
        let p = pending("SELECT R.B, S.B FROM R, S WHERE R.A = S.A", 0);
        handle_index_query(&mut state, &ctx(&catalog, &config, 0), p, &key.hashed(), key.level());
        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 5),
            &tuple("R", [7, 9, 0], 5),
            &key.hashed(),
            IndexLevel::Attribute,
        );
        assert_eq!(actions.len(), 1);
        let counters = state.compile_counters();
        assert_eq!(counters.programs_compiled, 0, "{counters:?}");
        assert_eq!(counters.compiled_rewrites, 0, "{counters:?}");
        assert!(counters.interpreted_rewrites >= 1, "{counters:?}");
    }
}
