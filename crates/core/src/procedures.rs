//! The per-node message handlers: Procedures 1–3 of the paper.
//!
//! These functions operate on a single node's [`NodeState`] and return the
//! list of [`Action`]s the node wants to perform (answers to deliver,
//! rewritten queries to re-index). Sending those actions through the network
//! — including the RIC-aware placement decision — is the engine's job, which
//! keeps these handlers purely local, exactly like the pseudo-code in the
//! paper.

use crate::config::EngineConfig;
use crate::messages::{PendingQuery, QueryId};
use crate::node_state::{NodeState, StoredQuery};
use rjoin_dht::HashedKey;
use rjoin_net::SimTime;
use rjoin_query::{rewrite, IndexLevel, RewriteResult};
use rjoin_relation::{Catalog, Timestamp, Tuple, Value};
use std::sync::Arc;

/// An outgoing action produced by a local handler.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Deliver an answer row to the node that submitted the query
    /// (`sendDirect` in the paper).
    DeliverAnswer {
        /// The original query.
        query: QueryId,
        /// The owner node to deliver to.
        owner: rjoin_dht::Id,
        /// The answer row.
        row: Vec<Value>,
    },
    /// Re-index a rewritten query at another node (the `Eval` message of
    /// Procedures 2 and 3). The engine chooses the target key.
    Reindex {
        /// The rewritten query and its metadata.
        pending: PendingQuery,
    },
}

/// Read-only context shared by the handlers.
pub struct ProcCtx<'a> {
    /// The schema catalog.
    pub catalog: &'a Catalog,
    /// Engine configuration.
    pub config: &'a EngineConfig,
    /// Current simulation time.
    pub now: SimTime,
}

/// Outcome of attempting to trigger one stored query with one tuple.
enum TriggerOutcome {
    /// The stored query expired (window violation) and must be deleted.
    Expired,
    /// The tuple did not trigger the query (mismatch, dedup or time filter).
    NotTriggered,
    /// The tuple triggered the query, producing an action.
    Triggered(Action),
}

/// Applies one tuple to one stored query following the trigger rules:
/// publication-time filter, window validity (Section 5), duplicate
/// elimination (Section 4) and the rewriting step itself.
///
/// `start_rule` computes the `start` parameter of the produced rewritten
/// query from the stored query's own `start` and the tuple's publication
/// time (the rule differs between Procedure 2 and Procedure 3).
fn try_trigger(
    stored: &mut StoredQuery,
    tuple: &Tuple,
    ctx: &ProcCtx<'_>,
    start_rule: impl Fn(Option<Timestamp>, Timestamp) -> Option<Timestamp>,
) -> TriggerOutcome {
    let pending = &stored.pending;
    // Only tuples published at or after the query's submission count.
    if tuple.pub_time() < pending.insert_time {
        return TriggerOutcome::NotTriggered;
    }
    // Window validity (Section 5): a rewritten query whose window has been
    // exceeded is deleted; input queries (start = None) never expire.
    let window = *pending.query.window();
    if window.use_windows() {
        if let Some(start) = pending.window_start {
            if !window.within(start, tuple.pub_time()) {
                return TriggerOutcome::Expired;
            }
        }
    }
    let Ok(schema) = ctx.catalog.require_schema(tuple.relation()) else {
        return TriggerOutcome::NotTriggered;
    };
    // Duplicate elimination for DISTINCT queries.
    if let Some(dedup) = stored.dedup.as_mut() {
        if !dedup.admit(&pending.query, tuple, schema) {
            return TriggerOutcome::NotTriggered;
        }
    }
    match rewrite(&pending.query, tuple, schema) {
        Ok(RewriteResult::Complete(row)) => TriggerOutcome::Triggered(Action::DeliverAnswer {
            query: pending.id,
            owner: pending.owner,
            row,
        }),
        Ok(RewriteResult::Partial(q1)) => {
            let new_start = start_rule(pending.window_start, tuple.pub_time());
            let child = pending.child(q1, new_start);
            TriggerOutcome::Triggered(Action::Reindex { pending: child })
        }
        Ok(RewriteResult::Mismatch) | Err(_) => TriggerOutcome::NotTriggered,
    }
}

/// Procedure 2: a node receives a new tuple (at the attribute or value
/// level).
///
/// Returns the actions to perform. Window-expired rewritten queries are
/// removed from the node's store as a side effect.
pub fn handle_new_tuple(
    state: &mut NodeState,
    ctx: &ProcCtx<'_>,
    tuple: &Arc<Tuple>,
    key: &HashedKey,
    level: IndexLevel,
) -> Vec<Action> {
    let ring = key.ring();
    // The node observes the arrival for RIC purposes regardless of level.
    state.ric.record_arrival(ring, ctx.now);

    let mut actions = Vec::new();
    let mut removed = 0usize;
    let mut removed_rewritten = 0usize;
    if let Some(stored_list) = state.stored_queries.get_mut(&ring) {
        let mut idx = 0;
        while idx < stored_list.len() {
            let outcome =
                try_trigger(&mut stored_list[idx], tuple.as_ref(), ctx, |start, pub_time| {
                    // Procedure 2 rules (Section 5): a rewritten query created
                    // by triggering an *input* query records the tuple's
                    // publication time as its window start; a rewritten query
                    // created from an already-rewritten query *inherits* the
                    // start unchanged.
                    match start {
                        None => Some(pub_time),
                        Some(existing) => Some(existing),
                    }
                });
            match outcome {
                TriggerOutcome::Expired => {
                    let expired = stored_list.swap_remove(idx);
                    removed += 1;
                    if !expired.pending.is_input() {
                        removed_rewritten += 1;
                    }
                    // do not advance idx: swap_remove moved a new element here
                }
                TriggerOutcome::Triggered(action) => {
                    actions.push(action);
                    idx += 1;
                }
                TriggerOutcome::NotTriggered => {
                    idx += 1;
                }
            }
        }
        if stored_list.is_empty() {
            state.stored_queries.remove(&ring);
        }
    }
    if removed > 0 {
        state.debit_removed_queries(removed, removed_rewritten);
    }

    match level {
        IndexLevel::Value => {
            // Value-level copies are stored so future rewritten queries can
            // find them (Procedure 2, last step). The payload is shared, not
            // copied.
            state.store_tuple(ring, Arc::clone(tuple));
        }
        IndexLevel::Attribute => {
            // Attribute-level copies are normally discarded; with the ALTT
            // extension (Section 4) they are retained for Δ ticks so delayed
            // input queries cannot miss them.
            if let Some(delta) = ctx.config.altt_delta {
                state.altt_insert(ring, Arc::clone(tuple), ctx.now + delta);
            }
        }
    }
    actions
}

/// Common logic for the arrival of a query (input or rewritten) at the node
/// it has been indexed at: the query is matched against every tuple the node
/// already holds under the same key — value-level stored tuples
/// (Procedure 3) and, when the ALTT extension is enabled, retained
/// attribute-level tuples (Section 4, rule 2) — and is then stored locally
/// so future tuples can trigger it.
fn handle_query_arrival(
    state: &mut NodeState,
    ctx: &ProcCtx<'_>,
    pending: PendingQuery,
    key: &HashedKey,
    level: IndexLevel,
) -> Vec<Action> {
    let ring = key.ring();
    let mut stored = StoredQuery::new(pending, key.clone(), level);
    let mut actions = Vec::new();

    // Cloning the bucket clones `Arc` handles, not tuple payloads.
    let mut already_here: Vec<Arc<Tuple>> =
        state.stored_tuples.get(&ring).cloned().unwrap_or_default();
    if ctx.config.altt_delta.is_some() {
        already_here.extend(state.altt_matching(ring, ctx.now, stored.pending.insert_time));
    }

    for tuple in &already_here {
        let outcome = try_trigger(&mut stored, tuple.as_ref(), ctx, |start, pub_time| {
            // Procedure 3 rule (Section 5): the produced rewritten query's
            // start is the *maximum* of the stored query's start and the
            // stored tuple's publication time. For input queries (start =
            // None) this reduces to the Procedure 2 rule (start = pubT(τ)).
            match start {
                None => Some(pub_time),
                Some(existing) => Some(existing.max(pub_time)),
            }
        });
        if let TriggerOutcome::Triggered(action) = outcome {
            actions.push(action);
        }
        // A stored tuple outside the window simply does not trigger; the
        // query itself stays, waiting for newer tuples.
    }

    state.store_query(stored);
    actions
}

/// Handles the arrival of an *input* query at the node it was indexed at.
///
/// The base algorithm simply stores it; with the ALTT extension the node
/// also searches the attribute-level tuple table for tuples that arrived
/// before the query did (Section 4, rule 2).
pub fn handle_index_query(
    state: &mut NodeState,
    ctx: &ProcCtx<'_>,
    pending: PendingQuery,
    key: &HashedKey,
    level: IndexLevel,
) -> Vec<Action> {
    handle_query_arrival(state, ctx, pending, key, level)
}

/// Procedure 3: a node receives a rewritten query with an `Eval` message.
///
/// The query is stored locally and matched against every value-level tuple
/// already stored under the same key (tuples that arrived after the original
/// query was submitted but before this rewritten query reached the node), as
/// well as against ALTT-retained attribute-level tuples when that extension
/// is enabled.
pub fn handle_eval(
    state: &mut NodeState,
    ctx: &ProcCtx<'_>,
    pending: PendingQuery,
    key: &HashedKey,
    level: IndexLevel,
) -> Vec<Action> {
    handle_query_arrival(state, ctx, pending, key, level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::QueryId;
    use rjoin_dht::Id;
    use rjoin_query::{parse_query, IndexKey};
    use rjoin_relation::Schema;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for rel in ["R", "S", "J", "M"] {
            c.register(Schema::new(rel, ["A", "B", "C"]).unwrap()).unwrap();
        }
        c
    }

    fn config() -> EngineConfig {
        EngineConfig::default()
    }

    fn ctx<'a>(catalog: &'a Catalog, config: &'a EngineConfig, now: SimTime) -> ProcCtx<'a> {
        ProcCtx { catalog, config, now }
    }

    fn pending(sql: &str, insert_time: u64) -> PendingQuery {
        PendingQuery::input(
            QueryId { owner: Id(42), seq: 1 },
            Id(42),
            insert_time,
            parse_query(sql).unwrap(),
        )
    }

    fn tuple(rel: &str, values: [i64; 3], pub_time: u64) -> Arc<Tuple> {
        Arc::new(Tuple::new(rel, values.iter().map(|v| Value::from(*v)).collect(), pub_time))
    }

    #[test]
    fn input_query_triggered_by_matching_tuple() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let p = pending("SELECT R.B, S.B FROM R, S WHERE R.A = S.A", 0);
        let key = IndexKey::attribute("R", "A");
        let actions = handle_index_query(&mut state, &ctx(&catalog, &config, 0), p, &key.hashed(), key.level());
        assert!(actions.is_empty());
        assert_eq!(state.stored_query_count(), 1);

        // A matching tuple arrives at the attribute level.
        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 5),
            &tuple("R", [7, 9, 0], 5),
            &key.hashed(),
            IndexLevel::Attribute,
        );
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Reindex { pending } => {
                assert_eq!(pending.query.join_count(), 0);
                assert_eq!(pending.query.relations(), &["S".to_string()]);
            }
            other => panic!("unexpected action {other:?}"),
        }
        // Attribute-level tuples are not stored (ALTT disabled by default).
        assert_eq!(state.stored_tuple_count(), 0);
        // The input query remains stored for future tuples.
        assert_eq!(state.stored_query_count(), 1);
    }

    #[test]
    fn old_tuples_do_not_trigger() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let p = pending("SELECT R.B, S.B FROM R, S WHERE R.A = S.A", 10);
        let key = IndexKey::attribute("R", "A");
        handle_index_query(&mut state, &ctx(&catalog, &config, 10), p, &key.hashed(), key.level());
        // Tuple published before the query was submitted: no trigger.
        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 12),
            &tuple("R", [7, 9, 0], 5),
            &key.hashed(),
            IndexLevel::Attribute,
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn value_level_tuple_is_stored_and_triggers_later_eval() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::value("M", "C", Value::from(2));

        // Tuple of M arrives first and is stored at the value level.
        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 3),
            &tuple("M", [9, 1, 2], 3),
            &key.hashed(),
            IndexLevel::Value,
        );
        assert!(actions.is_empty());
        assert_eq!(state.stored_tuple_count(), 1);

        // A rewritten query "SELECT 6, M.A FROM M WHERE M.C = 2" arrives.
        let input = pending("SELECT S.B, M.A FROM S, M WHERE S.B = M.C", 0);
        let rewritten = input
            .child(parse_query("SELECT 6, M.A FROM M WHERE M.C = 2").unwrap(), Some(1));
        let actions = handle_eval(&mut state, &ctx(&catalog, &config, 5), rewritten, &key.hashed(), key.level());
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::DeliverAnswer { row, owner, .. } => {
                assert_eq!(row, &vec![Value::from(6), Value::from(9)]);
                assert_eq!(*owner, Id(42));
            }
            other => panic!("unexpected action {other:?}"),
        }
        // The rewritten query is stored for future tuples as well.
        assert_eq!(state.stored_rewritten_count(), 1);
    }

    #[test]
    fn window_expiry_deletes_rewritten_query() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::value("S", "A", Value::from(7));
        // A rewritten query with a 10-tuple window that started at time 5.
        let input = pending(
            "SELECT R.B, S.B FROM R, S WHERE R.A = S.A WINDOW SLIDING 10 TUPLES",
            0,
        );
        let rewritten = input.child(
            parse_query("SELECT 9, S.B FROM S WHERE S.A = 7 WINDOW SLIDING 10 TUPLES").unwrap(),
            Some(5),
        );
        handle_eval(&mut state, &ctx(&catalog, &config, 6), rewritten, &key.hashed(), key.level());
        assert_eq!(state.stored_rewritten_count(), 1);

        // A tuple far outside the window arrives: the query is deleted, not
        // triggered.
        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 100),
            &tuple("S", [7, 3, 0], 100),
            &key.hashed(),
            IndexLevel::Value,
        );
        assert!(actions.is_empty());
        assert_eq!(state.stored_rewritten_count(), 0);
    }

    #[test]
    fn window_valid_tuple_triggers_and_inherits_start() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::value("S", "A", Value::from(7));
        let input = pending(
            "SELECT R.B, S.B, J.A FROM R, S, J WHERE R.A = S.A AND S.B = J.B WINDOW SLIDING 10 TUPLES",
            0,
        );
        let rewritten = input.child(
            parse_query(
                "SELECT 9, S.B, J.A FROM S, J WHERE S.A = 7 AND S.B = J.B WINDOW SLIDING 10 TUPLES",
            )
            .unwrap(),
            Some(5),
        );
        handle_eval(&mut state, &ctx(&catalog, &config, 6), rewritten, &key.hashed(), key.level());

        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 12),
            &tuple("S", [7, 3, 0], 12),
            &key.hashed(),
            IndexLevel::Value,
        );
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Reindex { pending } => {
                // Procedure 2 (incoming tuple): start is inherited unchanged.
                assert_eq!(pending.window_start, Some(5));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn eval_start_uses_max_of_start_and_tuple_time() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::value("S", "A", Value::from(7));
        // A stored tuple published at time 20.
        handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 20),
            &tuple("S", [7, 3, 0], 20),
            &key.hashed(),
            IndexLevel::Value,
        );
        let input = pending(
            "SELECT R.B, S.B, J.A FROM R, S, J WHERE R.A = S.A AND S.B = J.B WINDOW SLIDING 50 TUPLES",
            0,
        );
        let rewritten = input.child(
            parse_query(
                "SELECT 9, S.B, J.A FROM S, J WHERE S.A = 7 AND S.B = J.B WINDOW SLIDING 50 TUPLES",
            )
            .unwrap(),
            Some(5),
        );
        let actions =
            handle_eval(&mut state, &ctx(&catalog, &config, 25), rewritten, &key.hashed(), key.level());
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Reindex { pending } => {
                // Procedure 3: start = max(start(q1), pubT(τ)) = max(5, 20).
                assert_eq!(pending.window_start, Some(20));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn distinct_query_not_triggered_twice_by_same_projection() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::value("S", "B", Value::from(2));
        let input = pending("SELECT DISTINCT R.A, S.A FROM R, S WHERE R.B = S.B", 0);
        let rewritten = input.child(
            parse_query("SELECT DISTINCT 1, S.A FROM S WHERE S.B = 2").unwrap(),
            Some(1),
        );
        handle_eval(&mut state, &ctx(&catalog, &config, 2), rewritten, &key.hashed(), key.level());

        // Two tuples with the same projection on S's referenced attributes
        // (A and B): only the first triggers.
        let first = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 3),
            &tuple("S", [5, 2, 100], 3),
            &key.hashed(),
            IndexLevel::Value,
        );
        let second = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 4),
            &tuple("S", [5, 2, 999], 4),
            &key.hashed(),
            IndexLevel::Value,
        );
        assert_eq!(first.len(), 1);
        assert!(second.is_empty());
    }

    #[test]
    fn altt_lets_delayed_query_catch_earlier_tuple() {
        let catalog = catalog();
        let config = EngineConfig::default().with_altt(100);
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::attribute("R", "A");

        // The tuple arrives *before* the query (message delay scenario of
        // Example 1); with the ALTT it is retained.
        handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 5),
            &tuple("R", [7, 9, 0], 5),
            &key.hashed(),
            IndexLevel::Attribute,
        );
        let p = pending("SELECT R.B, S.B FROM R, S WHERE R.A = S.A", 2);
        let actions = handle_index_query(&mut state, &ctx(&catalog, &config, 9), p, &key.hashed(), key.level());
        assert_eq!(actions.len(), 1, "the retained tuple must trigger the delayed query");
    }

    #[test]
    fn without_altt_delayed_query_misses_earlier_tuple() {
        let catalog = catalog();
        let config = config(); // ALTT disabled
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::attribute("R", "A");
        handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 5),
            &tuple("R", [7, 9, 0], 5),
            &key.hashed(),
            IndexLevel::Attribute,
        );
        let p = pending("SELECT R.B, S.B FROM R, S WHERE R.A = S.A", 2);
        let actions = handle_index_query(&mut state, &ctx(&catalog, &config, 9), p, &key.hashed(), key.level());
        assert!(actions.is_empty(), "base algorithm discards attribute-level tuples");
    }

    #[test]
    fn windowless_queries_never_expire() {
        let catalog = catalog();
        let config = config();
        let mut state = NodeState::new(Id(1));
        let key = IndexKey::attribute("R", "A");
        let p = pending("SELECT R.B, S.B FROM R, S WHERE R.A = S.A", 0);
        handle_index_query(&mut state, &ctx(&catalog, &config, 0), p, &key.hashed(), key.level());
        // Even a very late tuple triggers the (windowless) input query.
        let actions = handle_new_tuple(
            &mut state,
            &ctx(&catalog, &config, 1_000_000),
            &tuple("R", [1, 2, 3], 1_000_000),
            &key.hashed(),
            IndexLevel::Attribute,
        );
        assert_eq!(actions.len(), 1);
        assert_eq!(state.stored_query_count(), 1);
    }
}
