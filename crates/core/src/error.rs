//! Error types of the RJoin engine.

use rjoin_dht::{DhtError, Id};
use rjoin_query::QueryError;
use rjoin_relation::RelationError;
use std::fmt;

/// Errors raised by the RJoin engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The referenced node is not part of the network.
    UnknownNode {
        /// The missing node.
        id: Id,
    },
    /// The query failed validation against the catalog or has no candidate
    /// index key.
    Query(QueryError),
    /// A query has no key it could be indexed under (no conjuncts at all and
    /// more than one relation).
    NoCandidateKey,
    /// The published tuple failed catalog validation.
    Relation(RelationError),
    /// The underlying DHT reported an error (e.g. lookup failure after
    /// massive un-repaired churn).
    Dht(DhtError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownNode { id } => write!(f, "node {id} is not part of the network"),
            EngineError::Query(e) => write!(f, "invalid query: {e}"),
            EngineError::NoCandidateKey => {
                write!(f, "the query has no relation-attribute pair to index it under")
            }
            EngineError::Relation(e) => write!(f, "invalid tuple: {e}"),
            EngineError::Dht(e) => write!(f, "DHT error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Query(e) => Some(e),
            EngineError::Relation(e) => Some(e),
            EngineError::Dht(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}

impl From<RelationError> for EngineError {
    fn from(e: RelationError) -> Self {
        EngineError::Relation(e)
    }
}

impl From<DhtError> for EngineError {
    fn from(e: DhtError) -> Self {
        EngineError::Dht(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        use std::error::Error;
        let e: EngineError = QueryError::EmptyFrom.into();
        assert!(e.source().is_some());
        let e: EngineError = DhtError::EmptyRing.into();
        assert!(e.to_string().contains("DHT"));
        let e = EngineError::NoCandidateKey;
        assert!(e.source().is_none());
    }
}
