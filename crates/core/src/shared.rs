//! The per-node **sub-join registry**: shared evaluation of structurally
//! identical (sub-)queries across input queries.
//!
//! # Why
//!
//! RJoin's incremental rewriting (Procedures 1–3) treats every stored query
//! independently. When several input queries share the same join structure —
//! the common case in multi-tenant workloads, and the redundancy targeted by
//! Dossinger & Michel's *Optimizing Multiple Multi-Way Stream Joins* — a
//! node ends up storing one copy of the same rewritten sub-query per input
//! query, and every triggering tuple rewrites and re-indexes each copy
//! separately: `k` overlapping queries cost `k×` storage, `k×` rewriting
//! work and `k×` `Eval` messages at every step of the join chain.
//!
//! # How
//!
//! The registry keys every stored query by its canonical sub-join
//! fingerprint ([`rjoin_query::fingerprint`]): `FROM` + normalized `WHERE` +
//! window, with the `SELECT` list abstracted away. When a query arrives at a
//! node that already stores a structurally identical query under the same
//! index key and with the same window `start`, the newcomer is **merged**:
//! its identity, owner, insertion time and `SELECT` list join the entry's
//! subscriber list ([`crate::Subscriber`]) instead of becoming a second
//! stored copy. From then on the shared entry is rewritten and re-indexed
//! **once** per triggering tuple — subscribers' `SELECT` lists are resolved
//! in lockstep — and when the `WHERE` clause completes, one answer per
//! subscriber fans back out to each owner.
//!
//! # Correctness
//!
//! Sharing preserves the unshared semantics exactly:
//!
//! * **Insertion-time filter** — the shared entry triggers on the *earliest*
//!   subscriber insertion time, but a subscriber only rides on a produced
//!   child (or receives an answer) if the triggering tuple was published at
//!   or after its own insertion time.
//! * **Windows** — merging additionally requires identical window state
//!   (`start` *and* the exact contribution span `window_min`/`window_max`),
//!   so expiry decisions and sliding-window span gates are identical for
//!   every subscriber.
//! * **`DISTINCT`** — set-semantics queries are never merged: their
//!   duplicate-elimination filter projects on the attributes referenced by
//!   the `SELECT` list, which sharing abstracts away.
//! * **Fingerprint collisions** — a fingerprint hit is only a candidate; the
//!   registry confirms structural equality (`FROM`, `WHERE`, window, flags)
//!   before merging, so a 64-bit collision can cost a missed merge but never
//!   a wrong answer.
//!
//! The registry maps `(key ring id, fingerprint, window state)` to the
//! entry's **slab handle** ([`crate::slab::Handle`]). Handles are stable for
//! the entry's whole lifetime, so nothing needs revalidation or rebuilding
//! when a bucket compacts: expiry removals unregister their own slot (and
//! only if it still points at the dying entry — a structurally distinct
//! twin that took the slot over on a fingerprint collision is left alone),
//! and every other slot stays exactly right.

use crate::slab::Handle;
use rjoin_query::Fingerprint;
use rjoin_relation::Timestamp;
use std::collections::HashMap;

/// The window state that must match exactly for two entries to share a
/// slot: `(window_start, window_min, window_max)` — `start` drives expiry,
/// the min/max pair drives the sliding-window span gate.
pub(crate) type WindowState = (Option<Timestamp>, Option<Timestamp>, Option<Timestamp>);

/// The lookup key of one shared slot: the index key's ring identifier, the
/// sub-join fingerprint and the full window state.
pub(crate) type SlotKey = (u64, u64, WindowState);

/// Index from sub-join identity to the stored entry's slab handle.
#[derive(Debug, Clone, Default)]
pub struct SubJoinRegistry {
    slots: HashMap<SlotKey, Handle>,
}

impl SubJoinRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered shared slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no slot is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The candidate entry handle for a sub-join, if one is registered.
    /// Callers must confirm structural equality of the entry before merging
    /// (a fingerprint hit is only a candidate).
    pub(crate) fn candidate(
        &self,
        ring: u64,
        fp: Fingerprint,
        window: WindowState,
    ) -> Option<Handle> {
        self.slots.get(&(ring, fp.0, window)).copied()
    }

    /// Registers (or re-points) the slot for a sub-join.
    pub(crate) fn register(
        &mut self,
        ring: u64,
        fp: Fingerprint,
        window: WindowState,
        handle: Handle,
    ) {
        self.slots.insert((ring, fp.0, window), handle);
    }

    /// Removes the slot for a sub-join, but only if it still points at
    /// `handle`: on a fingerprint collision two structurally distinct
    /// entries contend for one slot, and the survivor's registration must
    /// not be torn down by the loser's removal.
    pub(crate) fn unregister(
        &mut self,
        ring: u64,
        fp: Fingerprint,
        window: WindowState,
        handle: Handle,
    ) {
        if let Some(registered) = self.slots.get(&(ring, fp.0, window)) {
            if *registered == handle {
                self.slots.remove(&(ring, fp.0, window));
            }
        }
    }
}
