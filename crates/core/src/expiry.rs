//! A hierarchical timer wheel: O(active) deadline expiry.
//!
//! # Why a wheel
//!
//! Window and ALTT expiry used to be *contact-driven*: an entry was only
//! discovered to be dead when some later arrival walked the bucket it sat
//! in. That makes expiry cost proportional to **stored** state — every walk
//! visits every entry, live or dead, and entries in buckets that never see
//! another arrival are never reclaimed at all. Over a long horizon almost
//! all state is dead state, and the engine pays for it on every trigger.
//!
//! The wheel inverts the direction: every deadline-bearing entry is indexed
//! by *when it dies*, and advancing the clock pops exactly the entries
//! whose deadline passed — O(pops + slots crossed), independent of how much
//! live or dead state exists elsewhere. Combined with the generational slab
//! ([`crate::slab`]), cancellation is free: a popped token whose slab
//! generation no longer matches is simply skipped, so removals never search
//! the wheel.
//!
//! # Shape
//!
//! [`LEVELS`] levels of [`SLOTS`] slots each; level `l` buckets deadlines
//! by `time >> (6·l)`, so level 0 is tick-exact and each higher level is
//! 64× coarser. An entry is placed at the finest level whose horizon
//! covers its delay; when the clock crosses its coarse bucket the entry
//! cascades down to a finer level until it pops at its exact tick.
//! Deadlines beyond the wheel horizon (64⁴ ticks) sit in an overflow list
//! scanned only while non-empty — unreachable for real window/ALTT spans.
//!
//! # Determinism
//!
//! [`TimerWheel::advance`] returns due tokens sorted by `(deadline,
//! token)`. Pop order is therefore a pure function of wheel content and
//! target time — identical across the sequential and sharded drivers and
//! any shard/worker count.

const SLOT_BITS: u32 = 6;
/// Slots per level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels; the wheel horizon is `SLOTS^LEVELS` ticks.
pub const LEVELS: usize = 4;

/// A hierarchical timer wheel over opaque, orderable tokens.
#[derive(Debug, Clone)]
pub struct TimerWheel<T> {
    now: u64,
    /// `LEVELS × SLOTS` slots, flattened.
    slots: Vec<Vec<(u64, T)>>,
    /// Deadlines beyond the wheel horizon (scanned lazily on advance).
    overflow: Vec<(u64, T)>,
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel {
            now: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            len: 0,
        }
    }
}

impl<T: Copy + Ord> TimerWheel<T> {
    /// Creates an empty wheel at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The wheel's current time (the target of the last [`advance`]).
    ///
    /// [`advance`]: TimerWheel::advance
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of scheduled entries (including stale ones not yet popped).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are scheduled.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `token` to pop at the first advance whose target is
    /// `>= deadline`. Deadlines at or before the current time pop on the
    /// very next advance.
    pub fn insert(&mut self, deadline: u64, token: T) {
        self.len += 1;
        // Past-due deadlines are parked one tick out; `advance` compares
        // against the *stored* deadline, so they still pop immediately.
        let delta = deadline.saturating_sub(self.now).max(1);
        let effective = self.now + delta;
        let Some(level) = (0..LEVELS).find(|l| (delta >> (SLOT_BITS * (*l as u32 + 1))) == 0)
        else {
            self.overflow.push((deadline, token));
            return;
        };
        let bucket = effective >> (SLOT_BITS * level as u32);
        let slot = level * SLOTS + (bucket as usize & (SLOTS - 1));
        self.slots[slot].push((deadline, token));
    }

    /// Advances the wheel to `target`, appending every token whose deadline
    /// is `<= target` to `due` in `(deadline, token)` order. Targets at or
    /// before the current time are no-ops.
    pub fn advance(&mut self, target: u64, due: &mut Vec<T>) {
        if target <= self.now {
            return;
        }
        let mut crossed: Vec<(u64, T)> = Vec::new();
        for level in 0..LEVELS {
            let shift = SLOT_BITS * level as u32;
            let start = self.now >> shift;
            let end = target >> shift;
            if start == end {
                // Coarser levels share the bucket too — nothing crossed.
                break;
            }
            if end - start >= SLOTS as u64 {
                // Full revolution: every slot at this level is crossed.
                for slot in 0..SLOTS {
                    crossed.append(&mut self.slots[level * SLOTS + slot]);
                }
            } else {
                for bucket in (start + 1)..=end {
                    let slot = level * SLOTS + (bucket as usize & (SLOTS - 1));
                    crossed.append(&mut self.slots[slot]);
                }
            }
        }
        self.len -= crossed.len();
        self.now = target;
        let mut popped: Vec<(u64, T)> = Vec::new();
        for (deadline, token) in crossed {
            if deadline <= target {
                popped.push((deadline, token));
            } else {
                // Not due yet: cascade down to a finer level.
                self.insert(deadline, token);
            }
        }
        if !self.overflow.is_empty() {
            let far = std::mem::take(&mut self.overflow);
            self.len -= far.len();
            for (deadline, token) in far {
                if deadline <= target {
                    popped.push((deadline, token));
                } else {
                    // Re-files into the wheel proper once within horizon.
                    self.insert(deadline, token);
                }
            }
        }
        popped.sort_unstable();
        due.extend(popped.into_iter().map(|(_, token)| token));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimerWheel<u32>, target: u64) -> Vec<u32> {
        let mut due = Vec::new();
        wheel.advance(target, &mut due);
        due
    }

    #[test]
    fn pops_at_exact_deadline() {
        let mut wheel = TimerWheel::new();
        wheel.insert(5, 1);
        assert_eq!(drain(&mut wheel, 4), Vec::<u32>::new());
        assert_eq!(drain(&mut wheel, 5), vec![1]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn past_deadlines_pop_on_next_advance() {
        let mut wheel = TimerWheel::new();
        wheel.advance(100, &mut Vec::new());
        wheel.insert(7, 1); // long dead
        wheel.insert(100, 2); // dead exactly now
        assert_eq!(drain(&mut wheel, 101), vec![1, 2]);
    }

    #[test]
    fn pop_order_is_deadline_then_token() {
        let mut wheel = TimerWheel::new();
        wheel.insert(10, 9);
        wheel.insert(3, 5);
        wheel.insert(10, 2);
        wheel.insert(3, 8);
        assert_eq!(drain(&mut wheel, 20), vec![5, 8, 2, 9]);
    }

    #[test]
    fn order_is_independent_of_advance_granularity() {
        // One big jump vs. tick-by-tick must pop the same sequence.
        let deadlines: Vec<(u64, u32)> = (0..200).map(|i| ((i * 37) % 150 + 1, i as u32)).collect();
        let mut big = TimerWheel::new();
        let mut small = TimerWheel::new();
        for &(d, t) in &deadlines {
            big.insert(d, t);
            small.insert(d, t);
        }
        let coarse = drain(&mut big, 160);
        let mut fine = Vec::new();
        for target in 1..=160 {
            small.advance(target, &mut fine);
        }
        assert_eq!(coarse, fine);
        assert!(big.is_empty() && small.is_empty());
    }

    #[test]
    fn long_delays_cascade_through_levels() {
        let mut wheel = TimerWheel::new();
        // One entry per level scale, plus one beyond the horizon.
        let deadlines = [63u64, 64, 4095, 4096, 262_143, 262_144, 20_000_000];
        for (i, &d) in deadlines.iter().enumerate() {
            wheel.insert(d, i as u32);
        }
        assert_eq!(wheel.len(), deadlines.len());
        for (i, &d) in deadlines.iter().enumerate() {
            assert_eq!(
                drain(&mut wheel, d.saturating_sub(1)),
                Vec::<u32>::new(),
                "early pop of {d}"
            );
            assert_eq!(drain(&mut wheel, d), vec![i as u32], "deadline {d}");
        }
        assert!(wheel.is_empty());
    }

    #[test]
    fn incremental_advance_matches_scheduling_across_bucket_boundaries() {
        // Insert while advancing, with deadlines that straddle level
        // boundaries relative to a moving `now`.
        let mut wheel = TimerWheel::new();
        let mut due = Vec::new();
        let mut expected = Vec::new();
        for step in 0..500u64 {
            let deadline = step + 1 + (step * 13) % 300;
            wheel.insert(deadline, step as u32);
            expected.push((deadline, step as u32));
            wheel.advance(step + 1, &mut due);
        }
        wheel.advance(2000, &mut due);
        expected.sort_unstable();
        let expected: Vec<u32> = expected.into_iter().map(|(_, t)| t).collect();
        assert_eq!(due, expected);
    }
}
