//! A minimal generational slab: stable handles over a free-list arena.
//!
//! # Why a slab
//!
//! `NodeState`'s hot tables used to store entries *inline* in per-ring
//! `Vec` buckets. That layout makes every structural change positional:
//! removing an expired entry (`swap_remove`) shuffles the positions of the
//! survivors, so anything that referred to an entry by position — the
//! sub-join registry, a would-be expiry index — had to be revalidated or
//! rebuilt (`O(bucket)` re-registration plus an `O(all slots)` retain per
//! expiring walk). The cost of *one* removal scaled with *total* stored
//! state.
//!
//! With a slab, entries live at a fixed index for their whole lifetime and
//! buckets hold copyable [`Handle`]s. Removing an entry is `O(1)` in the
//! slab, the bucket fix-up touches only that bucket, and every external
//! reference (registry slot, timer-wheel deadline) can be kept as a handle
//! that is *checked*, not maintained: each slot carries a generation
//! counter bumped on removal, so a stale handle reliably resolves to
//! `None` instead of aliasing whatever reused the slot. Deferred
//! invalidation is what makes `O(active)` expiry possible — nothing ever
//! has to eagerly chase down every reference to a dying entry.
//!
//! Vendored-style: self-contained, no registry dependencies.

/// A stable reference to a slab entry: slot index plus the generation the
/// slot had when the entry was inserted. A handle outlives its entry
/// safely — after removal (or slot reuse) it simply stops resolving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle {
    index: u32,
    generation: u32,
}

#[derive(Debug, Clone)]
enum Slot<T> {
    Occupied { generation: u32, value: T },
    Vacant { generation: u32 },
}

/// A generational arena with O(1) insert/remove and stable handles.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
    high_water: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab { slots: Vec::new(), free: Vec::new(), len: 0, high_water: 0 }
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live entries.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The most entries that were ever live at once (capacity gauge).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Inserts a value and returns its stable handle.
    pub fn insert(&mut self, value: T) -> Handle {
        self.len += 1;
        self.high_water = self.high_water.max(self.len);
        match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                let generation = match slot {
                    Slot::Vacant { generation } => *generation,
                    Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
                };
                *slot = Slot::Occupied { generation, value };
                Handle { index, generation }
            }
            None => {
                let index =
                    u32::try_from(self.slots.len()).expect("slab capacity exceeds u32 indices");
                self.slots.push(Slot::Occupied { generation: 0, value });
                Handle { index, generation: 0 }
            }
        }
    }

    /// The entry behind `handle`, if it is still live.
    pub fn get(&self, handle: Handle) -> Option<&T> {
        match self.slots.get(handle.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == handle.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable access to the entry behind `handle`, if it is still live.
    pub fn get_mut(&mut self, handle: Handle) -> Option<&mut T> {
        match self.slots.get_mut(handle.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == handle.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Whether `handle` still resolves to a live entry.
    #[cfg(test)]
    pub fn contains(&self, handle: Handle) -> bool {
        self.get(handle).is_some()
    }

    /// Removes and returns the entry behind `handle`. The slot's generation
    /// is bumped, so every outstanding copy of the handle goes stale
    /// atomically — including after the slot is reused.
    pub fn remove(&mut self, handle: Handle) -> Option<T> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == handle.generation => {
                let next_generation = generation.wrapping_add(1);
                let old = std::mem::replace(slot, Slot::Vacant { generation: next_generation });
                self.free.push(handle.index);
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Vacant { .. } => unreachable!("matched occupied above"),
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.get(b), Some(&"b"));
    }

    #[test]
    fn stale_handles_never_alias_reused_slots() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        let b = slab.insert(2);
        // The slot is reused but the generation moved on.
        assert_eq!(slab.get(a), None);
        assert!(!slab.contains(a));
        assert_eq!(slab.remove(a), None, "double-remove must be a no-op");
        assert_eq!(slab.get(b), Some(&2));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut slab = Slab::new();
        let h = slab.insert(vec![1]);
        slab.get_mut(h).unwrap().push(2);
        assert_eq!(slab.get(h), Some(&vec![1, 2]));
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut slab = Slab::new();
        let handles: Vec<_> = (0..5).map(|i| slab.insert(i)).collect();
        assert_eq!(slab.high_water(), 5);
        for h in &handles {
            slab.remove(*h);
        }
        assert_eq!(slab.len(), 0);
        assert!(slab.is_empty());
        assert_eq!(slab.high_water(), 5, "high water survives removals");
        slab.insert(9);
        assert_eq!(slab.high_water(), 5);
    }

    #[test]
    fn free_slots_are_reused() {
        let mut slab = Slab::new();
        let handles: Vec<_> = (0..100).map(|i| slab.insert(i)).collect();
        for h in handles {
            slab.remove(h);
        }
        for i in 0..100 {
            slab.insert(i);
        }
        assert_eq!(slab.len(), 100);
        assert_eq!(slab.high_water(), 100, "reuse must not grow the arena");
    }
}
