//! Per-node RJoin state.

use crate::dedup::DedupFilter;
use crate::messages::{PendingQuery, RicInfo};
use crate::RicTracker;
use rjoin_dht::Id;
use rjoin_net::SimTime;
use rjoin_query::IndexLevel;
use rjoin_relation::{Timestamp, Tuple};
use std::collections::{HashMap, VecDeque};

/// A query (input or rewritten) stored at a node, waiting for tuples.
#[derive(Debug, Clone)]
pub struct StoredQuery {
    /// The query and its metadata.
    pub pending: PendingQuery,
    /// Canonical string of the key under which it is stored.
    pub key: String,
    /// Whether the key is attribute-level or value-level.
    pub level: IndexLevel,
    /// Duplicate-elimination filter, present for `SELECT DISTINCT` queries.
    pub dedup: Option<DedupFilter>,
}

impl StoredQuery {
    /// Wraps a pending query for local storage.
    pub fn new(pending: PendingQuery, key: String, level: IndexLevel) -> Self {
        let dedup = if pending.query.distinct() { Some(DedupFilter::new()) } else { None };
        StoredQuery { pending, key, level, dedup }
    }
}

/// A cached RIC observation (an entry of the candidate table of Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RicEntry {
    /// Estimated arrivals per RIC window.
    pub rate: u64,
    /// When the estimate was taken.
    pub observed_at: SimTime,
}

/// The complete RJoin-level state of one network node.
///
/// The DHT-level routing state lives in `rjoin-dht`; this struct only holds
/// what the RJoin application layer needs: stored queries, stored value-level
/// tuples, the optional attribute-level tuple table (ALTT), the candidate
/// table of cached RIC information, and the node's own RIC tracker.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// The node's identifier.
    pub id: Id,
    /// Queries stored at this node, grouped by the key they are indexed
    /// under.
    pub stored_queries: HashMap<String, Vec<StoredQuery>>,
    /// Value-level tuples stored at this node, grouped by index key.
    pub stored_tuples: HashMap<String, Vec<Tuple>>,
    /// Attribute-level tuple table: tuples kept for Δ ticks so that input
    /// queries delayed in the network do not miss them (Section 4).
    pub altt: HashMap<String, VecDeque<(Tuple, SimTime)>>,
    /// Candidate table: cached RIC information per candidate key.
    pub candidate_table: HashMap<String, RicEntry>,
    /// Tracker of tuple arrivals used to answer RIC requests.
    pub ric: RicTracker,
}

impl NodeState {
    /// Creates the empty state of node `id`.
    pub fn new(id: Id) -> Self {
        NodeState {
            id,
            stored_queries: HashMap::new(),
            stored_tuples: HashMap::new(),
            altt: HashMap::new(),
            candidate_table: HashMap::new(),
            ric: RicTracker::new(),
        }
    }

    /// Stores a query under `key`.
    pub fn store_query(&mut self, stored: StoredQuery) {
        self.stored_queries.entry(stored.key.clone()).or_default().push(stored);
    }

    /// Stores a value-level tuple under `key`.
    pub fn store_tuple(&mut self, key: &str, tuple: Tuple) {
        self.stored_tuples.entry(key.to_string()).or_default().push(tuple);
    }

    /// Inserts a tuple into the ALTT with the given expiry time.
    pub fn altt_insert(&mut self, key: &str, tuple: Tuple, expires_at: SimTime) {
        self.altt.entry(key.to_string()).or_default().push_back((tuple, expires_at));
    }

    /// Drops expired ALTT entries for `key` and returns the tuples that are
    /// still retained and were published at or after `min_pub_time`.
    pub fn altt_matching(&mut self, key: &str, now: SimTime, min_pub_time: Timestamp) -> Vec<Tuple> {
        let Some(entries) = self.altt.get_mut(key) else { return Vec::new() };
        while let Some((_, expiry)) = entries.front() {
            if *expiry < now {
                entries.pop_front();
            } else {
                break;
            }
        }
        entries
            .iter()
            .filter(|(t, _)| t.pub_time() >= min_pub_time)
            .map(|(t, _)| t.clone())
            .collect()
    }

    /// Garbage-collects every expired ALTT entry (called opportunistically).
    pub fn altt_gc(&mut self, now: SimTime) {
        for entries in self.altt.values_mut() {
            while let Some((_, expiry)) = entries.front() {
                if *expiry < now {
                    entries.pop_front();
                } else {
                    break;
                }
            }
        }
        self.altt.retain(|_, v| !v.is_empty());
    }

    /// Merges piggy-backed RIC observations into the candidate table,
    /// keeping the most recent estimate per key (Section 7).
    pub fn merge_ric(&mut self, infos: &[RicInfo]) {
        for info in infos {
            let entry = self
                .candidate_table
                .entry(info.key.clone())
                .or_insert(RicEntry { rate: info.rate, observed_at: info.observed_at });
            if info.observed_at >= entry.observed_at {
                entry.rate = info.rate;
                entry.observed_at = info.observed_at;
            }
        }
    }

    /// Looks up a cached RIC estimate that is still valid at `now` given the
    /// configured validity horizon.
    pub fn cached_ric(&self, key: &str, now: SimTime, validity: Option<SimTime>) -> Option<RicEntry> {
        let entry = self.candidate_table.get(key)?;
        match validity {
            Some(v) if now.saturating_sub(entry.observed_at) > v => None,
            _ => Some(*entry),
        }
    }

    /// Number of queries currently stored (input + rewritten).
    pub fn stored_query_count(&self) -> usize {
        self.stored_queries.values().map(Vec::len).sum()
    }

    /// Number of *rewritten* queries currently stored.
    pub fn stored_rewritten_count(&self) -> usize {
        self.stored_queries
            .values()
            .flat_map(|v| v.iter())
            .filter(|s| !s.pending.is_input())
            .count()
    }

    /// Number of value-level tuples currently stored.
    pub fn stored_tuple_count(&self) -> usize {
        self.stored_tuples.values().map(Vec::len).sum()
    }

    /// Current storage load of the node as the paper defines it: stored
    /// rewritten queries plus stored tuples.
    pub fn current_storage_load(&self) -> u64 {
        (self.stored_rewritten_count() + self.stored_tuple_count()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::QueryId;
    use rjoin_query::parse_query;
    use rjoin_relation::Value;

    fn pending(distinct: bool) -> PendingQuery {
        let sql = if distinct {
            "SELECT DISTINCT R.A FROM R, S WHERE R.A = S.A"
        } else {
            "SELECT R.A FROM R, S WHERE R.A = S.A"
        };
        PendingQuery::input(
            QueryId { owner: Id(1), seq: 0 },
            Id(1),
            0,
            parse_query(sql).unwrap(),
        )
    }

    fn tuple(pub_time: u64) -> Tuple {
        Tuple::new("R", vec![Value::from(1), Value::from(2)], pub_time)
    }

    #[test]
    fn stored_query_gets_dedup_only_when_distinct() {
        let s = StoredQuery::new(pending(false), "R+A".into(), IndexLevel::Attribute);
        assert!(s.dedup.is_none());
        let s = StoredQuery::new(pending(true), "R+A".into(), IndexLevel::Attribute);
        assert!(s.dedup.is_some());
    }

    #[test]
    fn storage_counts_exclude_input_queries() {
        let mut state = NodeState::new(Id(7));
        state.store_query(StoredQuery::new(pending(false), "R+A".into(), IndexLevel::Attribute));
        let rewritten = pending(false)
            .child(parse_query("SELECT 5 FROM S WHERE S.A = 5").unwrap(), Some(3));
        state.store_query(StoredQuery::new(rewritten, "S+A+i:5".into(), IndexLevel::Value));
        state.store_tuple("R+A+i:1", tuple(0));

        assert_eq!(state.stored_query_count(), 2);
        assert_eq!(state.stored_rewritten_count(), 1);
        assert_eq!(state.stored_tuple_count(), 1);
        assert_eq!(state.current_storage_load(), 2);
    }

    #[test]
    fn altt_expires_entries() {
        let mut state = NodeState::new(Id(7));
        state.altt_insert("R+A", tuple(5), 10);
        state.altt_insert("R+A", tuple(6), 20);
        // At time 15 the first entry has expired.
        let matching = state.altt_matching("R+A", 15, 0);
        assert_eq!(matching.len(), 1);
        assert_eq!(matching[0].pub_time(), 6);
        // GC removes empty buckets.
        state.altt_gc(100);
        assert!(state.altt.is_empty());
    }

    #[test]
    fn altt_matching_respects_min_pub_time() {
        let mut state = NodeState::new(Id(7));
        state.altt_insert("R+A", tuple(5), 100);
        state.altt_insert("R+A", tuple(9), 100);
        let matching = state.altt_matching("R+A", 10, 6);
        assert_eq!(matching.len(), 1);
        assert_eq!(matching[0].pub_time(), 9);
    }

    #[test]
    fn candidate_table_keeps_most_recent_and_respects_validity() {
        let mut state = NodeState::new(Id(7));
        state.merge_ric(&[RicInfo { key: "R+A".into(), rate: 5, observed_at: 10 }]);
        state.merge_ric(&[RicInfo { key: "R+A".into(), rate: 9, observed_at: 20 }]);
        state.merge_ric(&[RicInfo { key: "R+A".into(), rate: 1, observed_at: 15 }]); // older, ignored
        let entry = state.cached_ric("R+A", 25, None).unwrap();
        assert_eq!(entry.rate, 9);
        assert_eq!(entry.observed_at, 20);
        // Validity horizon rejects stale entries.
        assert!(state.cached_ric("R+A", 200, Some(50)).is_none());
        assert!(state.cached_ric("R+A", 60, Some(50)).is_some());
        assert!(state.cached_ric("unknown", 0, None).is_none());
    }
}
