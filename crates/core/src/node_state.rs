//! Per-node RJoin state.

use crate::dedup::DedupFilter;
use crate::messages::{PendingQuery, RicInfo};
use crate::RicTracker;
use rjoin_dht::{HashedKey, Id, RingMap};
use rjoin_net::SimTime;
use rjoin_query::IndexLevel;
use rjoin_relation::{Timestamp, Tuple};
use std::collections::VecDeque;
use std::sync::Arc;

/// A query (input or rewritten) stored at a node, waiting for tuples.
#[derive(Debug, Clone)]
pub struct StoredQuery {
    /// The query and its metadata.
    pub pending: PendingQuery,
    /// The interned key under which it is stored.
    pub key: HashedKey,
    /// Whether the key is attribute-level or value-level.
    pub level: IndexLevel,
    /// Duplicate-elimination filter, present for `SELECT DISTINCT` queries.
    pub dedup: Option<DedupFilter>,
}

impl StoredQuery {
    /// Wraps a pending query for local storage.
    pub fn new(pending: PendingQuery, key: HashedKey, level: IndexLevel) -> Self {
        let dedup = if pending.query.distinct() { Some(DedupFilter::new()) } else { None };
        StoredQuery { pending, key, level, dedup }
    }
}

/// A cached RIC observation (an entry of the candidate table of Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RicEntry {
    /// Estimated arrivals per RIC window.
    pub rate: u64,
    /// When the estimate was taken.
    pub observed_at: SimTime,
}

/// The complete RJoin-level state of one network node.
///
/// The DHT-level routing state lives in `rjoin-dht`; this struct only holds
/// what the RJoin application layer needs: stored queries, stored value-level
/// tuples, the optional attribute-level tuple table (ALTT), the candidate
/// table of cached RIC information, and the node's own RIC tracker.
///
/// All tables are keyed by the 64-bit **ring identifier** of the index key
/// (precomputed once in [`HashedKey`]), so the delivery hot path performs no
/// string hashing or allocation. Storage counters are maintained
/// incrementally by the mutating methods, which is why the tables themselves
/// are crate-private: [`current_storage_load`](Self::current_storage_load)
/// and friends are O(1) snapshots, not map scans.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// The node's identifier.
    pub id: Id,
    /// Queries stored at this node, grouped by the ring id of the key they
    /// are indexed under.
    pub(crate) stored_queries: RingMap<Vec<StoredQuery>>,
    /// Value-level tuples stored at this node, grouped by index-key ring id.
    pub(crate) stored_tuples: RingMap<Vec<Arc<Tuple>>>,
    /// Attribute-level tuple table: tuples kept for Δ ticks so that input
    /// queries delayed in the network do not miss them (Section 4).
    pub(crate) altt: RingMap<VecDeque<(Arc<Tuple>, SimTime)>>,
    /// Candidate table: cached RIC information per candidate-key ring id.
    pub(crate) candidate_table: RingMap<RicEntry>,
    /// Tracker of tuple arrivals used to answer RIC requests.
    pub(crate) ric: RicTracker,
    /// Incremental count of stored queries (input + rewritten).
    query_count: usize,
    /// Incremental count of stored *rewritten* queries.
    rewritten_count: usize,
    /// Incremental count of stored value-level tuples.
    tuple_count: usize,
}

impl NodeState {
    /// Creates the empty state of node `id`.
    pub fn new(id: Id) -> Self {
        NodeState {
            id,
            stored_queries: RingMap::default(),
            stored_tuples: RingMap::default(),
            altt: RingMap::default(),
            candidate_table: RingMap::default(),
            ric: RicTracker::new(),
            query_count: 0,
            rewritten_count: 0,
            tuple_count: 0,
        }
    }

    /// Read access to this node's RIC tracker.
    pub fn ric(&self) -> &RicTracker {
        &self.ric
    }

    /// Stores a query under its key.
    pub fn store_query(&mut self, stored: StoredQuery) {
        self.query_count += 1;
        if !stored.pending.is_input() {
            self.rewritten_count += 1;
        }
        self.stored_queries.entry(stored.key.ring()).or_default().push(stored);
    }

    /// Debits the storage counters after queries were removed directly from
    /// a bucket obtained via `stored_queries` (window-expiry sweeps in the
    /// procedures).
    pub(crate) fn debit_removed_queries(&mut self, total: usize, rewritten: usize) {
        self.query_count -= total;
        self.rewritten_count -= rewritten;
    }

    /// Stores a value-level tuple under the key with ring id `key`.
    pub fn store_tuple(&mut self, key: u64, tuple: Arc<Tuple>) {
        self.tuple_count += 1;
        self.stored_tuples.entry(key).or_default().push(tuple);
    }

    /// Inserts a tuple into the ALTT with the given expiry time.
    pub fn altt_insert(&mut self, key: u64, tuple: Arc<Tuple>, expires_at: SimTime) {
        self.altt.entry(key).or_default().push_back((tuple, expires_at));
    }

    /// Drops expired ALTT entries for `key` and returns the tuples that are
    /// still retained and were published at or after `min_pub_time`.
    pub fn altt_matching(
        &mut self,
        key: u64,
        now: SimTime,
        min_pub_time: Timestamp,
    ) -> Vec<Arc<Tuple>> {
        let Some(entries) = self.altt.get_mut(&key) else { return Vec::new() };
        while let Some((_, expiry)) = entries.front() {
            if *expiry < now {
                entries.pop_front();
            } else {
                break;
            }
        }
        entries
            .iter()
            .filter(|(t, _)| t.pub_time() >= min_pub_time)
            .map(|(t, _)| Arc::clone(t))
            .collect()
    }

    /// Garbage-collects every expired ALTT entry (called opportunistically).
    pub fn altt_gc(&mut self, now: SimTime) {
        for entries in self.altt.values_mut() {
            while let Some((_, expiry)) = entries.front() {
                if *expiry < now {
                    entries.pop_front();
                } else {
                    break;
                }
            }
        }
        self.altt.retain(|_, v| !v.is_empty());
    }

    /// Number of ALTT buckets currently retained (diagnostic).
    pub fn altt_len(&self) -> usize {
        self.altt.len()
    }

    /// Merges piggy-backed RIC observations into the candidate table,
    /// keeping the most recent estimate per key (Section 7).
    pub fn merge_ric(&mut self, infos: &[RicInfo]) {
        for info in infos {
            // Probe with `get_mut` first: the common case is a key that is
            // already cached, which must not pay an insert.
            match self.candidate_table.get_mut(&info.key.ring()) {
                Some(entry) => {
                    if info.observed_at >= entry.observed_at {
                        entry.rate = info.rate;
                        entry.observed_at = info.observed_at;
                    }
                }
                None => {
                    self.candidate_table
                        .insert(info.key.ring(), RicEntry { rate: info.rate, observed_at: info.observed_at });
                }
            }
        }
    }

    /// Looks up a cached RIC estimate that is still valid at `now` given the
    /// configured validity horizon.
    pub fn cached_ric(&self, key: u64, now: SimTime, validity: Option<SimTime>) -> Option<RicEntry> {
        let entry = self.candidate_table.get(&key)?;
        match validity {
            Some(v) if now.saturating_sub(entry.observed_at) > v => None,
            _ => Some(*entry),
        }
    }

    /// Number of queries currently stored (input + rewritten). O(1).
    pub fn stored_query_count(&self) -> usize {
        self.query_count
    }

    /// Number of *rewritten* queries currently stored. O(1).
    pub fn stored_rewritten_count(&self) -> usize {
        self.rewritten_count
    }

    /// Number of value-level tuples currently stored. O(1).
    pub fn stored_tuple_count(&self) -> usize {
        self.tuple_count
    }

    /// Current storage load of the node as the paper defines it: stored
    /// rewritten queries plus stored tuples. O(1) — the counters are
    /// maintained incrementally as state is stored and expired.
    pub fn current_storage_load(&self) -> u64 {
        (self.rewritten_count + self.tuple_count) as u64
    }

    /// Recomputes the storage counters from the tables (test support: the
    /// incremental counters must always agree with a full scan).
    #[cfg(test)]
    fn recount(&self) -> (usize, usize, usize) {
        let queries = self.stored_queries.values().map(Vec::len).sum();
        let rewritten = self
            .stored_queries
            .values()
            .flat_map(|v| v.iter())
            .filter(|s| !s.pending.is_input())
            .count();
        let tuples = self.stored_tuples.values().map(Vec::len).sum();
        (queries, rewritten, tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::QueryId;
    use rjoin_query::parse_query;
    use rjoin_relation::Value;

    fn key(text: &str) -> HashedKey {
        HashedKey::new(text)
    }

    fn pending(distinct: bool) -> PendingQuery {
        let sql = if distinct {
            "SELECT DISTINCT R.A FROM R, S WHERE R.A = S.A"
        } else {
            "SELECT R.A FROM R, S WHERE R.A = S.A"
        };
        PendingQuery::input(
            QueryId { owner: Id(1), seq: 0 },
            Id(1),
            0,
            parse_query(sql).unwrap(),
        )
    }

    fn tuple(pub_time: u64) -> Arc<Tuple> {
        Arc::new(Tuple::new("R", vec![Value::from(1), Value::from(2)], pub_time))
    }

    #[test]
    fn stored_query_gets_dedup_only_when_distinct() {
        let s = StoredQuery::new(pending(false), key("R+A"), IndexLevel::Attribute);
        assert!(s.dedup.is_none());
        let s = StoredQuery::new(pending(true), key("R+A"), IndexLevel::Attribute);
        assert!(s.dedup.is_some());
    }

    #[test]
    fn storage_counts_exclude_input_queries() {
        let mut state = NodeState::new(Id(7));
        state.store_query(StoredQuery::new(pending(false), key("R+A"), IndexLevel::Attribute));
        let rewritten = pending(false)
            .child(parse_query("SELECT 5 FROM S WHERE S.A = 5").unwrap(), Some(3));
        state.store_query(StoredQuery::new(rewritten, key("S+A+i:5"), IndexLevel::Value));
        state.store_tuple(key("R+A+i:1").ring(), tuple(0));

        assert_eq!(state.stored_query_count(), 2);
        assert_eq!(state.stored_rewritten_count(), 1);
        assert_eq!(state.stored_tuple_count(), 1);
        assert_eq!(state.current_storage_load(), 2);
        assert_eq!(
            state.recount(),
            (state.stored_query_count(), state.stored_rewritten_count(), state.stored_tuple_count())
        );
    }

    #[test]
    fn debit_keeps_counters_consistent_with_tables() {
        let mut state = NodeState::new(Id(7));
        let rewritten = pending(false)
            .child(parse_query("SELECT 5 FROM S WHERE S.A = 5").unwrap(), Some(3));
        let k = key("S+A+i:5");
        state.store_query(StoredQuery::new(rewritten, k.clone(), IndexLevel::Value));
        state.store_query(StoredQuery::new(pending(false), k.clone(), IndexLevel::Value));
        // Simulate the procedures' expiry sweep removing the rewritten one.
        let bucket = state.stored_queries.get_mut(&k.ring()).unwrap();
        bucket.retain(|s| s.pending.is_input());
        state.debit_removed_queries(1, 1);

        assert_eq!(state.stored_query_count(), 1);
        assert_eq!(state.stored_rewritten_count(), 0);
        assert_eq!(
            state.recount(),
            (state.stored_query_count(), state.stored_rewritten_count(), state.stored_tuple_count())
        );
    }

    #[test]
    fn altt_expires_entries() {
        let mut state = NodeState::new(Id(7));
        let k = key("R+A").ring();
        state.altt_insert(k, tuple(5), 10);
        state.altt_insert(k, tuple(6), 20);
        // At time 15 the first entry has expired.
        let matching = state.altt_matching(k, 15, 0);
        assert_eq!(matching.len(), 1);
        assert_eq!(matching[0].pub_time(), 6);
        // GC removes empty buckets.
        state.altt_gc(100);
        assert_eq!(state.altt_len(), 0);
    }

    #[test]
    fn altt_matching_respects_min_pub_time() {
        let mut state = NodeState::new(Id(7));
        let k = key("R+A").ring();
        state.altt_insert(k, tuple(5), 100);
        state.altt_insert(k, tuple(9), 100);
        let matching = state.altt_matching(k, 10, 6);
        assert_eq!(matching.len(), 1);
        assert_eq!(matching[0].pub_time(), 9);
    }

    #[test]
    fn candidate_table_keeps_most_recent_and_respects_validity() {
        let mut state = NodeState::new(Id(7));
        let k = key("R+A");
        state.merge_ric(&[RicInfo { key: k.clone(), rate: 5, observed_at: 10 }]);
        state.merge_ric(&[RicInfo { key: k.clone(), rate: 9, observed_at: 20 }]);
        state.merge_ric(&[RicInfo { key: k.clone(), rate: 1, observed_at: 15 }]); // older, ignored
        let entry = state.cached_ric(k.ring(), 25, None).unwrap();
        assert_eq!(entry.rate, 9);
        assert_eq!(entry.observed_at, 20);
        // Validity horizon rejects stale entries.
        assert!(state.cached_ric(k.ring(), 200, Some(50)).is_none());
        assert!(state.cached_ric(k.ring(), 60, Some(50)).is_some());
        assert!(state.cached_ric(key("unknown").ring(), 0, None).is_none());
    }
}
