//! Per-node RJoin state.

use crate::dedup::DedupFilter;
use crate::messages::{PendingQuery, RicInfo};
use crate::shared::SubJoinRegistry;
use crate::RicTracker;
use rjoin_dht::{HashedKey, Id, RingMap};
use rjoin_metrics::{CompileCounters, SharingCounters};
use rjoin_net::SimTime;
use rjoin_query::{
    fingerprint, subjoin_signature_eq, CompiledTrigger, Fingerprint, IndexLevel, SubJoinProgram,
};
use rjoin_relation::{Timestamp, Tuple};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// A query (input or rewritten) stored at a node, waiting for tuples.
#[derive(Debug, Clone)]
pub struct StoredQuery {
    /// The query and its metadata.
    pub pending: PendingQuery,
    /// The interned key under which it is stored.
    pub key: HashedKey,
    /// Whether the key is attribute-level or value-level.
    pub level: IndexLevel,
    /// Duplicate-elimination filter, present for `SELECT DISTINCT` queries.
    pub dedup: Option<DedupFilter>,
    /// The sub-join fingerprint, computed when the entry was stored through
    /// the shared path (`None` for unshared or `DISTINCT` entries).
    pub(crate) fingerprint: Option<Fingerprint>,
    /// The compiled trigger program for this entry, built lazily at first
    /// trigger (the trigger relation is only known once a tuple arrives).
    /// Stays valid for the entry's lifetime: nothing mutates the stored
    /// query in place (merges only touch subscriber lists).
    pub(crate) program: Option<CompiledTrigger>,
}

impl StoredQuery {
    /// Wraps a pending query for local storage.
    pub fn new(pending: PendingQuery, key: HashedKey, level: IndexLevel) -> Self {
        let dedup = if pending.query.distinct() { Some(DedupFilter::new()) } else { None };
        StoredQuery { pending, key, level, dedup, fingerprint: None, program: None }
    }
}

/// Node-level cache of compiled `WHERE`-side programs, keyed by sub-join
/// fingerprint (the same abstraction shared sub-join entries merge under).
/// A fingerprint hit is a candidate only — entries confirm structural
/// equality via [`SubJoinProgram::matches_source`] before reuse, so a hash
/// collision costs one extra compile, never a wrong program.
pub(crate) type ProgramCache = RingMap<Vec<Arc<SubJoinProgram>>>;

/// A cached RIC observation (an entry of the candidate table of Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RicEntry {
    /// Estimated arrivals per RIC window.
    pub rate: u64,
    /// When the estimate was taken.
    pub observed_at: SimTime,
}

/// The complete RJoin-level state of one network node.
///
/// The DHT-level routing state lives in `rjoin-dht`; this struct only holds
/// what the RJoin application layer needs: stored queries, stored value-level
/// tuples, the optional attribute-level tuple table (ALTT), the candidate
/// table of cached RIC information, and the node's own RIC tracker.
///
/// All tables are keyed by the 64-bit **ring identifier** of the index key
/// (precomputed once in [`HashedKey`]), so the delivery hot path performs no
/// string hashing or allocation. Storage counters are maintained
/// incrementally by the mutating methods, which is why the tables themselves
/// are crate-private: [`current_storage_load`](Self::current_storage_load)
/// and friends are O(1) snapshots, not map scans.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// The node's identifier.
    pub id: Id,
    /// Queries stored at this node, grouped by the ring id of the key they
    /// are indexed under.
    pub(crate) stored_queries: RingMap<Vec<StoredQuery>>,
    /// Value-level tuples stored at this node, grouped by index-key ring id.
    pub(crate) stored_tuples: RingMap<Vec<Arc<Tuple>>>,
    /// Attribute-level tuple table: tuples kept for Δ ticks so that input
    /// queries delayed in the network do not miss them (Section 4).
    pub(crate) altt: RingMap<VecDeque<(Arc<Tuple>, SimTime)>>,
    /// Candidate table: cached RIC information per candidate-key ring id.
    pub(crate) candidate_table: RingMap<RicEntry>,
    /// Tracker of tuple arrivals used to answer RIC requests.
    ///
    /// Behind a shared lock because it is the one piece of node state read
    /// *across* shard workers: under the sharded runtime, another shard's
    /// effect phase resolves an RIC rate request against this node while
    /// this node's own shard may concurrently be recording arrivals for
    /// later ticks. All other tables are only ever touched by the shard
    /// that owns the node. The `Arc` lets the engine keep a directory of
    /// every node's tracker without aliasing the rest of the state; the
    /// uncontended lock costs a few nanoseconds on the sequential path.
    pub(crate) ric: Arc<Mutex<RicTracker>>,
    /// Tracker of rewritten-query (`Eval`) arrivals, the query-side twin of
    /// [`ric`](Self::ric): hot-key splitting compares the two streams to
    /// decide which side of a heavy hitter to partition. Only read by the
    /// driver thread between drains (never across shards), so it needs no
    /// lock.
    pub(crate) eval_ric: RicTracker,
    /// Sub-join registry: index from canonical sub-join identity to the
    /// stored entry sharing it (see [`crate::SubJoinRegistry`]).
    pub(crate) subjoins: SubJoinRegistry,
    /// Counters of the work the sub-join registry saved on this node.
    pub(crate) sharing: SharingCounters,
    /// Cache of compiled `WHERE`-side programs, keyed by fingerprint.
    /// Shared engine-wide (every node of one engine holds a handle to the
    /// same cache): programs are pure functions of the sub-join structure
    /// and the trigger relation's schema, both of which are identical on
    /// every node of an engine, so a twin stored on another node reuses the
    /// program instead of recompiling. The lock is only taken when a stored
    /// entry's per-entry trigger slot misses — first trigger of an entry per
    /// relation — so contention between shard workers is negligible.
    pub(crate) programs: Arc<Mutex<ProgramCache>>,
    /// Counters of the compiled-rewrite hot loop on this node.
    pub(crate) compile: CompileCounters,
    /// Incremental count of stored queries (input + rewritten).
    query_count: usize,
    /// Incremental count of stored *rewritten* queries.
    rewritten_count: usize,
    /// Incremental count of stored value-level tuples.
    tuple_count: usize,
}

/// One drained ALTT bucket: the key ring id and its retained
/// `(tuple, expiry)` entries.
pub type DrainedAlttBucket = (u64, VecDeque<(Arc<Tuple>, SimTime)>);

/// Node state drained for re-homing during churn: the buckets a node no
/// longer owns (or all of them, when the node leaves), ready to be absorbed
/// by the nodes now responsible for the keys.
#[derive(Debug, Default)]
pub struct DrainedState {
    /// Stored queries (each carries its interned key, so the new owner can
    /// be resolved from `key.id()`).
    pub queries: Vec<StoredQuery>,
    /// Value-level tuple buckets, by key ring id.
    pub tuples: Vec<(u64, Vec<Arc<Tuple>>)>,
    /// ALTT buckets (tuple + expiry time), by key ring id.
    pub altt: Vec<DrainedAlttBucket>,
}

impl DrainedState {
    /// Total number of drained items (queries + tuples + ALTT entries).
    pub fn len(&self) -> usize {
        self.queries.len()
            + self.tuples.iter().map(|(_, b)| b.len()).sum::<usize>()
            + self.altt.iter().map(|(_, b)| b.len()).sum::<usize>()
    }

    /// Whether nothing was drained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl NodeState {
    /// Creates the empty state of node `id`.
    pub fn new(id: Id) -> Self {
        NodeState {
            id,
            stored_queries: RingMap::default(),
            stored_tuples: RingMap::default(),
            altt: RingMap::default(),
            candidate_table: RingMap::default(),
            ric: Arc::new(Mutex::new(RicTracker::new())),
            eval_ric: RicTracker::new(),
            subjoins: SubJoinRegistry::new(),
            sharing: SharingCounters::new(),
            programs: Arc::new(Mutex::new(ProgramCache::default())),
            compile: CompileCounters::new(),
            query_count: 0,
            rewritten_count: 0,
            tuple_count: 0,
        }
    }

    /// Locked access to this node's RIC tracker.
    pub fn ric(&self) -> MutexGuard<'_, RicTracker> {
        self.ric.lock().expect("ric lock poisoned")
    }

    /// A shared handle to this node's RIC tracker (used by the sharded
    /// runtime's rate directory).
    pub(crate) fn ric_handle(&self) -> Arc<Mutex<RicTracker>> {
        Arc::clone(&self.ric)
    }

    /// Points this node at `cache` as its compiled-program cache. The engine
    /// calls this on every node it creates so the whole ring shares one
    /// cache (see the field docs on [`programs`](Self::programs)).
    pub(crate) fn share_programs(&mut self, cache: Arc<Mutex<ProgramCache>>) {
        self.programs = cache;
    }

    /// Read access to this node's `Eval`-arrival tracker (the query-side
    /// heat signal of hot-key splitting).
    pub fn eval_ric(&self) -> &RicTracker {
        &self.eval_ric
    }

    /// Read access to this node's sharing counters.
    pub fn sharing(&self) -> &SharingCounters {
        &self.sharing
    }

    /// Read access to this node's compiled-rewrite counters.
    pub fn compile_counters(&self) -> &CompileCounters {
        &self.compile
    }

    /// Read access to this node's sub-join registry.
    pub fn subjoins(&self) -> &SubJoinRegistry {
        &self.subjoins
    }

    /// Stores a query under its key.
    pub fn store_query(&mut self, stored: StoredQuery) {
        self.query_count += 1;
        if !stored.pending.is_input() {
            self.rewritten_count += 1;
        }
        self.stored_queries.entry(stored.key.ring()).or_default().push(stored);
    }

    /// Stores a query, merging it into a structurally identical entry when
    /// `share` is enabled (the shared sub-join path of Procedures 2/3).
    ///
    /// A merge requires the same index key, the same canonical sub-join
    /// signature (relations, conjuncts, window, semantics flag — `SELECT`
    /// abstracted), the same index level and the same window state
    /// (`start` plus the exact `window_min`/`window_max` span);
    /// `DISTINCT` queries never merge (their duplicate-elimination filter
    /// depends on the `SELECT` list). On a merge the incoming query's
    /// subscribers join the entry's subscriber list and **no** new stored
    /// copy is created. Returns whether the query was merged.
    pub fn store_query_shared(&mut self, mut stored: StoredQuery, share: bool) -> bool {
        if !share || stored.pending.query.distinct() {
            self.store_query(stored);
            return false;
        }
        let ring = stored.key.ring();
        let fp = fingerprint(&stored.pending.query);
        let ws = stored.pending.window_start;
        let window = (ws, stored.pending.window_min, stored.pending.window_max);
        if let Some(pos) = self.subjoins.candidate(ring, fp, window) {
            if let Some(entry) =
                self.stored_queries.get_mut(&ring).and_then(|bucket| bucket.get_mut(pos))
            {
                // A fingerprint hit is only a candidate: confirm structural
                // equality so a hash collision can never corrupt answers.
                // The full window state must match too — `window_start`
                // drives expiry and `window_min`/`window_max` drive the
                // sliding-window span gate, so twins created by tuples with
                // different publication times must not share one entry.
                let mergeable = entry.level == stored.level
                    && entry.pending.window_start == ws
                    && entry.pending.window_min == stored.pending.window_min
                    && entry.pending.window_max == stored.pending.window_max
                    && !entry.pending.query.distinct()
                    && subjoin_signature_eq(&entry.pending.query, &stored.pending.query);
                if mergeable {
                    let added = stored.pending.subscriber_count() as u64;
                    entry.pending.extra_subscribers.push(stored.pending.primary_subscriber());
                    entry.pending.extra_subscribers.append(&mut stored.pending.extra_subscribers);
                    self.sharing.merged_queries += added;
                    return true;
                }
            }
        }
        stored.fingerprint = Some(fp);
        let position = self.stored_queries.get(&ring).map_or(0, Vec::len);
        self.subjoins.register(ring, fp, window, position);
        self.store_query(stored);
        false
    }

    /// Debits the storage counters after queries were removed directly from
    /// a bucket obtained via `stored_queries` (window-expiry sweeps in the
    /// procedures).
    pub(crate) fn debit_removed_queries(&mut self, total: usize, rewritten: usize) {
        self.query_count -= total;
        self.rewritten_count -= rewritten;
    }

    /// Stores a value-level tuple under the key with ring id `key`.
    pub fn store_tuple(&mut self, key: u64, tuple: Arc<Tuple>) {
        self.tuple_count += 1;
        self.stored_tuples.entry(key).or_default().push(tuple);
    }

    /// Inserts a tuple into the ALTT with the given expiry time.
    pub fn altt_insert(&mut self, key: u64, tuple: Arc<Tuple>, expires_at: SimTime) {
        self.altt.entry(key).or_default().push_back((tuple, expires_at));
    }

    /// Drops expired ALTT entries for `key` and returns the tuples that are
    /// still retained and were published at or after `min_pub_time`.
    pub fn altt_matching(
        &mut self,
        key: u64,
        now: SimTime,
        min_pub_time: Timestamp,
    ) -> Vec<Arc<Tuple>> {
        let Some(entries) = self.altt.get_mut(&key) else { return Vec::new() };
        while let Some((_, expiry)) = entries.front() {
            if *expiry < now {
                entries.pop_front();
            } else {
                break;
            }
        }
        entries
            .iter()
            .filter(|(t, _)| t.pub_time() >= min_pub_time)
            .map(|(t, _)| Arc::clone(t))
            .collect()
    }

    /// Garbage-collects every expired ALTT entry (called opportunistically).
    pub fn altt_gc(&mut self, now: SimTime) {
        for entries in self.altt.values_mut() {
            while let Some((_, expiry)) = entries.front() {
                if *expiry < now {
                    entries.pop_front();
                } else {
                    break;
                }
            }
        }
        self.altt.retain(|_, v| !v.is_empty());
    }

    /// Number of ALTT buckets currently retained (diagnostic).
    pub fn altt_len(&self) -> usize {
        self.altt.len()
    }

    /// Merges piggy-backed RIC observations into the candidate table,
    /// keeping the most recent estimate per key (Section 7).
    pub fn merge_ric(&mut self, infos: &[RicInfo]) {
        for info in infos {
            // Probe with `get_mut` first: the common case is a key that is
            // already cached, which must not pay an insert.
            match self.candidate_table.get_mut(&info.key.ring()) {
                Some(entry) => {
                    if info.observed_at >= entry.observed_at {
                        entry.rate = info.rate;
                        entry.observed_at = info.observed_at;
                    }
                }
                None => {
                    self.candidate_table.insert(
                        info.key.ring(),
                        RicEntry { rate: info.rate, observed_at: info.observed_at },
                    );
                }
            }
        }
    }

    /// Looks up a cached RIC estimate that is still valid at `now` given the
    /// configured validity horizon.
    pub fn cached_ric(
        &self,
        key: u64,
        now: SimTime,
        validity: Option<SimTime>,
    ) -> Option<RicEntry> {
        let entry = self.candidate_table.get(&key)?;
        match validity {
            Some(v) if now.saturating_sub(entry.observed_at) > v => None,
            _ => Some(*entry),
        }
    }

    /// Drains every bucket whose key ring id fails `keep` (the node is no
    /// longer responsible for it after a membership change), adjusting the
    /// storage counters and the sub-join registry. The drained state is
    /// returned so the engine can hand it to the new owners.
    pub fn drain_misplaced(&mut self, mut keep: impl FnMut(u64) -> bool) -> DrainedState {
        let mut drained = DrainedState::default();
        let rings: Vec<u64> = self.stored_queries.keys().copied().filter(|r| !keep(*r)).collect();
        for ring in rings {
            let bucket = self.stored_queries.remove(&ring).expect("ring collected above");
            let rewritten = bucket.iter().filter(|s| !s.pending.is_input()).count();
            self.debit_removed_queries(bucket.len(), rewritten);
            self.subjoins.forget_ring(ring);
            drained.queries.extend(bucket);
        }
        let rings: Vec<u64> = self.stored_tuples.keys().copied().filter(|r| !keep(*r)).collect();
        for ring in rings {
            let bucket = self.stored_tuples.remove(&ring).expect("ring collected above");
            self.tuple_count -= bucket.len();
            drained.tuples.push((ring, bucket));
        }
        let rings: Vec<u64> = self.altt.keys().copied().filter(|r| !keep(*r)).collect();
        for ring in rings {
            drained.altt.push((ring, self.altt.remove(&ring).expect("ring collected above")));
        }
        drained
    }

    /// Consumes the node's entire application state (graceful leave: the
    /// departing node hands everything to its successors).
    pub fn into_drained(mut self) -> DrainedState {
        self.drain_misplaced(|_| false)
    }

    /// Absorbs re-homed state from another node. Queries go through the
    /// shared path when `share` is enabled, so structurally identical
    /// entries re-merge at their new home.
    pub fn absorb(&mut self, drained: DrainedState, share: bool) {
        for mut stored in drained.queries {
            // The fingerprint slot is tied to the previous bucket position;
            // the shared path recomputes and re-registers it here.
            stored.fingerprint = None;
            self.store_query_shared(stored, share);
        }
        for (ring, bucket) in drained.tuples {
            for tuple in bucket {
                self.store_tuple(ring, tuple);
            }
        }
        for (ring, bucket) in drained.altt {
            for (tuple, expires_at) in bucket {
                self.altt_insert(ring, tuple, expires_at);
            }
        }
    }

    /// Number of queries currently stored (input + rewritten). O(1).
    pub fn stored_query_count(&self) -> usize {
        self.query_count
    }

    /// Number of *rewritten* queries currently stored. O(1).
    pub fn stored_rewritten_count(&self) -> usize {
        self.rewritten_count
    }

    /// Number of value-level tuples currently stored. O(1).
    pub fn stored_tuple_count(&self) -> usize {
        self.tuple_count
    }

    /// Current storage load of the node as the paper defines it: stored
    /// rewritten queries plus stored tuples. O(1) — the counters are
    /// maintained incrementally as state is stored and expired.
    pub fn current_storage_load(&self) -> u64 {
        (self.rewritten_count + self.tuple_count) as u64
    }

    /// Recomputes the storage counters from the tables (test support: the
    /// incremental counters must always agree with a full scan).
    #[cfg(test)]
    fn recount(&self) -> (usize, usize, usize) {
        let queries = self.stored_queries.values().map(Vec::len).sum();
        let rewritten = self
            .stored_queries
            .values()
            .flat_map(|v| v.iter())
            .filter(|s| !s.pending.is_input())
            .count();
        let tuples = self.stored_tuples.values().map(Vec::len).sum();
        (queries, rewritten, tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::QueryId;
    use rjoin_query::parse_query;
    use rjoin_relation::Value;

    fn key(text: &str) -> HashedKey {
        HashedKey::new(text)
    }

    fn pending(distinct: bool) -> PendingQuery {
        let sql = if distinct {
            "SELECT DISTINCT R.A FROM R, S WHERE R.A = S.A"
        } else {
            "SELECT R.A FROM R, S WHERE R.A = S.A"
        };
        PendingQuery::input(QueryId { owner: Id(1), seq: 0 }, Id(1), 0, parse_query(sql).unwrap())
    }

    fn tuple(pub_time: u64) -> Arc<Tuple> {
        Arc::new(Tuple::new("R", vec![Value::from(1), Value::from(2)], pub_time))
    }

    #[test]
    fn stored_query_gets_dedup_only_when_distinct() {
        let s = StoredQuery::new(pending(false), key("R+A"), IndexLevel::Attribute);
        assert!(s.dedup.is_none());
        let s = StoredQuery::new(pending(true), key("R+A"), IndexLevel::Attribute);
        assert!(s.dedup.is_some());
    }

    #[test]
    fn storage_counts_exclude_input_queries() {
        let mut state = NodeState::new(Id(7));
        state.store_query(StoredQuery::new(pending(false), key("R+A"), IndexLevel::Attribute));
        let rewritten =
            pending(false).child(parse_query("SELECT 5 FROM S WHERE S.A = 5").unwrap(), Some(3));
        state.store_query(StoredQuery::new(rewritten, key("S+A+i:5"), IndexLevel::Value));
        state.store_tuple(key("R+A+i:1").ring(), tuple(0));

        assert_eq!(state.stored_query_count(), 2);
        assert_eq!(state.stored_rewritten_count(), 1);
        assert_eq!(state.stored_tuple_count(), 1);
        assert_eq!(state.current_storage_load(), 2);
        assert_eq!(
            state.recount(),
            (
                state.stored_query_count(),
                state.stored_rewritten_count(),
                state.stored_tuple_count()
            )
        );
    }

    #[test]
    fn debit_keeps_counters_consistent_with_tables() {
        let mut state = NodeState::new(Id(7));
        let rewritten =
            pending(false).child(parse_query("SELECT 5 FROM S WHERE S.A = 5").unwrap(), Some(3));
        let k = key("S+A+i:5");
        state.store_query(StoredQuery::new(rewritten, k.clone(), IndexLevel::Value));
        state.store_query(StoredQuery::new(pending(false), k.clone(), IndexLevel::Value));
        // Simulate the procedures' expiry sweep removing the rewritten one.
        let bucket = state.stored_queries.get_mut(&k.ring()).unwrap();
        bucket.retain(|s| s.pending.is_input());
        state.debit_removed_queries(1, 1);

        assert_eq!(state.stored_query_count(), 1);
        assert_eq!(state.stored_rewritten_count(), 0);
        assert_eq!(
            state.recount(),
            (
                state.stored_query_count(),
                state.stored_rewritten_count(),
                state.stored_tuple_count()
            )
        );
    }

    fn input_from(owner: u64, insert_time: u64, sql: &str) -> PendingQuery {
        PendingQuery::input(
            QueryId { owner: Id(owner), seq: owner },
            Id(owner),
            insert_time,
            parse_query(sql).unwrap(),
        )
    }

    #[test]
    fn shared_store_merges_identical_subjoins() {
        let mut state = NodeState::new(Id(7));
        let k = key("R+A");
        let a = input_from(1, 0, "SELECT R.A FROM R, S WHERE R.A = S.A");
        // Same sub-join, different SELECT list and later insertion time.
        let b = input_from(2, 5, "SELECT S.B, R.C FROM R, S WHERE R.A = S.A");
        assert!(
            !state.store_query_shared(StoredQuery::new(a, k.clone(), IndexLevel::Attribute), true)
        );
        assert!(
            state.store_query_shared(StoredQuery::new(b, k.clone(), IndexLevel::Attribute), true)
        );

        // One stored copy carrying both subscribers.
        assert_eq!(state.stored_query_count(), 1);
        let bucket = state.stored_queries.get(&k.ring()).unwrap();
        assert_eq!(bucket.len(), 1);
        assert_eq!(bucket[0].pending.subscriber_count(), 2);
        assert_eq!(bucket[0].pending.min_insert_time(), 0);
        assert_eq!(bucket[0].pending.extra_subscribers[0].insert_time, 5);
        assert_eq!(state.sharing().merged_queries, 1);
        assert_eq!(state.subjoins().len(), 1);
    }

    #[test]
    fn shared_store_respects_structure_window_start_and_distinct() {
        let mut state = NodeState::new(Id(7));
        let k = key("R+A");
        let base = input_from(1, 0, "SELECT R.A FROM R, S WHERE R.A = S.A");
        assert!(!state
            .store_query_shared(StoredQuery::new(base, k.clone(), IndexLevel::Attribute), true));

        // Different WHERE: no merge.
        let other = input_from(2, 0, "SELECT R.A FROM R, S WHERE R.B = S.A");
        assert!(!state
            .store_query_shared(StoredQuery::new(other, k.clone(), IndexLevel::Attribute), true));
        // DISTINCT: never merged, even with identical structure.
        let distinct = input_from(3, 0, "SELECT DISTINCT R.A FROM R, S WHERE R.A = S.A");
        assert!(!state.store_query_shared(
            StoredQuery::new(distinct, k.clone(), IndexLevel::Attribute),
            true
        ));
        // Different window start: no merge (expiry would diverge).
        let rewritten_a =
            input_from(4, 0, "SELECT R.A, S.B FROM R, S, J WHERE R.A = S.A AND S.B = J.B")
                .child(parse_query("SELECT R.A, 9 FROM R, S WHERE R.A = S.A").unwrap(), Some(3));
        let rewritten_b =
            input_from(5, 0, "SELECT R.A, S.B FROM R, S, J WHERE R.A = S.A AND S.B = J.B")
                .child(parse_query("SELECT R.A, 8 FROM R, S WHERE R.A = S.A").unwrap(), Some(4));
        assert!(!state
            .store_query_shared(StoredQuery::new(rewritten_a, k.clone(), IndexLevel::Value), true));
        assert!(!state
            .store_query_shared(StoredQuery::new(rewritten_b, k.clone(), IndexLevel::Value), true));
        // With sharing disabled nothing ever merges.
        let twin = input_from(6, 0, "SELECT S.B FROM R, S WHERE R.A = S.A");
        assert!(!state
            .store_query_shared(StoredQuery::new(twin, k.clone(), IndexLevel::Attribute), false));

        assert_eq!(state.stored_query_count(), 6);
        assert_eq!(state.sharing().merged_queries, 0);
    }

    /// Regression: two rewritten twins with the same `window_start` but
    /// different contribution spans must not merge — the shared entry's
    /// sliding-window span gate would apply one twin's `[min, max]` to the
    /// other, losing (or wrongly admitting) answers.
    #[test]
    fn shared_store_requires_equal_window_span() {
        let mut state = NodeState::new(Id(7));
        let k = key("J+B+i:3");
        let input = input_from(
            1,
            0,
            "SELECT R.B, J.A FROM R, S, J WHERE R.A = S.A AND S.B = J.B WINDOW SLIDING 8 TUPLES",
        );
        let rewritten = |pub_time: u64| {
            let mut child = input.child(
                parse_query("SELECT 9, J.A FROM J WHERE J.B = 3 WINDOW SLIDING 8 TUPLES").unwrap(),
                Some(10),
            );
            child.note_contribution(pub_time);
            child.note_contribution(10);
            child
        };
        // Same structure, same window_start (10), but spans [5,10] vs [9,10].
        let g1 = rewritten(5);
        let g2 = rewritten(9);
        assert!(!state.store_query_shared(StoredQuery::new(g1, k.clone(), IndexLevel::Value), true));
        assert!(
            !state.store_query_shared(StoredQuery::new(g2, k.clone(), IndexLevel::Value), true),
            "different contribution spans must not share one entry"
        );
        assert_eq!(state.stored_query_count(), 2);
        // An exact twin (same span) still merges.
        let g3 = rewritten(9);
        assert!(state.store_query_shared(StoredQuery::new(g3, k.clone(), IndexLevel::Value), true));
        assert_eq!(state.stored_query_count(), 2);
    }

    #[test]
    fn drain_and_absorb_keep_counters_consistent() {
        let mut donor = NodeState::new(Id(1));
        let k_q = key("R+A");
        let k_t = key("S+B+i:2");
        donor.store_query_shared(
            StoredQuery::new(
                input_from(1, 0, "SELECT R.A FROM R, S WHERE R.A = S.A"),
                k_q.clone(),
                IndexLevel::Attribute,
            ),
            true,
        );
        donor.store_query_shared(
            StoredQuery::new(
                input_from(2, 1, "SELECT R.B FROM R, S WHERE R.A = S.A"),
                k_q.clone(),
                IndexLevel::Attribute,
            ),
            true,
        );
        donor.store_tuple(k_t.ring(), tuple(3));
        donor.altt_insert(k_q.ring(), tuple(4), 99);

        // Drain only the tuple bucket first (simulating partial re-homing).
        let keep_ring = k_q.ring();
        let partial = donor.drain_misplaced(|ring| ring == keep_ring);
        assert_eq!(partial.tuples.len(), 1);
        assert_eq!(donor.stored_tuple_count(), 0);
        assert_eq!(donor.stored_query_count(), 1, "shared entry counts once");

        // Now everything.
        let rest = donor.into_drained();
        assert_eq!(rest.queries.len(), 1);
        assert_eq!(rest.queries[0].pending.subscriber_count(), 2);
        assert_eq!(rest.altt.len(), 1);

        let mut receiver = NodeState::new(Id(2));
        receiver.absorb(partial, true);
        receiver.absorb(rest, true);
        assert_eq!(receiver.stored_query_count(), 1);
        assert_eq!(receiver.stored_tuple_count(), 1);
        assert_eq!(receiver.altt_len(), 1);
        assert_eq!(receiver.current_storage_load(), 1);
        // The re-homed shared entry is registered again: a structurally
        // identical newcomer merges into it at the new home.
        let late = input_from(9, 2, "SELECT S.A FROM R, S WHERE R.A = S.A");
        assert!(receiver
            .store_query_shared(StoredQuery::new(late, k_q.clone(), IndexLevel::Attribute), true));
        assert_eq!(receiver.stored_query_count(), 1);
    }

    #[test]
    fn altt_expires_entries() {
        let mut state = NodeState::new(Id(7));
        let k = key("R+A").ring();
        state.altt_insert(k, tuple(5), 10);
        state.altt_insert(k, tuple(6), 20);
        // At time 15 the first entry has expired.
        let matching = state.altt_matching(k, 15, 0);
        assert_eq!(matching.len(), 1);
        assert_eq!(matching[0].pub_time(), 6);
        // GC removes empty buckets.
        state.altt_gc(100);
        assert_eq!(state.altt_len(), 0);
    }

    #[test]
    fn altt_matching_respects_min_pub_time() {
        let mut state = NodeState::new(Id(7));
        let k = key("R+A").ring();
        state.altt_insert(k, tuple(5), 100);
        state.altt_insert(k, tuple(9), 100);
        let matching = state.altt_matching(k, 10, 6);
        assert_eq!(matching.len(), 1);
        assert_eq!(matching[0].pub_time(), 9);
    }

    #[test]
    fn candidate_table_keeps_most_recent_and_respects_validity() {
        let mut state = NodeState::new(Id(7));
        let k = key("R+A");
        state.merge_ric(&[RicInfo { key: k.clone(), rate: 5, observed_at: 10 }]);
        state.merge_ric(&[RicInfo { key: k.clone(), rate: 9, observed_at: 20 }]);
        state.merge_ric(&[RicInfo { key: k.clone(), rate: 1, observed_at: 15 }]); // older, ignored
        let entry = state.cached_ric(k.ring(), 25, None).unwrap();
        assert_eq!(entry.rate, 9);
        assert_eq!(entry.observed_at, 20);
        // Validity horizon rejects stale entries.
        assert!(state.cached_ric(k.ring(), 200, Some(50)).is_none());
        assert!(state.cached_ric(k.ring(), 60, Some(50)).is_some());
        assert!(state.cached_ric(key("unknown").ring(), 0, None).is_none());
    }
}
