//! Per-node RJoin state.
//!
//! # Trigger-index maintenance contract
//!
//! The stored-query buckets are shadowed by a value-partitioned
//! [`TriggerIndex`] (see [`crate::trigger_index`]): every site that links
//! a handle into a bucket must file it in the index, and **every** site
//! that unlinks one — wheel pops ([`NodeState::advance_expiry`]), the
//! sweep-mode collector ([`NodeState::sweep_expired`]), churn drains
//! ([`NodeState::drain_misplaced`]) and the procedures' contact-expiry
//! removals — must unfile it with the removed entry, or indexed probes
//! would hand out stale handles and miss live entries. Bucket compaction
//! is `swap_remove`-based; each removal site also fixes the moved entry's
//! [`StoredQuery::bucket_pos`] so unlinking stays O(1).

use crate::dedup::DedupFilter;
use crate::expiry::TimerWheel;
use crate::messages::{PendingQuery, RicInfo};
use crate::shared::SubJoinRegistry;
use crate::slab::{Handle, Slab};
use crate::trigger_index::TriggerIndex;
use crate::RicTracker;
use rjoin_dht::{HashedKey, Id, RingMap};
use rjoin_metrics::{CompileCounters, ProbeCounters, SharingCounters, StateCounters};
use rjoin_net::SimTime;
use rjoin_query::{
    fingerprint, subjoin_signature_eq, CompiledTrigger, Fingerprint, IndexLevel, SubJoinProgram,
    WindowSpec,
};
use rjoin_relation::{Timestamp, Tuple};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// How many ticks the per-delivery wheel advance may lag behind the
/// delivery clock (see [`NodeState::advance_expiry_batched`]). Physical
/// removal timing never decides an answer, so the stride only trades a few
/// ticks of extra retained state for one slot crossing per stride instead
/// of one per delivery tick.
const EXPIRY_STRIDE: SimTime = 32;

/// A query (input or rewritten) stored at a node, waiting for tuples.
#[derive(Debug, Clone)]
pub struct StoredQuery {
    /// The query and its metadata.
    pub pending: PendingQuery,
    /// The interned key under which it is stored.
    pub key: HashedKey,
    /// Whether the key is attribute-level or value-level.
    pub level: IndexLevel,
    /// Duplicate-elimination filter, present for `SELECT DISTINCT` queries.
    pub dedup: Option<DedupFilter>,
    /// The sub-join fingerprint, computed when the entry was stored through
    /// the shared path (`None` for unshared or `DISTINCT` entries).
    pub(crate) fingerprint: Option<Fingerprint>,
    /// The compiled trigger program for this entry, built lazily at first
    /// trigger (the trigger relation is only known once a tuple arrives).
    /// Stays valid for the entry's lifetime: nothing mutates the stored
    /// query in place (merges only touch subscriber lists).
    pub(crate) program: Option<CompiledTrigger>,
    /// The entry's current position in its ring bucket, kept up to date by
    /// every bucket mutation (`swap_remove` sites fix the moved entry), so
    /// unlinking one handle is O(1) instead of an O(bucket) rescan.
    pub(crate) bucket_pos: usize,
}

impl StoredQuery {
    /// Wraps a pending query for local storage.
    pub fn new(pending: PendingQuery, key: HashedKey, level: IndexLevel) -> Self {
        let dedup = if pending.query.distinct() { Some(DedupFilter::new()) } else { None };
        StoredQuery { pending, key, level, dedup, fingerprint: None, program: None, bucket_pos: 0 }
    }
}

/// One retained attribute-level tuple: its bucket's ring id (so a wheel pop
/// can find the bucket), the shared payload and the retention deadline.
#[derive(Debug, Clone)]
pub(crate) struct AlttEntry {
    pub(crate) ring: u64,
    pub(crate) tuple: Arc<Tuple>,
    pub(crate) expires_at: SimTime,
}

/// A deadline token on the node's timer wheel. Tokens carry slab handles,
/// so a popped token whose entry was already removed (contact expiry,
/// churn migration) fails the generation check and is skipped for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum ExpiryToken {
    /// A windowed stored query; pops when no future tuple can be inside its
    /// window anymore.
    Query(Handle),
    /// An ALTT entry; pops when its retention Δ has elapsed.
    Altt(Handle),
}

/// The last publication time a tuple may carry and still fall inside the
/// window anchored at `start` — the wheel's expiry anchor. `None` for
/// unwindowed queries (they never expire).
pub(crate) fn last_window_pub(window: &WindowSpec, start: Timestamp) -> Option<Timestamp> {
    match window {
        WindowSpec::None => None,
        // `within(start, p)` holds for p up to start + duration - 1.
        WindowSpec::Sliding { duration, .. } => {
            Some(start.saturating_add(duration.saturating_sub(1)))
        }
        // A tumbling window admits exactly `start`'s bucket: publications up
        // to the bucket's last tick. Zero-length windows admit nothing; any
        // deadline at or before `start` retires the dead entry promptly.
        WindowSpec::Tumbling { duration, .. } => {
            if *duration == 0 {
                Some(start)
            } else {
                Some((start / duration + 1).saturating_mul(*duration).saturating_sub(1))
            }
        }
    }
}

/// The wheel deadline of a stored query, if it can expire at all: the tick
/// by which every tuple still able to trigger it has been delivered.
/// Publication happens at `pub_time` and every message arrives within the
/// network's delay bound, so `last admissible pub + 1 + slack` (slack = δ)
/// is the first tick at which removal is provably unobservable.
fn query_expiry_deadline(stored: &StoredQuery, slack: SimTime) -> Option<SimTime> {
    let start = stored.pending.window_start?;
    let last_pub = last_window_pub(stored.pending.query.window(), start)?;
    Some(last_pub.saturating_add(1).saturating_add(slack))
}

/// Node-level cache of compiled `WHERE`-side programs, keyed by sub-join
/// fingerprint (the same abstraction shared sub-join entries merge under).
/// A fingerprint hit is a candidate only — entries confirm structural
/// equality via [`SubJoinProgram::matches_source`] before reuse, so a hash
/// collision costs one extra compile, never a wrong program.
pub(crate) type ProgramCache = RingMap<Vec<Arc<SubJoinProgram>>>;

/// A cached RIC observation (an entry of the candidate table of Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RicEntry {
    /// Estimated arrivals per RIC window.
    pub rate: u64,
    /// When the estimate was taken.
    pub observed_at: SimTime,
}

/// The complete RJoin-level state of one network node.
///
/// The DHT-level routing state lives in `rjoin-dht`; this struct only holds
/// what the RJoin application layer needs: stored queries, stored value-level
/// tuples, the optional attribute-level tuple table (ALTT), the candidate
/// table of cached RIC information, and the node's own RIC tracker.
///
/// # O(active) storage layout
///
/// The three mutable tuple/query stores are **slab-backed**: entries live in
/// per-node generational slabs (`crate::slab::Slab`) and the per-ring
/// buckets hold stable `Handle`s. Removing one entry is O(1) in the slab
/// plus O(bucket) to drop its handle — never O(all stored state): the
/// sub-join registry points at handles (no positional re-registration when
/// a bucket compacts) and the per-node **timer wheel** indexes every
/// windowed query and ALTT entry by its deadline, so expiry pops exactly
/// the dead entries instead of waiting for a walk to stumble over them.
/// External references to removed entries (wheel tokens, registry slots)
/// go stale atomically through the slab's generation counter and are
/// skipped for free.
///
/// All tables are keyed by the 64-bit **ring identifier** of the index key
/// (precomputed once in [`HashedKey`]), so the delivery hot path performs no
/// string hashing or allocation. Storage counters are maintained
/// incrementally by the mutating methods, which is why the tables themselves
/// are crate-private: [`current_storage_load`](Self::current_storage_load)
/// and friends are O(1) snapshots, not map scans.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// The node's identifier.
    pub id: Id,
    /// Slab of queries stored at this node.
    pub(crate) queries: Slab<StoredQuery>,
    /// Handles of stored queries, grouped by the ring id of the key they
    /// are indexed under.
    pub(crate) stored_queries: RingMap<Vec<Handle>>,
    /// Slab of value-level tuples stored at this node.
    pub(crate) tuples: Slab<Arc<Tuple>>,
    /// Handles of stored value-level tuples, grouped by index-key ring id.
    pub(crate) stored_tuples: RingMap<Vec<Handle>>,
    /// Publication-time sidecar of `stored_tuples`: per ring, the bucket
    /// positions sorted by `(pub_time, position)`. Tuple buckets are
    /// append-only between whole-ring drains (see
    /// [`store_tuple`](Self::store_tuple)), so positions are stable and an
    /// arriving query can binary-search the admissible publication span
    /// instead of walking the full bucket (see
    /// [`crate::trigger_index`] — the eval-side twin of the trigger index).
    pub(crate) stored_tuple_times: RingMap<Vec<(Timestamp, u32)>>,
    /// Slab of attribute-level tuple table entries: tuples kept for Δ ticks
    /// so that input queries delayed in the network do not miss them
    /// (Section 4).
    pub(crate) altt_entries: Slab<AlttEntry>,
    /// ALTT bucket order (insertion order per ring id, which is expiry
    /// order — retention Δ is constant).
    pub(crate) altt: RingMap<VecDeque<Handle>>,
    /// The node's timer wheel: every windowed stored query and every ALTT
    /// entry, indexed by the tick its removal becomes unobservable.
    pub(crate) wheel: TimerWheel<ExpiryToken>,
    /// Whether wheel-driven expiry is active (`false` runs the legacy
    /// contact-sweep oracle: state is only reclaimed when a walk touches
    /// it).
    pub(crate) wheel_enabled: bool,
    /// The network's delivery-delay bound δ: a tuple published at `p` can
    /// arrive up to `p + slack`, so wheel deadlines are pushed out by it.
    pub(crate) expiry_slack: SimTime,
    /// Counters of the slab/wheel machinery (slab gauges are filled in at
    /// snapshot time by [`state_counters`](Self::state_counters)).
    pub(crate) state_counters: StateCounters,
    /// Candidate table: cached RIC information per candidate-key ring id.
    pub(crate) candidate_table: RingMap<RicEntry>,
    /// Tracker of tuple arrivals used to answer RIC requests.
    ///
    /// Behind a shared lock because it is the one piece of node state read
    /// *across* shard workers: under the sharded runtime, another shard's
    /// effect phase resolves an RIC rate request against this node while
    /// this node's own shard may concurrently be recording arrivals for
    /// later ticks. All other tables are only ever touched by the shard
    /// that owns the node. The `Arc` lets the engine keep a directory of
    /// every node's tracker without aliasing the rest of the state; the
    /// uncontended lock costs a few nanoseconds on the sequential path.
    pub(crate) ric: Arc<Mutex<RicTracker>>,
    /// Tracker of rewritten-query (`Eval`) arrivals, the query-side twin of
    /// [`ric`](Self::ric): hot-key splitting compares the two streams to
    /// decide which side of a heavy hitter to partition. Only read by the
    /// driver thread between drains (never across shards), so it needs no
    /// lock.
    pub(crate) eval_ric: RicTracker,
    /// Sub-join registry: index from canonical sub-join identity to the
    /// stored entry sharing it (see [`crate::SubJoinRegistry`]).
    pub(crate) subjoins: SubJoinRegistry,
    /// Counters of the work the sub-join registry saved on this node.
    pub(crate) sharing: SharingCounters,
    /// Cache of compiled `WHERE`-side programs, keyed by fingerprint.
    /// Shared engine-wide (every node of one engine holds a handle to the
    /// same cache): programs are pure functions of the sub-join structure
    /// and the trigger relation's schema, both of which are identical on
    /// every node of an engine, so a twin stored on another node reuses the
    /// program instead of recompiling. The lock is only taken when a stored
    /// entry's per-entry trigger slot misses — first trigger of an entry per
    /// relation — so contention between shard workers is negligible.
    pub(crate) programs: Arc<Mutex<ProgramCache>>,
    /// Counters of the compiled-rewrite hot loop on this node.
    pub(crate) compile: CompileCounters,
    /// Value-partitioned trigger index over `stored_queries` (see
    /// [`crate::trigger_index`] for the maintenance contract): every site
    /// that links or unlinks a bucket handle mirrors the change here, so a
    /// tuple arrival probes O(matching) entries instead of O(bucket).
    pub(crate) trigger_index: TriggerIndex,
    /// Scratch buffer reused by [`advance_expiry`](Self::advance_expiry).
    expiry_scratch: Vec<ExpiryToken>,
    /// Scratch buffer reused by the span-bounded eval walk in
    /// [`crate::procedures`] (bucket positions inside the admissible span).
    pub(crate) span_scratch: Vec<u32>,
    /// Incremental count of stored queries (input + rewritten).
    query_count: usize,
    /// Incremental count of stored *rewritten* queries.
    rewritten_count: usize,
    /// Incremental count of stored value-level tuples.
    tuple_count: usize,
}

/// Unlinks `handle` from its ring bucket in O(1): `expected_pos` is the
/// entry's maintained [`StoredQuery::bucket_pos`], verified before use (a
/// positional scan remains as a defensive fallback for externally mutated
/// buckets). The entry `swap_remove` moves into the freed slot gets its
/// `bucket_pos` fixed up, preserving the invariant for later unlinks.
pub(crate) fn unlink_from_bucket(
    bucket: &mut Vec<Handle>,
    queries: &mut Slab<StoredQuery>,
    handle: Handle,
    expected_pos: usize,
) {
    let pos = match bucket.get(expected_pos) {
        Some(h) if *h == handle => Some(expected_pos),
        _ => bucket.iter().position(|h| *h == handle),
    };
    let Some(pos) = pos else { return };
    bucket.swap_remove(pos);
    if let Some(&moved) = bucket.get(pos) {
        if let Some(entry) = queries.get_mut(moved) {
            entry.bucket_pos = pos;
        }
    }
}

/// One drained ALTT bucket: the key ring id and its retained
/// `(tuple, expiry)` entries.
pub type DrainedAlttBucket = (u64, VecDeque<(Arc<Tuple>, SimTime)>);

/// Node state drained for re-homing during churn: the buckets a node no
/// longer owns (or all of them, when the node leaves), ready to be absorbed
/// by the nodes now responsible for the keys.
#[derive(Debug, Default)]
pub struct DrainedState {
    /// Stored queries (each carries its interned key, so the new owner can
    /// be resolved from `key.id()`).
    pub queries: Vec<StoredQuery>,
    /// Value-level tuple buckets, by key ring id.
    pub tuples: Vec<(u64, Vec<Arc<Tuple>>)>,
    /// ALTT buckets (tuple + expiry time), by key ring id.
    pub altt: Vec<DrainedAlttBucket>,
}

impl DrainedState {
    /// Total number of drained items (queries + tuples + ALTT entries).
    pub fn len(&self) -> usize {
        self.queries.len()
            + self.tuples.iter().map(|(_, b)| b.len()).sum::<usize>()
            + self.altt.iter().map(|(_, b)| b.len()).sum::<usize>()
    }

    /// Whether nothing was drained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl NodeState {
    /// Creates the empty state of node `id`.
    pub fn new(id: Id) -> Self {
        NodeState {
            id,
            queries: Slab::new(),
            stored_queries: RingMap::default(),
            tuples: Slab::new(),
            stored_tuples: RingMap::default(),
            stored_tuple_times: RingMap::default(),
            altt_entries: Slab::new(),
            altt: RingMap::default(),
            wheel: TimerWheel::new(),
            wheel_enabled: true,
            expiry_slack: 1,
            state_counters: StateCounters::new(),
            candidate_table: RingMap::default(),
            ric: Arc::new(Mutex::new(RicTracker::new())),
            eval_ric: RicTracker::new(),
            subjoins: SubJoinRegistry::new(),
            sharing: SharingCounters::new(),
            programs: Arc::new(Mutex::new(ProgramCache::default())),
            compile: CompileCounters::new(),
            trigger_index: TriggerIndex::new(),
            expiry_scratch: Vec::new(),
            span_scratch: Vec::new(),
            query_count: 0,
            rewritten_count: 0,
            tuple_count: 0,
        }
    }

    /// Selects the expiry mode and the deadline slack (the network's delay
    /// bound δ). The engine calls this on every node it creates.
    pub(crate) fn configure_expiry(&mut self, wheel: bool, slack: SimTime) {
        self.wheel_enabled = wheel;
        self.expiry_slack = slack;
    }

    /// Selects indexed tuple-arrival probing or the linear-walk oracle.
    /// The engine calls this on every node it creates, before any state is
    /// stored.
    pub(crate) fn configure_trigger_index(&mut self, enabled: bool) {
        self.trigger_index.configure(enabled);
    }

    /// Snapshot of this node's trigger-index probe counters.
    pub fn probe_counters(&self) -> ProbeCounters {
        self.trigger_index.counters()
    }

    /// Locked access to this node's RIC tracker.
    pub fn ric(&self) -> MutexGuard<'_, RicTracker> {
        self.ric.lock().expect("ric lock poisoned")
    }

    /// A shared handle to this node's RIC tracker (used by the sharded
    /// runtime's rate directory).
    pub(crate) fn ric_handle(&self) -> Arc<Mutex<RicTracker>> {
        Arc::clone(&self.ric)
    }

    /// Points this node at `cache` as its compiled-program cache. The engine
    /// calls this on every node it creates so the whole ring shares one
    /// cache (see the field docs on [`programs`](Self::programs)).
    pub(crate) fn share_programs(&mut self, cache: Arc<Mutex<ProgramCache>>) {
        self.programs = cache;
    }

    /// Read access to this node's `Eval`-arrival tracker (the query-side
    /// heat signal of hot-key splitting).
    pub fn eval_ric(&self) -> &RicTracker {
        &self.eval_ric
    }

    /// Read access to this node's sharing counters.
    pub fn sharing(&self) -> &SharingCounters {
        &self.sharing
    }

    /// Read access to this node's compiled-rewrite counters.
    pub fn compile_counters(&self) -> &CompileCounters {
        &self.compile
    }

    /// Snapshot of this node's slab/wheel gauges and expiry counters.
    pub fn state_counters(&self) -> StateCounters {
        let mut counters = self.state_counters;
        counters.query_slab_live = self.queries.len() as u64;
        counters.query_slab_high_water = self.queries.high_water() as u64;
        counters.tuple_slab_live = self.tuples.len() as u64;
        counters.tuple_slab_high_water = self.tuples.high_water() as u64;
        counters.altt_slab_live = self.altt_entries.len() as u64;
        counters.altt_slab_high_water = self.altt_entries.high_water() as u64;
        counters.wheel_scheduled = self.wheel.len() as u64;
        counters
    }

    /// Read access to this node's sub-join registry.
    pub fn subjoins(&self) -> &SubJoinRegistry {
        &self.subjoins
    }

    /// Per-delivery wheel advance, batched: deadline pops only reclaim
    /// memory early — answer validity is decided by the explicit window and
    /// retention filters on every walk (sweep mode never pops at all and is
    /// differentially verified equivalent) — so the delivery hot path lets
    /// the wheel lag up to [`EXPIRY_STRIDE`] ticks and pays the slot
    /// crossing once per stride instead of once per delivery tick.
    /// Drain-end flushes and the differential GC advance fully via
    /// [`advance_expiry`](Self::advance_expiry).
    pub(crate) fn advance_expiry_batched(&mut self, target: SimTime) {
        if target.saturating_sub(self.wheel.now()) < EXPIRY_STRIDE {
            return;
        }
        self.advance_expiry(target);
    }

    /// Advances the node's timer wheel to `target` and removes every stored
    /// query and ALTT entry whose deadline passed. Called by the drivers at
    /// each delivery's tick (idempotent per tick) and once more at the end
    /// of a drain; no-op in sweep mode.
    ///
    /// The target must never exceed the earliest tick of a delivery still
    /// to be handled at this node: deadlines guarantee unobservability only
    /// for deliveries strictly after them (which is why the drivers pass
    /// the delivery tick `at`, not a clock that may run ahead of it).
    pub(crate) fn advance_expiry(&mut self, target: SimTime) {
        if !self.wheel_enabled || target <= self.wheel.now() {
            return;
        }
        let mut due = std::mem::take(&mut self.expiry_scratch);
        self.wheel.advance(target, &mut due);
        for token in due.drain(..) {
            match token {
                ExpiryToken::Query(handle) => self.pop_expired_query(handle),
                ExpiryToken::Altt(handle) => self.pop_expired_altt(handle),
            }
        }
        self.expiry_scratch = due;
    }

    /// Applies one popped query deadline. A stale token (entry already
    /// removed by contact expiry or churn migration) fails the slab's
    /// generation check and costs nothing further.
    fn pop_expired_query(&mut self, handle: Handle) {
        let Some(expired) = self.queries.remove(handle) else { return };
        let ring = expired.key.ring();
        if let Some(bucket) = self.stored_queries.get_mut(&ring) {
            unlink_from_bucket(bucket, &mut self.queries, handle, expired.bucket_pos);
            if bucket.is_empty() {
                self.stored_queries.remove(&ring);
            }
        }
        self.trigger_index.remove(ring, handle, &expired);
        self.unregister_subjoin(ring, &expired, handle);
        self.query_count -= 1;
        if !expired.pending.is_input() {
            self.rewritten_count -= 1;
        }
        self.state_counters.wheel_pops += 1;
    }

    /// Applies one popped ALTT deadline (stale tokens skipped as above).
    fn pop_expired_altt(&mut self, handle: Handle) {
        let Some(entry) = self.altt_entries.remove(handle) else { return };
        if let Some(bucket) = self.altt.get_mut(&entry.ring) {
            // Deadlines are monotone per bucket (retention Δ is constant)
            // and the wheel pops in deadline order, so the handle is the
            // front entry in all but pathological interleavings: pop it in
            // O(1) instead of scanning the bucket. The positional scan
            // stays as the fallback for out-of-order pops.
            if bucket.front() == Some(&handle) {
                bucket.pop_front();
            } else if let Some(pos) = bucket.iter().position(|h| *h == handle) {
                bucket.remove(pos);
            }
            if bucket.is_empty() {
                self.altt.remove(&entry.ring);
            }
        }
        self.state_counters.wheel_pops += 1;
    }

    /// Drops the registry slot of a removed entry, if it still points at it.
    fn unregister_subjoin(&mut self, ring: u64, removed: &StoredQuery, handle: Handle) {
        if let Some(fp) = removed.fingerprint {
            let window = (
                removed.pending.window_start,
                removed.pending.window_min,
                removed.pending.window_max,
            );
            self.subjoins.unregister(ring, fp, window, handle);
        }
    }

    /// Removes every expired stored query and ALTT entry by scanning the
    /// full tables — the O(stored) sweep the timer wheel replaces. Kept as
    /// the sweep-mode garbage collector so differential harnesses can bring
    /// a sweep-mode engine to the same post-expiry state a wheel-mode
    /// engine maintains continuously (where it is a no-op after
    /// [`advance_expiry`](Self::advance_expiry)).
    pub(crate) fn sweep_expired(&mut self, now: SimTime) {
        let rings: Vec<u64> = self.stored_queries.keys().copied().collect();
        for ring in rings {
            let mut bucket = self.stored_queries.remove(&ring).expect("ring collected above");
            let mut idx = 0;
            while idx < bucket.len() {
                let handle = bucket[idx];
                let expired = self
                    .queries
                    .get(handle)
                    .and_then(|entry| query_expiry_deadline(entry, self.expiry_slack))
                    .is_some_and(|deadline| deadline <= now);
                if !expired {
                    idx += 1;
                    continue;
                }
                bucket.swap_remove(idx);
                if let Some(&moved) = bucket.get(idx) {
                    if let Some(entry) = self.queries.get_mut(moved) {
                        entry.bucket_pos = idx;
                    }
                }
                let removed = self.queries.remove(handle).expect("entry resolved above");
                self.trigger_index.remove(ring, handle, &removed);
                self.unregister_subjoin(ring, &removed, handle);
                self.query_count -= 1;
                if !removed.pending.is_input() {
                    self.rewritten_count -= 1;
                }
            }
            if !bucket.is_empty() {
                self.stored_queries.insert(ring, bucket);
            }
        }
        self.altt_gc(now);
    }

    /// Stores a query under its key.
    pub fn store_query(&mut self, stored: StoredQuery) {
        self.store_query_handle(stored);
    }

    fn store_query_handle(&mut self, mut stored: StoredQuery) -> Handle {
        self.query_count += 1;
        if !stored.pending.is_input() {
            self.rewritten_count += 1;
        }
        let ring = stored.key.ring();
        let deadline = if self.wheel_enabled {
            query_expiry_deadline(&stored, self.expiry_slack)
        } else {
            None
        };
        let bucket = self.stored_queries.entry(ring).or_default();
        stored.bucket_pos = bucket.len();
        let handle = self.queries.insert(stored);
        bucket.push(handle);
        self.trigger_index.insert(ring, handle, self.queries.get(handle).expect("inserted above"));
        if let Some(deadline) = deadline {
            self.wheel.insert(deadline, ExpiryToken::Query(handle));
        }
        handle
    }

    /// Stores a query, merging it into a structurally identical entry when
    /// `share` is enabled (the shared sub-join path of Procedures 2/3).
    ///
    /// A merge requires the same index key, the same canonical sub-join
    /// signature (relations, conjuncts, window, semantics flag — `SELECT`
    /// abstracted), the same index level and the same window state
    /// (`start` plus the exact `window_min`/`window_max` span);
    /// `DISTINCT` queries never merge (their duplicate-elimination filter
    /// depends on the `SELECT` list). On a merge the incoming query's
    /// subscribers join the entry's subscriber list and **no** new stored
    /// copy is created. Returns whether the query was merged.
    pub fn store_query_shared(&mut self, mut stored: StoredQuery, share: bool) -> bool {
        if !share || stored.pending.query.distinct() {
            self.store_query(stored);
            return false;
        }
        let ring = stored.key.ring();
        let fp = fingerprint(&stored.pending.query);
        let ws = stored.pending.window_start;
        let window = (ws, stored.pending.window_min, stored.pending.window_max);
        if let Some(handle) = self.subjoins.candidate(ring, fp, window) {
            if let Some(entry) = self.queries.get_mut(handle) {
                // A fingerprint hit is only a candidate: confirm structural
                // equality so a hash collision can never corrupt answers.
                // The full window state must match too — `window_start`
                // drives expiry and `window_min`/`window_max` drive the
                // sliding-window span gate, so twins created by tuples with
                // different publication times must not share one entry.
                let mergeable = entry.level == stored.level
                    && entry.pending.window_start == ws
                    && entry.pending.window_min == stored.pending.window_min
                    && entry.pending.window_max == stored.pending.window_max
                    && !entry.pending.query.distinct()
                    && subjoin_signature_eq(&entry.pending.query, &stored.pending.query);
                if mergeable {
                    let added = stored.pending.subscriber_count() as u64;
                    entry.pending.extra_subscribers.push(stored.pending.primary_subscriber());
                    entry.pending.extra_subscribers.append(&mut stored.pending.extra_subscribers);
                    self.sharing.merged_queries += added;
                    return true;
                }
            }
        }
        stored.fingerprint = Some(fp);
        let handle = self.store_query_handle(stored);
        self.subjoins.register(ring, fp, window, handle);
        false
    }

    /// Debits the storage counters after queries were removed directly from
    /// a bucket obtained via `stored_queries` (window-expiry removals in the
    /// procedures' trigger walks).
    pub(crate) fn debit_removed_queries(&mut self, total: usize, rewritten: usize) {
        self.query_count -= total;
        self.rewritten_count -= rewritten;
    }

    /// Stores a value-level tuple under the key with ring id `key`.
    ///
    /// Buckets are append-only: tuples are only ever removed ring-at-a-time
    /// ([`drain_misplaced`](Self::drain_misplaced)), so a tuple's bucket
    /// position is stable for its lifetime and the publication-time sidecar
    /// can refer to it by position.
    pub fn store_tuple(&mut self, key: u64, tuple: Arc<Tuple>) {
        self.tuple_count += 1;
        let pub_time = tuple.pub_time();
        let handle = self.tuples.insert(tuple);
        let bucket = self.stored_tuples.entry(key).or_default();
        let pos = bucket.len() as u32;
        bucket.push(handle);
        let times = self.stored_tuple_times.entry(key).or_default();
        // Publications usually arrive in publication order, so appending is
        // the common case; a late tuple is binary-inserted. Equal pub_times
        // stay in position order because the new position is the largest.
        match times.last() {
            Some(&(t, _)) if t > pub_time => {
                let at = times.partition_point(|&(t2, _)| t2 <= pub_time);
                times.insert(at, (pub_time, pos));
            }
            _ => times.push((pub_time, pos)),
        }
    }

    /// Inserts a tuple into the ALTT with the given expiry time.
    pub fn altt_insert(&mut self, key: u64, tuple: Arc<Tuple>, expires_at: SimTime) {
        let handle = self.altt_entries.insert(AlttEntry { ring: key, tuple, expires_at });
        self.altt.entry(key).or_default().push_back(handle);
        if self.wheel_enabled {
            // `expiry < now` is the removal rule: the first advance target
            // past `expires_at` pops the entry, exactly when the legacy
            // front-pop would have dropped it on contact.
            self.wheel.insert(expires_at.saturating_add(1), ExpiryToken::Altt(handle));
        }
    }

    /// Drops expired ALTT entries at the front of `key`'s bucket (entries
    /// are in expiry order — retention Δ is constant). This is the legacy
    /// contact-driven reclamation; under wheel expiry the same entries pop
    /// at their deadline and this becomes a cheap no-op.
    pub(crate) fn altt_prune(&mut self, key: u64, now: SimTime) {
        let Some(entries) = self.altt.get_mut(&key) else { return };
        while let Some(&handle) = entries.front() {
            match self.altt_entries.get(handle) {
                Some(entry) if entry.expires_at >= now => break,
                _ => {
                    entries.pop_front();
                    self.altt_entries.remove(handle);
                }
            }
        }
    }

    /// Drops expired ALTT entries for `key` and returns the tuples that are
    /// still retained and were published at or after `min_pub_time`.
    pub fn altt_matching(
        &mut self,
        key: u64,
        now: SimTime,
        min_pub_time: Timestamp,
    ) -> Vec<Arc<Tuple>> {
        self.altt_prune(key, now);
        let Some(entries) = self.altt.get(&key) else { return Vec::new() };
        entries
            .iter()
            .filter_map(|h| self.altt_entries.get(*h))
            .filter(|e| e.tuple.pub_time() >= min_pub_time)
            .map(|e| Arc::clone(&e.tuple))
            .collect()
    }

    /// Garbage-collects every expired ALTT entry by scanning all buckets
    /// (the sweep-mode collector; a wheel-mode node reclaims the same
    /// entries at their deadlines).
    pub fn altt_gc(&mut self, now: SimTime) {
        let slab = &mut self.altt_entries;
        for entries in self.altt.values_mut() {
            while let Some(&handle) = entries.front() {
                match slab.get(handle) {
                    Some(entry) if entry.expires_at >= now => break,
                    _ => {
                        entries.pop_front();
                        slab.remove(handle);
                    }
                }
            }
        }
        self.altt.retain(|_, v| !v.is_empty());
    }

    /// Number of ALTT buckets currently retained (diagnostic).
    pub fn altt_len(&self) -> usize {
        self.altt.len()
    }

    /// Merges piggy-backed RIC observations into the candidate table,
    /// keeping the most recent estimate per key (Section 7).
    pub fn merge_ric(&mut self, infos: &[RicInfo]) {
        for info in infos {
            // Probe with `get_mut` first: the common case is a key that is
            // already cached, which must not pay an insert.
            match self.candidate_table.get_mut(&info.key.ring()) {
                Some(entry) => {
                    if info.observed_at >= entry.observed_at {
                        entry.rate = info.rate;
                        entry.observed_at = info.observed_at;
                    }
                }
                None => {
                    self.candidate_table.insert(
                        info.key.ring(),
                        RicEntry { rate: info.rate, observed_at: info.observed_at },
                    );
                }
            }
        }
    }

    /// Looks up a cached RIC estimate that is still valid at `now` given the
    /// configured validity horizon.
    pub fn cached_ric(
        &self,
        key: u64,
        now: SimTime,
        validity: Option<SimTime>,
    ) -> Option<RicEntry> {
        let entry = self.candidate_table.get(&key)?;
        match validity {
            Some(v) if now.saturating_sub(entry.observed_at) > v => None,
            _ => Some(*entry),
        }
    }

    /// Caches one RIC estimate for a candidate key. Out-of-crate runtimes
    /// (the networked transport) cache through this; in-crate runtimes
    /// write the candidate table directly.
    pub fn cache_ric(&mut self, ring: u64, entry: RicEntry) {
        self.candidate_table.insert(ring, entry);
    }

    /// Drains every bucket whose key ring id fails `keep` (the node is no
    /// longer responsible for it after a membership change), adjusting the
    /// storage counters and the sub-join registry. The drained state is
    /// returned so the engine can hand it to the new owners.
    ///
    /// Wheel tokens of drained entries are left to lapse: the slab removal
    /// bumps each entry's generation, so the tokens are skipped for free at
    /// their deadline and can never touch the re-homed copies (which are
    /// re-scheduled by their new node's [`absorb`](Self::absorb)).
    pub fn drain_misplaced(&mut self, mut keep: impl FnMut(u64) -> bool) -> DrainedState {
        let mut drained = DrainedState::default();
        let rings: Vec<u64> = self.stored_queries.keys().copied().filter(|r| !keep(*r)).collect();
        for ring in rings {
            let bucket = self.stored_queries.remove(&ring).expect("ring collected above");
            self.trigger_index.remove_ring(ring);
            for handle in bucket {
                let stored = self.queries.remove(handle).expect("bucket handles are live");
                self.unregister_subjoin(ring, &stored, handle);
                self.query_count -= 1;
                if !stored.pending.is_input() {
                    self.rewritten_count -= 1;
                }
                drained.queries.push(stored);
            }
        }
        let rings: Vec<u64> = self.stored_tuples.keys().copied().filter(|r| !keep(*r)).collect();
        for ring in rings {
            let bucket = self.stored_tuples.remove(&ring).expect("ring collected above");
            self.stored_tuple_times.remove(&ring);
            let tuples: Vec<Arc<Tuple>> = bucket
                .into_iter()
                .map(|h| self.tuples.remove(h).expect("bucket handles are live"))
                .collect();
            self.tuple_count -= tuples.len();
            drained.tuples.push((ring, tuples));
        }
        let rings: Vec<u64> = self.altt.keys().copied().filter(|r| !keep(*r)).collect();
        for ring in rings {
            let bucket = self.altt.remove(&ring).expect("ring collected above");
            let entries: VecDeque<(Arc<Tuple>, SimTime)> = bucket
                .into_iter()
                .map(|h| {
                    let e = self.altt_entries.remove(h).expect("bucket handles are live");
                    (e.tuple, e.expires_at)
                })
                .collect();
            drained.altt.push((ring, entries));
        }
        drained
    }

    /// Consumes the node's entire application state (graceful leave: the
    /// departing node hands everything to its successors).
    pub fn into_drained(mut self) -> DrainedState {
        self.drain_misplaced(|_| false)
    }

    /// Absorbs re-homed state from another node. Queries go through the
    /// shared path when `share` is enabled, so structurally identical
    /// entries re-merge at their new home; every windowed query and ALTT
    /// entry is re-scheduled on this node's wheel.
    pub fn absorb(&mut self, drained: DrainedState, share: bool) {
        for mut stored in drained.queries {
            // The fingerprint slot is tied to the previous node's slab
            // handle; the shared path recomputes and re-registers it here.
            stored.fingerprint = None;
            self.store_query_shared(stored, share);
        }
        for (ring, bucket) in drained.tuples {
            for tuple in bucket {
                self.store_tuple(ring, tuple);
            }
        }
        for (ring, bucket) in drained.altt {
            for (tuple, expires_at) in bucket {
                self.altt_insert(ring, tuple, expires_at);
            }
        }
    }

    /// Number of queries currently stored (input + rewritten). O(1).
    pub fn stored_query_count(&self) -> usize {
        self.query_count
    }

    /// Number of *rewritten* queries currently stored. O(1).
    pub fn stored_rewritten_count(&self) -> usize {
        self.rewritten_count
    }

    /// Number of value-level tuples currently stored. O(1).
    pub fn stored_tuple_count(&self) -> usize {
        self.tuple_count
    }

    /// Current storage load of the node as the paper defines it: stored
    /// rewritten queries plus stored tuples. O(1) — the counters are
    /// maintained incrementally as state is stored and expired.
    pub fn current_storage_load(&self) -> u64 {
        (self.rewritten_count + self.tuple_count) as u64
    }

    /// Recomputes the storage counters from the tables (test support: the
    /// incremental counters must always agree with a full scan).
    #[cfg(test)]
    fn recount(&self) -> (usize, usize, usize) {
        let entries = || {
            self.stored_queries
                .values()
                .flat_map(|v| v.iter())
                .map(|h| self.queries.get(*h).expect("bucket handles are live"))
        };
        let queries = entries().count();
        let rewritten = entries().filter(|s| !s.pending.is_input()).count();
        let tuples = self.stored_tuples.values().map(Vec::len).sum();
        assert_eq!(queries, self.queries.len(), "bucket handles and slab agree");
        assert_eq!(tuples, self.tuples.len(), "tuple handles and slab agree");
        (queries, rewritten, tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::QueryId;
    use rjoin_query::parse_query;
    use rjoin_relation::Value;

    fn key(text: &str) -> HashedKey {
        HashedKey::new(text)
    }

    fn pending(distinct: bool) -> PendingQuery {
        let sql = if distinct {
            "SELECT DISTINCT R.A FROM R, S WHERE R.A = S.A"
        } else {
            "SELECT R.A FROM R, S WHERE R.A = S.A"
        };
        PendingQuery::input(QueryId { owner: Id(1), seq: 0 }, Id(1), 0, parse_query(sql).unwrap())
    }

    fn tuple(pub_time: u64) -> Arc<Tuple> {
        Arc::new(Tuple::new("R", vec![Value::from(1), Value::from(2)], pub_time))
    }

    #[test]
    fn stored_query_gets_dedup_only_when_distinct() {
        let s = StoredQuery::new(pending(false), key("R+A"), IndexLevel::Attribute);
        assert!(s.dedup.is_none());
        let s = StoredQuery::new(pending(true), key("R+A"), IndexLevel::Attribute);
        assert!(s.dedup.is_some());
    }

    #[test]
    fn storage_counts_exclude_input_queries() {
        let mut state = NodeState::new(Id(7));
        state.store_query(StoredQuery::new(pending(false), key("R+A"), IndexLevel::Attribute));
        let rewritten =
            pending(false).child(parse_query("SELECT 5 FROM S WHERE S.A = 5").unwrap(), Some(3));
        state.store_query(StoredQuery::new(rewritten, key("S+A+i:5"), IndexLevel::Value));
        state.store_tuple(key("R+A+i:1").ring(), tuple(0));

        assert_eq!(state.stored_query_count(), 2);
        assert_eq!(state.stored_rewritten_count(), 1);
        assert_eq!(state.stored_tuple_count(), 1);
        assert_eq!(state.current_storage_load(), 2);
        assert_eq!(
            state.recount(),
            (
                state.stored_query_count(),
                state.stored_rewritten_count(),
                state.stored_tuple_count()
            )
        );
    }

    #[test]
    fn debit_keeps_counters_consistent_with_tables() {
        let mut state = NodeState::new(Id(7));
        let rewritten =
            pending(false).child(parse_query("SELECT 5 FROM S WHERE S.A = 5").unwrap(), Some(3));
        let k = key("S+A+i:5");
        state.store_query(StoredQuery::new(rewritten, k.clone(), IndexLevel::Value));
        state.store_query(StoredQuery::new(pending(false), k.clone(), IndexLevel::Value));
        // Simulate the procedures' expiry removal of the rewritten one: drop
        // its handle from the bucket, its entry from the slab, then debit.
        let handles = state.stored_queries.get(&k.ring()).unwrap().clone();
        for handle in handles {
            if !state.queries.get(handle).unwrap().pending.is_input() {
                state.queries.remove(handle);
                let bucket = state.stored_queries.get_mut(&k.ring()).unwrap();
                let pos = bucket.iter().position(|h| *h == handle).unwrap();
                bucket.swap_remove(pos);
            }
        }
        state.debit_removed_queries(1, 1);

        assert_eq!(state.stored_query_count(), 1);
        assert_eq!(state.stored_rewritten_count(), 0);
        assert_eq!(
            state.recount(),
            (
                state.stored_query_count(),
                state.stored_rewritten_count(),
                state.stored_tuple_count()
            )
        );
    }

    fn input_from(owner: u64, insert_time: u64, sql: &str) -> PendingQuery {
        PendingQuery::input(
            QueryId { owner: Id(owner), seq: owner },
            Id(owner),
            insert_time,
            parse_query(sql).unwrap(),
        )
    }

    #[test]
    fn shared_store_merges_identical_subjoins() {
        let mut state = NodeState::new(Id(7));
        let k = key("R+A");
        let a = input_from(1, 0, "SELECT R.A FROM R, S WHERE R.A = S.A");
        // Same sub-join, different SELECT list and later insertion time.
        let b = input_from(2, 5, "SELECT S.B, R.C FROM R, S WHERE R.A = S.A");
        assert!(
            !state.store_query_shared(StoredQuery::new(a, k.clone(), IndexLevel::Attribute), true)
        );
        assert!(
            state.store_query_shared(StoredQuery::new(b, k.clone(), IndexLevel::Attribute), true)
        );

        // One stored copy carrying both subscribers.
        assert_eq!(state.stored_query_count(), 1);
        let bucket = state.stored_queries.get(&k.ring()).unwrap();
        assert_eq!(bucket.len(), 1);
        let entry = state.queries.get(bucket[0]).unwrap();
        assert_eq!(entry.pending.subscriber_count(), 2);
        assert_eq!(entry.pending.min_insert_time(), 0);
        assert_eq!(entry.pending.extra_subscribers[0].insert_time, 5);
        assert_eq!(state.sharing().merged_queries, 1);
        assert_eq!(state.subjoins().len(), 1);
    }

    #[test]
    fn shared_store_respects_structure_window_start_and_distinct() {
        let mut state = NodeState::new(Id(7));
        let k = key("R+A");
        let base = input_from(1, 0, "SELECT R.A FROM R, S WHERE R.A = S.A");
        assert!(!state
            .store_query_shared(StoredQuery::new(base, k.clone(), IndexLevel::Attribute), true));

        // Different WHERE: no merge.
        let other = input_from(2, 0, "SELECT R.A FROM R, S WHERE R.B = S.A");
        assert!(!state
            .store_query_shared(StoredQuery::new(other, k.clone(), IndexLevel::Attribute), true));
        // DISTINCT: never merged, even with identical structure.
        let distinct = input_from(3, 0, "SELECT DISTINCT R.A FROM R, S WHERE R.A = S.A");
        assert!(!state.store_query_shared(
            StoredQuery::new(distinct, k.clone(), IndexLevel::Attribute),
            true
        ));
        // Different window start: no merge (expiry would diverge).
        let rewritten_a =
            input_from(4, 0, "SELECT R.A, S.B FROM R, S, J WHERE R.A = S.A AND S.B = J.B")
                .child(parse_query("SELECT R.A, 9 FROM R, S WHERE R.A = S.A").unwrap(), Some(3));
        let rewritten_b =
            input_from(5, 0, "SELECT R.A, S.B FROM R, S, J WHERE R.A = S.A AND S.B = J.B")
                .child(parse_query("SELECT R.A, 8 FROM R, S WHERE R.A = S.A").unwrap(), Some(4));
        assert!(!state
            .store_query_shared(StoredQuery::new(rewritten_a, k.clone(), IndexLevel::Value), true));
        assert!(!state
            .store_query_shared(StoredQuery::new(rewritten_b, k.clone(), IndexLevel::Value), true));
        // With sharing disabled nothing ever merges.
        let twin = input_from(6, 0, "SELECT S.B FROM R, S WHERE R.A = S.A");
        assert!(!state
            .store_query_shared(StoredQuery::new(twin, k.clone(), IndexLevel::Attribute), false));

        assert_eq!(state.stored_query_count(), 6);
        assert_eq!(state.sharing().merged_queries, 0);
    }

    /// Regression: two rewritten twins with the same `window_start` but
    /// different contribution spans must not merge — the shared entry's
    /// sliding-window span gate would apply one twin's `[min, max]` to the
    /// other, losing (or wrongly admitting) answers.
    #[test]
    fn shared_store_requires_equal_window_span() {
        let mut state = NodeState::new(Id(7));
        let k = key("J+B+i:3");
        let input = input_from(
            1,
            0,
            "SELECT R.B, J.A FROM R, S, J WHERE R.A = S.A AND S.B = J.B WINDOW SLIDING 8 TUPLES",
        );
        let rewritten = |pub_time: u64| {
            let mut child = input.child(
                parse_query("SELECT 9, J.A FROM J WHERE J.B = 3 WINDOW SLIDING 8 TUPLES").unwrap(),
                Some(10),
            );
            child.note_contribution(pub_time);
            child.note_contribution(10);
            child
        };
        // Same structure, same window_start (10), but spans [5,10] vs [9,10].
        let g1 = rewritten(5);
        let g2 = rewritten(9);
        assert!(!state.store_query_shared(StoredQuery::new(g1, k.clone(), IndexLevel::Value), true));
        assert!(
            !state.store_query_shared(StoredQuery::new(g2, k.clone(), IndexLevel::Value), true),
            "different contribution spans must not share one entry"
        );
        assert_eq!(state.stored_query_count(), 2);
        // An exact twin (same span) still merges.
        let g3 = rewritten(9);
        assert!(state.store_query_shared(StoredQuery::new(g3, k.clone(), IndexLevel::Value), true));
        assert_eq!(state.stored_query_count(), 2);
    }

    #[test]
    fn drain_and_absorb_keep_counters_consistent() {
        let mut donor = NodeState::new(Id(1));
        let k_q = key("R+A");
        let k_t = key("S+B+i:2");
        donor.store_query_shared(
            StoredQuery::new(
                input_from(1, 0, "SELECT R.A FROM R, S WHERE R.A = S.A"),
                k_q.clone(),
                IndexLevel::Attribute,
            ),
            true,
        );
        donor.store_query_shared(
            StoredQuery::new(
                input_from(2, 1, "SELECT R.B FROM R, S WHERE R.A = S.A"),
                k_q.clone(),
                IndexLevel::Attribute,
            ),
            true,
        );
        donor.store_tuple(k_t.ring(), tuple(3));
        donor.altt_insert(k_q.ring(), tuple(4), 99);

        // Drain only the tuple bucket first (simulating partial re-homing).
        let keep_ring = k_q.ring();
        let partial = donor.drain_misplaced(|ring| ring == keep_ring);
        assert_eq!(partial.tuples.len(), 1);
        assert_eq!(donor.stored_tuple_count(), 0);
        assert_eq!(donor.stored_query_count(), 1, "shared entry counts once");

        // Now everything.
        let rest = donor.into_drained();
        assert_eq!(rest.queries.len(), 1);
        assert_eq!(rest.queries[0].pending.subscriber_count(), 2);
        assert_eq!(rest.altt.len(), 1);

        let mut receiver = NodeState::new(Id(2));
        receiver.absorb(partial, true);
        receiver.absorb(rest, true);
        assert_eq!(receiver.stored_query_count(), 1);
        assert_eq!(receiver.stored_tuple_count(), 1);
        assert_eq!(receiver.altt_len(), 1);
        assert_eq!(receiver.current_storage_load(), 1);
        // The re-homed shared entry is registered again: a structurally
        // identical newcomer merges into it at the new home.
        let late = input_from(9, 2, "SELECT S.A FROM R, S WHERE R.A = S.A");
        assert!(receiver
            .store_query_shared(StoredQuery::new(late, k_q.clone(), IndexLevel::Attribute), true));
        assert_eq!(receiver.stored_query_count(), 1);
    }

    #[test]
    fn altt_expires_entries() {
        let mut state = NodeState::new(Id(7));
        let k = key("R+A").ring();
        state.altt_insert(k, tuple(5), 10);
        state.altt_insert(k, tuple(6), 20);
        // At time 15 the first entry has expired.
        let matching = state.altt_matching(k, 15, 0);
        assert_eq!(matching.len(), 1);
        assert_eq!(matching[0].pub_time(), 6);
        // GC removes empty buckets.
        state.altt_gc(100);
        assert_eq!(state.altt_len(), 0);
        assert_eq!(state.altt_entries.len(), 0, "slab reclaimed too");
    }

    #[test]
    fn altt_matching_respects_min_pub_time() {
        let mut state = NodeState::new(Id(7));
        let k = key("R+A").ring();
        state.altt_insert(k, tuple(5), 100);
        state.altt_insert(k, tuple(9), 100);
        let matching = state.altt_matching(k, 10, 6);
        assert_eq!(matching.len(), 1);
        assert_eq!(matching[0].pub_time(), 9);
    }

    /// A rewritten query with a sliding window anchored at `start`
    /// (`WINDOW SLIDING 8 TUPLES`, so `last_window_pub = start + 7` and the
    /// wheel deadline is `start + 8 + slack`).
    fn windowed_rewritten(owner: u64, start: u64) -> PendingQuery {
        input_from(
            owner,
            0,
            "SELECT R.B, J.A FROM R, S, J WHERE R.A = S.A AND S.B = J.B WINDOW SLIDING 8 TUPLES",
        )
        .child(
            parse_query("SELECT 9, J.A FROM J WHERE J.B = 3 WINDOW SLIDING 8 TUPLES").unwrap(),
            Some(start),
        )
    }

    #[test]
    fn wheel_pops_expired_windowed_queries() {
        let mut state = NodeState::new(Id(7));
        let k = key("J+B+i:3");
        state.store_query_shared(
            StoredQuery::new(windowed_rewritten(1, 10), k.clone(), IndexLevel::Value),
            true,
        );
        assert_eq!(state.stored_query_count(), 1);
        assert_eq!(state.subjoins().len(), 1);
        // Deadline is 10 + 8 + 1 (slack): one tick earlier nothing pops.
        state.advance_expiry(18);
        assert_eq!(state.stored_query_count(), 1);
        state.advance_expiry(19);
        assert_eq!(state.stored_query_count(), 0);
        assert_eq!(state.stored_rewritten_count(), 0);
        assert_eq!(state.queries.len(), 0, "slab entry reclaimed");
        assert!(!state.stored_queries.contains_key(&k.ring()), "empty bucket dropped");
        assert_eq!(state.subjoins().len(), 0, "registry slot unregistered");
        assert_eq!(state.state_counters().wheel_pops, 1);
        assert_eq!(state.recount(), (0, 0, 0));
    }

    #[test]
    fn wheel_pops_expired_altt_entries() {
        let mut state = NodeState::new(Id(7));
        let k = key("R+A").ring();
        state.altt_insert(k, tuple(5), 10);
        state.altt_insert(k, tuple(6), 20);
        // `expiry < now` is the removal rule: at 10 both entries survive.
        state.advance_expiry(10);
        assert_eq!(state.altt_entries.len(), 2);
        state.advance_expiry(11);
        assert_eq!(state.altt_entries.len(), 1);
        state.advance_expiry(21);
        assert_eq!(state.altt_entries.len(), 0);
        assert_eq!(state.altt_len(), 0, "empty bucket dropped");
        assert_eq!(state.state_counters().wheel_pops, 2);
    }

    #[test]
    fn stale_wheel_tokens_are_skipped() {
        let mut state = NodeState::new(Id(7));
        let k = key("J+B+i:3");
        state.store_query(StoredQuery::new(
            windowed_rewritten(1, 10),
            k.clone(),
            IndexLevel::Value,
        ));
        // Contact expiry got there first: the entry leaves through the
        // bucket path, as the procedures' trigger walk would remove it.
        let handle = state.stored_queries.get(&k.ring()).unwrap()[0];
        state.queries.remove(handle);
        state.stored_queries.remove(&k.ring());
        state.debit_removed_queries(1, 1);
        // The wheel still holds the token; popping it must be a no-op.
        state.advance_expiry(100);
        assert_eq!(state.stored_query_count(), 0);
        assert_eq!(state.state_counters().wheel_pops, 0, "stale tokens do not count as pops");
    }

    #[test]
    fn sweep_mode_matches_wheel_after_gc() {
        let build = |wheel: bool| {
            let mut state = NodeState::new(Id(7));
            state.configure_expiry(wheel, 1);
            let k = key("J+B+i:3");
            state.store_query_shared(
                StoredQuery::new(windowed_rewritten(1, 10), k.clone(), IndexLevel::Value),
                true,
            );
            state.store_query_shared(
                StoredQuery::new(windowed_rewritten(2, 40), k.clone(), IndexLevel::Value),
                true,
            );
            state.altt_insert(k.ring(), tuple(5), 12);
            state.altt_insert(k.ring(), tuple(6), 60);
            // Advance + sweep: in wheel mode the sweep is a no-op after the
            // advance; in sweep mode the sweep does all the work.
            state.advance_expiry(30);
            state.sweep_expired(30);
            state
        };
        let wheel = build(true);
        let sweep = build(false);
        assert_eq!(wheel.stored_query_count(), 1);
        assert_eq!(sweep.stored_query_count(), wheel.stored_query_count());
        assert_eq!(sweep.stored_rewritten_count(), wheel.stored_rewritten_count());
        assert_eq!(sweep.altt_entries.len(), wheel.altt_entries.len());
        assert_eq!(wheel.state_counters().wheel_pops, 2, "one query + one ALTT entry popped");
        assert_eq!(sweep.state_counters().wheel_pops, 0);
        assert_eq!(sweep.state_counters().wheel_scheduled, 0, "sweep mode schedules nothing");
    }

    /// Churn re-homing through the slab: the donor's wheel tokens go stale
    /// with the drain, and the receiver re-schedules the absorbed state on
    /// its own wheel.
    #[test]
    fn absorbed_state_expires_on_the_receivers_wheel() {
        let mut donor = NodeState::new(Id(1));
        let k = key("J+B+i:3");
        donor.store_query_shared(
            StoredQuery::new(windowed_rewritten(1, 10), k.clone(), IndexLevel::Value),
            true,
        );
        donor.altt_insert(k.ring(), tuple(5), 12);
        let drained = donor.drain_misplaced(|_| false);
        assert_eq!(donor.stored_query_count(), 0);

        let mut receiver = NodeState::new(Id(2));
        receiver.absorb(drained, true);
        assert_eq!(receiver.stored_query_count(), 1);
        assert_eq!(receiver.subjoins().len(), 1, "re-registered at the new home");
        // The donor's wheel still holds tokens for the migrated entries;
        // advancing it must not disturb anything (the slabs are empty).
        donor.advance_expiry(1000);
        assert_eq!(donor.state_counters().wheel_pops, 0);
        // The receiver's wheel owns the deadlines now.
        receiver.advance_expiry(1000);
        assert_eq!(receiver.stored_query_count(), 0);
        assert_eq!(receiver.altt_entries.len(), 0);
        assert_eq!(receiver.subjoins().len(), 0);
        assert_eq!(receiver.state_counters().wheel_pops, 2);
    }

    #[test]
    fn candidate_table_keeps_most_recent_and_respects_validity() {
        let mut state = NodeState::new(Id(7));
        let k = key("R+A");
        state.merge_ric(&[RicInfo { key: k.clone(), rate: 5, observed_at: 10 }]);
        state.merge_ric(&[RicInfo { key: k.clone(), rate: 9, observed_at: 20 }]);
        state.merge_ric(&[RicInfo { key: k.clone(), rate: 1, observed_at: 15 }]); // older, ignored
        let entry = state.cached_ric(k.ring(), 25, None).unwrap();
        assert_eq!(entry.rate, 9);
        assert_eq!(entry.observed_at, 20);
        // Validity horizon rejects stale entries.
        assert!(state.cached_ric(k.ring(), 200, Some(50)).is_none());
        assert!(state.cached_ric(k.ring(), 60, Some(50)).is_some());
        assert!(state.cached_ric(key("unknown").ring(), 0, None).is_none());
    }
}
