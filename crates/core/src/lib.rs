//! RJoin: continuous multi-way equi-joins on top of a DHT.
//!
//! This crate implements the paper's contribution — the **recursive join
//! (RJoin)** algorithm — on top of the substrates provided by the rest of
//! the workspace (`rjoin-dht` for Chord, `rjoin-net` for the simulated
//! messaging layer, `rjoin-query` for the query model).
//!
//! The algorithm in one paragraph: continuous queries wait in the network,
//! indexed under a key derived from their `WHERE` clause. Every published
//! tuple is indexed under 2·k keys (attribute level and value level for each
//! of its k attributes, Procedure 1). A tuple arriving at a node triggers the
//! queries stored there (Procedure 2): each triggered query is *rewritten*
//! into a query with one fewer join and re-indexed at the node responsible
//! for one of its remaining keys, chosen using RIC (rate of incoming tuples)
//! information (Sections 6–7); when a rewritten query's `WHERE` clause
//! becomes `true`, the answer is sent directly to the node that submitted the
//! original query. Rewritten queries arriving at a node are also matched
//! against value-level tuples already stored there (Procedure 3). Sliding
//! windows (Section 5), duplicate elimination for `DISTINCT` queries
//! (Section 4) and the ALTT extension for completeness under message delays
//! (Section 4) are all supported.
//!
//! # Hot-path architecture
//!
//! Three design decisions keep the per-message cost flat:
//!
//! * **Interned key identities** — every index key is converted once into a
//!   [`rjoin_dht::HashedKey`] (canonical string as `Arc<str>` plus the ring
//!   identifier from a single SHA-1). Messages carry the interned key, and
//!   all per-node tables ([`NodeState`]'s stored queries/tuples, ALTT,
//!   candidate table, RIC tracker) and per-key load maps are keyed by the
//!   precomputed `u64` ring id, so the delivery path performs no string
//!   formatting, no re-hashing and no SipHash-over-string map probes.
//! * **Zero-copy tuple fan-out** — Procedure 1 indexes a tuple under
//!   `2 × arity` keys; the payload travels as one shared `Arc<Tuple>` and
//!   value-level stores/ALTT retain `Arc` handles, so publication performs a
//!   single allocation regardless of arity.
//! * **O(active) node state** — each node's stored queries, value-level
//!   tuples and ALTT entries live in generational slabs with stable
//!   handles (`slab` module), and every windowed query and ALTT entry is
//!   additionally indexed by its deadline on a per-node hierarchical timer
//!   wheel (`expiry` module). The drivers advance each node's wheel to the
//!   delivery tick before handling a message, popping exactly the entries
//!   whose window can no longer admit any future tuple — so expiry costs
//!   O(popped), bucket walks only ever visit live entries, and removals
//!   (expiry, churn drains) invalidate external references (wheel tokens,
//!   sub-join registry slots) for free via the slab generation check
//!   instead of rebuilding indexes. The legacy contact-driven sweep
//!   remains available as a differential oracle via
//!   [`EngineConfig::with_wheel_expiry`]`(false)`.
//! * **Tick-batched delivery loop** — the network's event queue is a
//!   constant-δ bucket queue ([`rjoin_net::Network::pop_tick`]); the engine
//!   drains one tick at a time, runs the purely node-local Procedures 1–3
//!   per destination node (optionally across cores via
//!   [`RJoinEngine::run_until_quiescent_parallel`], which uses
//!   `std::thread::scope` over per-node delivery groups), and then applies
//!   all global effects — load counters, answer recording, RIC-aware
//!   placement and sends — in deterministic `(at, seq)` order. Sequential
//!   and parallel driving are byte-identical by construction.
//!
//! # Sharded event-queue runtime
//!
//! The tick-batched loop still serializes every cascade through one global
//! queue: a chain of Eval/Index hops advances one tick at a time no matter
//! how many independent cascades are in flight. With
//! [`EngineConfig::with_shards`]`(n > 1)`,
//! [`RJoinEngine::run_until_quiescent_parallel`] instead drains on the
//! **sharded runtime** ([`rjoin_net::ShardedNetwork`]): the ring's nodes
//! are split into `n` contiguous identifier ranges, each owning its own
//! bucket queue, local virtual clock, per-shard `NodeState` slice and
//! persistent worker. Intra-shard messages never leave their shard;
//! cross-shard messages go through inbox handoff under a conservative
//! watermark protocol (lookahead = δ ≥ 1, provably deadlock-free — see the
//! `rjoin_net` docs), so independent cascades on different shards advance
//! concurrently with no global barrier. Determinism is preserved by
//! construction: intra-tick delivery order comes from hash-chained message
//! *lineages* instead of a global sequence counter, placement randomness
//! is derived per decision from the triggering lineage, and remote RIC
//! reads are watermark-synchronized pure snapshots — making every
//! observable (answers, loads, traffic) identical across shard counts
//! `> 1` and across repeated runs (`tests/determinism.rs` additionally
//! pins an exact-identity configuration where sharded equals sequential
//! byte for byte). On a single-core host the same shard structures are
//! driven cooperatively by the calling thread, so results never depend on
//! the machine. Shard-aware accounting (intra/cross-shard deliveries,
//! tick activations, blocked remote reads) is reported through
//! [`ExperimentStats`] and [`RJoinEngine::shard_runtime_stats`].
//!
//! # Hot-key splitting (share-based partitioning)
//!
//! Identifier movement balances load that is spread over many keys, but a
//! single hot key is a point mass: it hashes to one identifier, and its
//! entire load lands on whichever node owns it. With
//! [`EngineConfig::with_hot_key_splitting`] the engine watches each index
//! key's tuple and `Eval` arrival rates (the existing RIC telemetry plus a
//! per-node `Eval` twin) at publication time, and a key crossing the
//! heavy-hitter threshold is split into `s` deterministic sub-keys salted
//! onto the ring ([`rjoin_dht::HashedKey::split_part`]). The sub-keys form
//! an `r × c` share grid ([`split::SplitGrid`], shaped by the observed
//! tuple/`Eval` ratio): tuples route to one row, queries register at one
//! column, and the two meet in exactly one cell — so the answer stream is
//! **identical** to the unsplit run (oracle-checked under churn and under
//! every sharded driver in `tests/split.rs`) while the hot key's load
//! spreads over `s` nodes. Activation is a quiescent-point operation like
//! churn: stored state migrates to the cells where future arrivals will
//! look for it. This is the first optimization that changes *where work
//! lands* rather than how fast it runs; identifier movement
//! (`rjoin_dht::balance`) composes with it as the lower tier.
//!
//! # Two-plan query planner (hypercube placement for cyclic shapes)
//!
//! Every submitted query is classified at the driver by its join graph
//! ([`rjoin_query::plan::JoinGraph`], GYO ear removal): **acyclic** shapes
//! — everything the paper's figures use — run on the pipeline of rewrites
//! above, while **cyclic** shapes (triangles, 4-cycles, cliques), whose
//! rewriting cascade the pipeline cannot finish without re-visiting an
//! attribute, are placed as an *n-dimensional hypercube*
//! ([`split::HypercubeGrid`], generalizing the 2-D split grid): per-axis
//! shares `s_1 × … × s_k` are allocated from a cell budget
//! ([`EngineConfig::with_hypercube_cells`]), one query replica registers in
//! every cell at submission, and each published tuple is routed to the
//! subcube fixed by hashing its bound attributes
//! ([`split::partition_for_value`]) — so any joining combination meets in
//! exactly one cell and completes exactly once. Cell-local evaluation keeps
//! the partials in the cell (no `Eval` traffic); `DISTINCT` collapses at
//! the owner. A cost model picks between the two plans for acyclic shapes
//! (pipeline ≈ one hop per join; hypercube ≈ one registration per cell);
//! cyclic shapes always take the hypercube, or are rejected with
//! [`rjoin_query::QueryError::CyclicShape`] when the planner is disabled
//! ([`EngineConfig::with_hypercube_planner`]`(false)`). Planner decisions
//! and replication costs are reported in [`ExperimentStats::planner`].
//!
//! # Shared sub-join evaluation (multi-query optimization)
//!
//! With [`EngineConfig::with_subjoin_sharing`] enabled, every node keeps a
//! [`SubJoinRegistry`]: queries whose canonical sub-join structure
//! ([`rjoin_query::fingerprint`] — `FROM` + `WHERE` + window, `SELECT`
//! abstracted) matches an entry already stored under the same key are merged
//! into it as extra [`Subscriber`]s instead of being stored separately. The
//! shared entry is rewritten and re-indexed **once** per triggering tuple —
//! subscribers' `SELECT` continuations are resolved in lockstep — and a
//! completed `WHERE` clause fans one answer out to every subscriber. On
//! overlapping workloads this cuts stored-query load and `Eval`/RIC traffic
//! roughly by the overlap factor while producing the same per-query answers
//! as the unshared engine (`DISTINCT` queries are never shared; the
//! insertion-time filter is enforced per subscriber). Savings are reported
//! in [`ExperimentStats::sharing`].
//!
//! # Churn
//!
//! [`RJoinEngine::join_node`] and [`RJoinEngine::leave_node`] change ring
//! membership mid-run, re-homing the application state (stored queries,
//! value-level tuples, ALTT entries) to the nodes now responsible for the
//! keys — the state handover a real DHT performs. Combined with the ALTT the
//! engine keeps matching the centralized oracle while nodes come and go
//! (`tests/oracle.rs`).
//!
//! The main entry point is [`RJoinEngine`]:
//!
//! ```
//! use rjoin_core::{EngineConfig, RJoinEngine};
//! use rjoin_query::parse_query;
//! use rjoin_relation::{Schema, Catalog, Tuple, Value};
//!
//! let mut catalog = Catalog::new();
//! catalog.register(Schema::new("R", ["A", "B"]).unwrap()).unwrap();
//! catalog.register(Schema::new("S", ["A", "B"]).unwrap()).unwrap();
//!
//! let mut engine = RJoinEngine::new(EngineConfig::default(), catalog, 32);
//! let origin = engine.node_ids()[0];
//! let q = parse_query("SELECT R.B, S.B FROM R, S WHERE R.A = S.A").unwrap();
//! let qid = engine.submit_query(origin, q).unwrap();
//! engine.run_until_quiescent().unwrap();
//!
//! engine.publish_tuple(origin, Tuple::new("R", vec![Value::from(1), Value::from(10)], 1)).unwrap();
//! engine.publish_tuple(origin, Tuple::new("S", vec![Value::from(1), Value::from(20)], 2)).unwrap();
//! engine.run_until_quiescent().unwrap();
//!
//! let answers = engine.answers().rows_for(qid);
//! assert_eq!(answers, vec![vec![Value::from(10), Value::from(20)]]);
//! ```

mod answers;
mod config;
mod dedup;
mod engine;
mod error;
mod expiry;
mod messages;
mod node_id;
mod node_state;
mod placement;
mod procedures;
mod ric;
mod shard_driver;
mod shared;
mod slab;
pub mod split;
mod stats;
mod trigger_index;

pub use answers::{AnswerLog, AnswerRecord};
pub use config::{EngineConfig, PlacementStrategy};
pub use dedup::DedupFilter;
pub use engine::RJoinEngine;
pub use error::EngineError;
pub use messages::{HypercubeRef, PendingQuery, QueryId, RJoinMessage, RicInfo, Subscriber};
pub use node_id::NodeId;
pub use node_state::{DrainedAlttBucket, DrainedState, NodeState, RicEntry, StoredQuery};
pub use ric::RicTracker;
pub use shared::SubJoinRegistry;
pub use split::{partition_for_tuple, partition_for_value, HypercubeGrid, SplitEntry, SplitMap};
pub use stats::ExperimentStats;

/// The per-node processing pipeline, exposed for out-of-process drivers.
///
/// The engine's delivery loop is split into a *node-local* phase
/// ([`handle_node_msg`](pipeline::handle_node_msg): Procedures 1–3 against
/// one [`NodeState`]) and an *effect* phase
/// ([`perform_actions_in`](pipeline::perform_actions_in) /
/// [`dispatch_query_in`](pipeline::dispatch_query_in): answer delivery and
/// the complete Sections 6–7 placement pipeline, generic over an
/// [`EffectEnv`](pipeline::EffectEnv) that supplies the transport, clock,
/// RIC reads and randomness). The embedded engine drives both phases over
/// the simulated network; a networked deployment (the `rjoin_transport`
/// crate) drives the *same* functions over TCP — one node process per
/// [`NodeState`] built with
/// [`standalone_node_state`](pipeline::standalone_node_state), so the two
/// modes can never drift apart in algorithm or cost accounting.
pub mod pipeline {
    pub use crate::engine::{
        dispatch_query_in, handle_node_msg, perform_actions_in, standalone_node_state, EffectEnv,
        LoadDelta, TickEffect,
    };
    pub use crate::placement::choose_candidate;
    pub use crate::procedures::Action;
}

/// Traffic classes used when accounting messages, so that the share of
/// traffic spent on RIC requests can be reported separately (as the paper's
/// figures do).
pub mod traffic_class {
    use rjoin_net::TrafficClass;

    /// Tuple-indexing messages (Procedure 1).
    pub const TUPLE: TrafficClass = 0;
    /// Input-query indexing messages.
    pub const QUERY_INDEX: TrafficClass = 1;
    /// Rewritten-query re-indexing messages (`Eval`).
    pub const EVAL: TrafficClass = 2;
    /// Answers delivered to the querying node.
    pub const ANSWER: TrafficClass = 3;
    /// RIC-information requests and responses (Sections 6–7).
    pub const RIC: TrafficClass = 4;
}
