//! Collection of answers at the querying nodes.

use crate::QueryId;
use rjoin_net::SimTime;
use rjoin_relation::Value;
use std::collections::{HashMap, HashSet};

/// One answer delivered to the node that submitted a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerRecord {
    /// The query this answer belongs to.
    pub query: QueryId,
    /// The answer row (the query's fully resolved `SELECT` list).
    pub row: Vec<Value>,
    /// Simulation time at which the answer was produced (the final rewrite).
    pub produced_at: SimTime,
    /// Simulation time at which it reached the querying node.
    pub received_at: SimTime,
}

/// The log of all answers received by querying nodes during a run.
#[derive(Debug, Clone, Default)]
pub struct AnswerLog {
    records: Vec<AnswerRecord>,
    per_query: HashMap<QueryId, Vec<usize>>,
    seen_rows: HashMap<QueryId, HashSet<Vec<Value>>>,
}

impl AnswerLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one delivered answer.
    pub fn record(&mut self, record: AnswerRecord) {
        self.seen_rows.entry(record.query).or_default().insert(record.row.clone());
        self.per_query.entry(record.query).or_default().push(self.records.len());
        self.records.push(record);
    }

    /// Records an answer only if the same row has not been delivered for the
    /// same query before. This is the querying node's local filter used for
    /// `SELECT DISTINCT` queries (set semantics, Section 4): the in-network
    /// projection filter removes most duplicates close to where they would
    /// be produced, and this owner-side filter removes the remainder (rows
    /// that are produced through different rewriting paths). Returns whether
    /// the row was new.
    pub fn record_distinct(&mut self, record: AnswerRecord) -> bool {
        let seen = self.seen_rows.entry(record.query).or_default();
        if !seen.insert(record.row.clone()) {
            return false;
        }
        self.per_query.entry(record.query).or_default().push(self.records.len());
        self.records.push(record);
        true
    }

    /// Total number of answers delivered.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no answer has been delivered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All answer records, in delivery order.
    pub fn records(&self) -> &[AnswerRecord] {
        &self.records
    }

    /// Number of answers delivered for `query`.
    pub fn count_for(&self, query: QueryId) -> usize {
        self.per_query.get(&query).map(Vec::len).unwrap_or(0)
    }

    /// Number of distinct queries that received at least one answer.
    pub fn queries_with_answers(&self) -> usize {
        self.per_query.len()
    }

    /// The answer rows delivered for `query`, in delivery order.
    pub fn rows_for(&self, query: QueryId) -> Vec<Vec<Value>> {
        self.per_query
            .get(&query)
            .map(|indices| indices.iter().map(|&i| self.records[i].row.clone()).collect())
            .unwrap_or_default()
    }

    /// Whether `query` received two identical rows (used to check the
    /// duplicate-freedom guarantees of Section 4 in tests).
    pub fn has_duplicate_rows(&self, query: QueryId) -> bool {
        let rows = self.rows_for(query);
        let mut sorted = rows.clone();
        sorted.sort();
        sorted.windows(2).any(|w| w[0] == w[1])
    }

    /// Average latency (received - produced) over all answers, in ticks.
    pub fn mean_latency(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let total: u64 =
            self.records.iter().map(|r| r.received_at.saturating_sub(r.produced_at)).sum();
        total as f64 / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjoin_dht::Id;

    fn qid(seq: u64) -> QueryId {
        QueryId { owner: Id(9), seq }
    }

    fn record(seq: u64, row: Vec<i64>, produced: u64, received: u64) -> AnswerRecord {
        AnswerRecord {
            query: qid(seq),
            row: row.into_iter().map(Value::from).collect(),
            produced_at: produced,
            received_at: received,
        }
    }

    #[test]
    fn records_are_grouped_by_query() {
        let mut log = AnswerLog::new();
        log.record(record(1, vec![1, 2], 5, 6));
        log.record(record(1, vec![3, 4], 7, 9));
        log.record(record(2, vec![5], 8, 8));
        assert_eq!(log.len(), 3);
        assert_eq!(log.count_for(qid(1)), 2);
        assert_eq!(log.count_for(qid(2)), 1);
        assert_eq!(log.count_for(qid(3)), 0);
        assert_eq!(log.queries_with_answers(), 2);
        assert_eq!(
            log.rows_for(qid(1)),
            vec![vec![Value::from(1), Value::from(2)], vec![Value::from(3), Value::from(4)]]
        );
    }

    #[test]
    fn duplicate_detection() {
        let mut log = AnswerLog::new();
        log.record(record(1, vec![1, 2], 0, 0));
        log.record(record(1, vec![1, 2], 1, 1));
        log.record(record(2, vec![1, 2], 1, 1));
        assert!(log.has_duplicate_rows(qid(1)));
        assert!(!log.has_duplicate_rows(qid(2)));
    }

    #[test]
    fn record_distinct_filters_repeated_rows() {
        let mut log = AnswerLog::new();
        assert!(log.record_distinct(record(1, vec![1, 2], 0, 0)));
        assert!(!log.record_distinct(record(1, vec![1, 2], 5, 6)));
        assert!(log.record_distinct(record(1, vec![3], 5, 6)));
        assert!(log.record_distinct(record(2, vec![1, 2], 5, 6)), "other queries are independent");
        assert_eq!(log.count_for(qid(1)), 2);
        assert!(!log.has_duplicate_rows(qid(1)));
    }

    #[test]
    fn latency_is_averaged() {
        let mut log = AnswerLog::new();
        assert_eq!(log.mean_latency(), 0.0);
        log.record(record(1, vec![1], 10, 12));
        log.record(record(1, vec![2], 10, 14));
        assert!((log.mean_latency() - 3.0).abs() < 1e-9);
    }
}
