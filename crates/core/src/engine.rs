//! The RJoin engine: the simulation driver tying nodes, network and the
//! algorithm together.

use crate::answers::{AnswerLog, AnswerRecord};
use crate::config::{EngineConfig, PlacementStrategy};
use crate::error::EngineError;
use crate::messages::{PendingQuery, QueryId, RJoinMessage, RicInfo};
use crate::node_state::{NodeState, RicEntry};
use crate::placement::choose_candidate;
use crate::procedures::{self, Action, ProcCtx};
use crate::stats::ExperimentStats;
use crate::traffic_class;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rjoin_dht::Id;
use rjoin_metrics::{Distribution, LoadMap};
use rjoin_net::{Delivery, Network, NetworkConfig, SimTime, TrafficStats};
use rjoin_query::{candidate_keys, tuple_index_keys, IndexKey, JoinQuery};
use rjoin_relation::{Catalog, Tuple};
use std::collections::{BTreeMap, HashMap, HashSet};

/// The RJoin engine.
///
/// It owns a simulated Chord network (via [`rjoin_net::Network`]), one
/// [`NodeState`] per node, and the metric counters the paper's experiments
/// report. Drivers submit continuous queries, publish tuples and then drain
/// the event queue with [`run_until_quiescent`](Self::run_until_quiescent).
#[derive(Debug)]
pub struct RJoinEngine {
    config: EngineConfig,
    catalog: Catalog,
    network: Network<RJoinMessage>,
    nodes: HashMap<Id, NodeState>,
    node_ids: Vec<Id>,
    rng: StdRng,
    next_query_seq: u64,
    answers: AnswerLog,
    /// Queries submitted with `SELECT DISTINCT`: their answers pass through
    /// the owner-side duplicate filter.
    distinct_queries: HashSet<QueryId>,
    /// Cumulative query-processing load per node (paper definition).
    qpl: LoadMap<Id>,
    /// Cumulative storage-load additions per node (paper definition).
    sl: LoadMap<Id>,
    /// The same loads broken down by index key, used for identifier-movement
    /// load-balancing analysis (Figure 9).
    qpl_by_key: LoadMap<String>,
    sl_by_key: LoadMap<String>,
}

impl RJoinEngine {
    /// Creates an engine with `num_nodes` Chord nodes, all fully stabilized.
    pub fn new(config: EngineConfig, catalog: Catalog, num_nodes: usize) -> Self {
        let mut network = Network::new(NetworkConfig {
            delay: config.network_delay,
            successor_list_len: config.successor_list_len,
        });
        let node_ids = network.bootstrap(num_nodes, "rjoin-node");
        let nodes = node_ids.iter().map(|id| (*id, NodeState::new(*id))).collect();
        let rng = StdRng::seed_from_u64(config.seed);
        RJoinEngine {
            config,
            catalog,
            network,
            nodes,
            node_ids,
            rng,
            next_query_seq: 0,
            answers: AnswerLog::new(),
            distinct_queries: HashSet::new(),
            qpl: LoadMap::new(),
            sl: LoadMap::new(),
            qpl_by_key: LoadMap::new(),
            sl_by_key: LoadMap::new(),
        }
    }

    /// The identifiers of all nodes, in join order.
    pub fn node_ids(&self) -> &[Id] {
        &self.node_ids
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.network.now()
    }

    /// Advances the simulation clock (models idle time between events).
    pub fn advance_time(&mut self, ticks: SimTime) {
        let target = self.network.now() + ticks;
        self.network.advance_to(target);
    }

    /// Read access to the network-level traffic counters.
    pub fn traffic(&self) -> &TrafficStats {
        self.network.traffic()
    }

    /// The answers delivered so far.
    pub fn answers(&self) -> &AnswerLog {
        &self.answers
    }

    /// Cumulative query-processing load per node.
    pub fn qpl_per_node(&self) -> &LoadMap<Id> {
        &self.qpl
    }

    /// Cumulative storage load per node.
    pub fn sl_per_node(&self) -> &LoadMap<Id> {
        &self.sl
    }

    /// Query-processing load per index key, keyed by the ring identifier the
    /// key hashes to (input for identifier-movement rebalancing).
    pub fn qpl_by_key_id(&self) -> BTreeMap<Id, u64> {
        self.qpl_by_key.iter().map(|(k, v)| (Id::hash_key(k), v)).collect()
    }

    /// Storage load per index key, keyed by the ring identifier the key
    /// hashes to.
    pub fn sl_by_key_id(&self) -> BTreeMap<Id, u64> {
        self.sl_by_key.iter().map(|(k, v)| (Id::hash_key(k), v)).collect()
    }

    /// Total query-processing load across all nodes.
    pub fn total_qpl(&self) -> u64 {
        self.qpl.total()
    }

    /// Total (cumulative) storage load across all nodes.
    pub fn total_sl(&self) -> u64 {
        self.sl.total()
    }

    /// Read access to a node's RJoin state (used by tests and examples).
    pub fn node_state(&self, id: Id) -> Option<&NodeState> {
        self.nodes.get(&id)
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.network.in_flight()
    }

    /// Submits a continuous query from node `origin`. The query is validated
    /// against the catalog and indexed in the network; returns its id.
    pub fn submit_query(&mut self, origin: Id, query: JoinQuery) -> Result<QueryId, EngineError> {
        if !self.nodes.contains_key(&origin) {
            return Err(EngineError::UnknownNode { id: origin });
        }
        query.validate(&self.catalog)?;
        let id = QueryId { owner: origin, seq: self.next_query_seq };
        self.next_query_seq += 1;
        if query.distinct() {
            self.distinct_queries.insert(id);
        }
        let pending = PendingQuery::input(id, origin, self.network.now(), query);
        self.dispatch_query(origin, pending, true)?;
        Ok(id)
    }

    /// Publishes a tuple from node `origin`: the tuple is validated and
    /// indexed under every attribute-level and value-level key (Procedure 1).
    pub fn publish_tuple(&mut self, origin: Id, tuple: Tuple) -> Result<(), EngineError> {
        if !self.nodes.contains_key(&origin) {
            return Err(EngineError::UnknownNode { id: origin });
        }
        self.catalog.validate_tuple(&tuple)?;
        // The simulation clock never runs behind publication times, so RIC
        // windows and window joins see consistent time.
        self.network.advance_to(tuple.pub_time());
        let schema = self.catalog.require_schema(tuple.relation())?.clone();
        let keys = tuple_index_keys(&tuple, &schema);
        let items: Vec<(Id, RJoinMessage)> = keys
            .into_iter()
            .map(|key| {
                let key_id = Id::hash_key(&key.to_key_string());
                let level = key.level();
                (
                    key_id,
                    RJoinMessage::NewTuple { tuple: tuple.clone(), key, level, publisher: origin },
                )
            })
            .collect();
        self.network.multi_send(origin, items, traffic_class::TUPLE)?;
        Ok(())
    }

    /// Processes a single delivery from the network. Returns `false` when no
    /// message was in flight.
    pub fn step(&mut self) -> Result<bool, EngineError> {
        match self.network.pop_next() {
            Some(delivery) => {
                self.handle_delivery(delivery)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Drains the event queue until no message is in flight. Returns the
    /// number of messages processed.
    pub fn run_until_quiescent(&mut self) -> Result<u64, EngineError> {
        let mut processed = 0u64;
        while self.step()? {
            processed += 1;
        }
        Ok(processed)
    }

    /// Builds a statistics snapshot in the units the paper's figures use.
    pub fn stats(&self) -> ExperimentStats {
        let traffic = self.network.traffic();
        let traffic_values: Vec<u64> =
            self.node_ids.iter().map(|id| traffic.sent_by(*id)).collect();
        let qpl_values: Vec<u64> = self.node_ids.iter().map(|id| self.qpl.get(id)).collect();
        let sl_values: Vec<u64> = self.node_ids.iter().map(|id| self.sl.get(id)).collect();
        let storage_values: Vec<u64> =
            self.node_ids.iter().map(|id| self.nodes[id].current_storage_load()).collect();
        let qpl_dist = Distribution::from_values(qpl_values);
        let sl_dist = Distribution::from_values(sl_values);
        ExperimentStats {
            nodes: self.node_ids.len(),
            traffic_total: traffic.total_sent(),
            traffic_ric: traffic.total_sent_class(traffic_class::RIC),
            traffic_per_node: Distribution::from_values(traffic_values),
            qpl_participants: qpl_dist.participants(),
            sl_participants: sl_dist.participants(),
            qpl_total: self.qpl.total(),
            sl_total: self.sl.total(),
            qpl: qpl_dist,
            sl: sl_dist,
            current_storage: Distribution::from_values(storage_values),
            answers: self.answers.len() as u64,
        }
    }

    fn handle_delivery(&mut self, delivery: Delivery<RJoinMessage>) -> Result<(), EngineError> {
        let node_id = delivery.to;
        if !self.nodes.contains_key(&node_id) {
            // The node left or failed after the message was sent: the message
            // is lost, exactly as in a real deployment.
            return Ok(());
        }
        match delivery.msg {
            RJoinMessage::NewTuple { tuple, key, level, .. } => {
                let key_string = key.to_key_string();
                // QPL: a tuple received in order to search for matching
                // stored queries.
                self.qpl.incr(node_id);
                self.qpl_by_key.incr(key_string.clone());
                if level == rjoin_query::IndexLevel::Value {
                    // SL: the value-level copy will be stored.
                    self.sl.incr(node_id);
                    self.sl_by_key.incr(key_string);
                }
                let actions = {
                    let ctx = ProcCtx {
                        catalog: &self.catalog,
                        config: &self.config,
                        now: self.network.now(),
                    };
                    let state = self.nodes.get_mut(&node_id).expect("checked above");
                    procedures::handle_new_tuple(state, &ctx, &tuple, &key, level)
                };
                self.perform_actions(node_id, actions)?;
            }
            RJoinMessage::IndexQuery { pending, key } => {
                let actions = {
                    let ctx = ProcCtx {
                        catalog: &self.catalog,
                        config: &self.config,
                        now: self.network.now(),
                    };
                    let state = self.nodes.get_mut(&node_id).expect("checked above");
                    procedures::handle_index_query(state, &ctx, pending, &key)
                };
                self.perform_actions(node_id, actions)?;
            }
            RJoinMessage::Eval { pending, key, carried_ric } => {
                let key_string = key.to_key_string();
                // QPL: a rewritten query received in order to search stored
                // tuples; SL: the rewritten query is stored.
                self.qpl.incr(node_id);
                self.qpl_by_key.incr(key_string.clone());
                self.sl.incr(node_id);
                self.sl_by_key.incr(key_string);
                let actions = {
                    let ctx = ProcCtx {
                        catalog: &self.catalog,
                        config: &self.config,
                        now: self.network.now(),
                    };
                    let state = self.nodes.get_mut(&node_id).expect("checked above");
                    if self.config.reuse_ric {
                        state.merge_ric(&carried_ric);
                    }
                    procedures::handle_eval(state, &ctx, pending, &key)
                };
                self.perform_actions(node_id, actions)?;
            }
            RJoinMessage::Answer { query, row, produced_at } => {
                let record = AnswerRecord { query, row, produced_at, received_at: delivery.at };
                if self.distinct_queries.contains(&query) {
                    self.answers.record_distinct(record);
                } else {
                    self.answers.record(record);
                }
            }
        }
        Ok(())
    }

    fn perform_actions(&mut self, from: Id, actions: Vec<Action>) -> Result<(), EngineError> {
        for action in actions {
            match action {
                Action::DeliverAnswer { query, owner, row } => {
                    let produced_at = self.network.now();
                    self.network.send_direct(
                        from,
                        owner,
                        RJoinMessage::Answer { query, row, produced_at },
                        traffic_class::ANSWER,
                    );
                }
                Action::Reindex { pending } => {
                    self.dispatch_query(from, pending, false)?;
                }
            }
        }
        Ok(())
    }

    /// Chooses the index key for a query (input or rewritten) and sends it
    /// there, charging RIC traffic according to Sections 6 and 7.
    fn dispatch_query(
        &mut self,
        from: Id,
        pending: PendingQuery,
        is_input: bool,
    ) -> Result<(), EngineError> {
        let mut candidates = candidate_keys(&pending.query);
        if candidates.is_empty() {
            // A query with no conjuncts left but remaining relations (e.g. a
            // single-relation scan): fall back to an attribute-level key of
            // the first remaining relation.
            if let Some(rel) = pending.query.relations().first() {
                if let Ok(schema) = self.catalog.require_schema(rel) {
                    if let Some(attr) = schema.attribute(0) {
                        candidates.push(IndexKey::attribute(rel.clone(), attr));
                    }
                }
            }
        }
        if candidates.is_empty() {
            return Err(EngineError::NoCandidateKey);
        }
        if !is_input && self.config.rewritten_value_level_only {
            // Section 3 base algorithm: rewritten queries always go to the
            // value level (each rewrite introduces at least one value-level
            // candidate, so the filtered list is non-empty for chain joins).
            let value_only: Vec<IndexKey> = candidates
                .iter()
                .filter(|c| c.level() == rjoin_query::IndexLevel::Value)
                .cloned()
                .collect();
            if !value_only.is_empty() {
                candidates = value_only;
            }
        }

        let strategy = self.config.placement;
        let needs_rates =
            matches!(strategy, PlacementStrategy::RicAware | PlacementStrategy::Worst);
        let now = self.network.now();
        let mut rates = vec![0u64; candidates.len()];

        if needs_rates {
            let mut prev_hop = from;
            let mut requests = 0usize;
            for (i, candidate) in candidates.iter().enumerate() {
                let key_string = candidate.to_key_string();
                let key_id = Id::hash_key(&key_string);
                // Reuse cached RIC information when allowed (Section 7).
                if strategy == PlacementStrategy::RicAware && self.config.reuse_ric {
                    if let Some(entry) = self
                        .nodes
                        .get(&from)
                        .and_then(|s| s.cached_ric(&key_string, now, self.config.ct_validity))
                    {
                        rates[i] = entry.rate;
                        continue;
                    }
                }
                let owner = self.network.owner_of(key_id)?;
                let rate = self
                    .nodes
                    .get_mut(&owner)
                    .map(|s| s.ric.rate(&key_string, now, self.config.ric_window))
                    .unwrap_or(0);
                rates[i] = rate;
                if strategy == PlacementStrategy::RicAware {
                    // Chained RIC request: previous hop forwards the request
                    // to the next candidate (k * O(log N) messages total).
                    self.network.charge_route(prev_hop, key_id, traffic_class::RIC)?;
                    prev_hop = owner;
                    requests += 1;
                    if self.config.reuse_ric {
                        if let Some(state) = self.nodes.get_mut(&from) {
                            state
                                .candidate_table
                                .insert(key_string, RicEntry { rate, observed_at: now });
                        }
                    }
                }
                // The Worst baseline uses oracle knowledge: no traffic is
                // charged for it (it exists only to bound the design space).
            }
            if strategy == PlacementStrategy::RicAware && requests > 0 {
                // The last contacted candidate returns the collected RIC
                // information (and every candidate's address) in one hop.
                self.network.charge_direct(prev_hop, traffic_class::RIC);
            }
        }

        let chosen = choose_candidate(&candidates, &rates, strategy, &mut self.rng);
        let key = candidates[chosen].clone();
        let key_string = key.to_key_string();
        let key_id = Id::hash_key(&key_string);
        let class = if is_input { traffic_class::QUERY_INDEX } else { traffic_class::EVAL };

        let carried_ric: Vec<RicInfo> = if !is_input
            && self.config.reuse_ric
            && strategy == PlacementStrategy::RicAware
        {
            candidates
                .iter()
                .zip(&rates)
                .map(|(c, r)| RicInfo { key: c.to_key_string(), rate: *r, observed_at: now })
                .collect()
        } else {
            Vec::new()
        };

        let msg = if is_input {
            RJoinMessage::IndexQuery { pending, key: key.clone() }
        } else {
            RJoinMessage::Eval { pending, key: key.clone(), carried_ric }
        };

        if strategy == PlacementStrategy::RicAware {
            // After the RIC exchange the chooser knows the address of every
            // candidate node, so the query itself travels in one hop.
            let owner = self.network.owner_of(key_id)?;
            self.network.send_direct(from, owner, msg, class);
        } else {
            self.network.send(from, key_id, msg, class)?;
        }
        Ok(())
    }
}
