//! The RJoin engine: the simulation driver tying nodes, network and the
//! algorithm together.

use crate::answers::{AnswerLog, AnswerRecord};
use crate::config::{EngineConfig, PlacementStrategy};
use crate::error::EngineError;
use crate::messages::{HypercubeRef, PendingQuery, QueryId, RJoinMessage, RicInfo};
use crate::node_id::NodeId;
use crate::node_state::DrainedState;
use crate::node_state::{NodeState, ProgramCache, RicEntry};
use crate::placement::choose_candidate;
use crate::procedures::{self, Action, ProcCtx};
use crate::split::{
    choose_grid, partition_for_query, partition_for_tuple, partition_for_value, HypercubeGrid,
    SplitGrid, SplitMap,
};
use crate::stats::ExperimentStats;
use crate::traffic_class;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rjoin_dht::{HashedKey, Id, RingBuildHasher};
use rjoin_metrics::{
    CompileCounters, Distribution, LoadMap, PlannerCounters, ProbeCounters, ShardRuntimeStats,
    SharingCounters, SplitCounters, StateCounters,
};
use rjoin_net::{Delivery, KeyRouter, Network, NetworkConfig, SimTime, TrafficStats, Transport};
use rjoin_query::plan::{self, QueryShape};
use rjoin_query::{candidate_keys, tuple_index_keys, IndexKey, IndexLevel, JoinQuery, QueryError};
use rjoin_relation::{Catalog, Name, Tuple};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Per-key load maps are keyed by precomputed ring identifiers, so they use
/// the cheap ring-id hasher instead of SipHash.
pub(crate) type KeyLoadMap = LoadMap<u64, RingBuildHasher>;

/// Per-node load maps and the node-state map itself are keyed by node
/// identifiers, which are ring identifiers too — same cheap hasher.
pub(crate) type NodeLoadMap = LoadMap<Id, RingBuildHasher>;
pub(crate) type NodeMap = HashMap<Id, NodeState, RingBuildHasher>;

/// Minimum number of node-bound deliveries in one tick before the parallel
/// driver spawns worker threads; smaller ticks are processed inline because
/// thread startup would dominate.
const PARALLEL_TICK_MIN_DELIVERIES: usize = 24;

/// One registered hypercube plan: the cell space of a hypercube-planned
/// query and how tuples of each participating relation pin coordinates in
/// it. Registered at submission (driver thread, between drains — the same
/// discipline as [`SplitMap`]) and read-only afterwards, so publication-time
/// routing is deterministic across drivers.
#[derive(Debug)]
struct HypercubePlacement {
    /// The plan's cell key space, as carried on its [`PendingQuery`].
    hcref: HypercubeRef,
    /// The share grid cells are linearized through.
    grid: HypercubeGrid,
    /// Per `FROM` relation, the `(axis, column offset)` pairs a tuple of
    /// that relation binds. A relation absent from this list does not
    /// participate in the plan; one with an empty list replicates to every
    /// cell (it pins no axis).
    bindings: Vec<(Name, Vec<(usize, usize)>)>,
}

/// The query-processing / storage-load counter increments one delivery
/// charges, resolved during the node-local phase and applied in the
/// deterministic effect phase.
pub struct LoadDelta {
    /// Ring id of the index key the delivery was addressed to.
    pub key: u64,
    /// Whether the delivery also adds storage load (value-level tuple copy
    /// or a rewritten query being stored).
    pub sl: bool,
}

/// The deferred, engine-global effect of one delivery. Produced during the
/// node-local phase (possibly on a worker thread), applied strictly in
/// `(at, seq)` order afterwards (per shard, in `(at, lineage)` order under
/// the sharded driver) so all drivers observe the same event order.
pub enum TickEffect {
    /// The destination node left the ring; the message is lost.
    Lost,
    /// An answer reached the node that submitted the query.
    Answer(AnswerRecord),
    /// A node-local handler ran: apply its load counters and actions.
    Node { node: Id, load: Option<LoadDelta>, actions: Vec<Action> },
}

/// All deliveries of one tick addressed to one node, bundled with that
/// node's state (temporarily taken out of the engine's node map so groups
/// can be processed on independent threads without aliasing).
struct NodeGroup {
    node: Id,
    state: NodeState,
    /// `(position in the tick batch, arrival tick, message)` in `(at, seq)`
    /// order.
    items: Vec<(usize, SimTime, RJoinMessage)>,
    /// Effects produced by the handlers, same positions as `items`.
    effects: Vec<(usize, TickEffect)>,
}

impl NodeGroup {
    /// Runs every handler of this group in sequence-number order. Touches
    /// only this group's [`NodeState`] plus the shared read-only context,
    /// which is what makes whole groups safe to run concurrently.
    fn run(&mut self, catalog: &Catalog, config: &EngineConfig, now: SimTime) {
        self.effects.reserve(self.items.len());
        for (pos, at, msg) in self.items.drain(..) {
            let effect = handle_node_msg(&mut self.state, catalog, config, now, at, self.node, msg);
            self.effects.push((pos, effect));
        }
    }
}

/// Runs the node-local part of one delivery (Procedures 1–3): mutates only
/// `state`, reads only the shared catalog/config. Shared by the serial, the
/// tick-parallel and the sharded drivers so all produce identical effects.
pub fn handle_node_msg(
    state: &mut NodeState,
    catalog: &Catalog,
    config: &EngineConfig,
    now: SimTime,
    at: SimTime,
    node: Id,
    msg: RJoinMessage,
) -> TickEffect {
    // Pop expired state before the message is handled. The target is the
    // delivery tick `at`, never the clock: a sharded handler's clock can run
    // ahead of `at`, and a deadline is only provably unobservable for
    // deliveries strictly after it.
    state.advance_expiry_batched(at);
    let ctx = ProcCtx { catalog, config, now, at };
    let (load, actions) = match msg {
        RJoinMessage::NewTuple { tuple, key, level, .. } => {
            // QPL: a tuple received in order to search for matching stored
            // queries; SL: value-level copies are stored.
            let load = LoadDelta { key: key.ring(), sl: level == IndexLevel::Value };
            let actions = procedures::handle_new_tuple(state, &ctx, &tuple, &key, level);
            (Some(load), actions)
        }
        RJoinMessage::IndexQuery { pending, key, level } => {
            let actions = procedures::handle_index_query(state, &ctx, pending, &key, level);
            (None, actions)
        }
        RJoinMessage::Eval { pending, key, level, carried_ric } => {
            // QPL: a rewritten query received in order to search stored
            // tuples; SL: the rewritten query is stored.
            let load = LoadDelta { key: key.ring(), sl: true };
            if config.reuse_ric {
                state.merge_ric(&carried_ric);
            }
            let actions = procedures::handle_eval(state, &ctx, pending, &key, level);
            (Some(load), actions)
        }
        RJoinMessage::Answer { .. } => {
            unreachable!("answers are engine-global and never reach a node handler")
        }
    };
    TickEffect::Node { node, load, actions }
}

/// Builds a [`NodeState`] configured the way the engine constructors
/// configure theirs — expiry machinery and trigger index per the config,
/// with a node-private compiled-program cache — for out-of-process drivers
/// (such as `rjoin_transport`'s node processes) that run
/// [`handle_node_msg`] themselves. Nodes built this way do not share a
/// program cache; each compiles its own rewrite templates on first trigger.
pub fn standalone_node_state(id: Id, config: &EngineConfig) -> NodeState {
    let mut state = NodeState::new(id);
    state.configure_expiry(config.wheel_expiry, config.network_delay);
    state.configure_trigger_index(config.trigger_index);
    state
}

/// The RJoin engine.
///
/// It owns a simulated Chord network (via [`rjoin_net::Network`]), one
/// [`NodeState`] per node, and the metric counters the paper's experiments
/// report. Drivers submit continuous queries, publish tuples and then drain
/// the event queue with [`run_until_quiescent`](Self::run_until_quiescent)
/// (or its multicore twin,
/// [`run_until_quiescent_parallel`](Self::run_until_quiescent_parallel)).
#[derive(Debug)]
pub struct RJoinEngine {
    pub(crate) config: EngineConfig,
    pub(crate) catalog: Catalog,
    pub(crate) network: Network<RJoinMessage>,
    pub(crate) nodes: NodeMap,
    pub(crate) node_ids: Vec<Id>,
    pub(crate) rng: StdRng,
    next_query_seq: u64,
    pub(crate) answers: AnswerLog,
    /// Queries submitted with `SELECT DISTINCT`: their answers pass through
    /// the owner-side duplicate filter.
    pub(crate) distinct_queries: HashSet<QueryId>,
    /// Cumulative query-processing load per node (paper definition).
    pub(crate) qpl: NodeLoadMap,
    /// Cumulative storage-load additions per node (paper definition).
    pub(crate) sl: NodeLoadMap,
    /// The same loads broken down by index key (ring identifier), used for
    /// identifier-movement load-balancing analysis (Figure 9).
    pub(crate) qpl_by_key: KeyLoadMap,
    pub(crate) sl_by_key: KeyLoadMap,
    /// Cumulative sharded-runtime observability counters (all zero until a
    /// sharded drain runs).
    pub(crate) shard_runtime: ShardRuntimeStats,
    /// Active hot-key splits. Mutated only between drains (split activation
    /// is a quiescent-point operation, like membership churn); read-only
    /// during drains, which keeps the sharded driver's concurrent dispatch
    /// deterministic.
    pub(crate) splits: SplitMap,
    /// Cumulative hot-key splitting counters.
    pub(crate) split_counters: SplitCounters,
    /// Active hypercube plans, in submission order. Like [`SplitMap`],
    /// mutated only on the driver thread (at query submission, between
    /// drains) and read-only during drains.
    hypercubes: Vec<HypercubePlacement>,
    /// Cumulative two-plan planner counters. Updated only on the driver
    /// thread (plan choice at submission, tuple routing at publication), so
    /// no per-shard tally is needed.
    planner_counters: PlannerCounters,
    /// The engine-wide compiled-program cache every [`NodeState`] holds a
    /// handle to (kept here so nodes joining through churn adopt it too).
    programs: Arc<Mutex<ProgramCache>>,
}

impl RJoinEngine {
    /// Creates an engine with `num_nodes` Chord nodes, all fully stabilized.
    ///
    /// Equivalent to [`simulated`](Self::simulated); kept as the historical
    /// name so existing drivers keep compiling.
    pub fn new(config: EngineConfig, catalog: Catalog, num_nodes: usize) -> Self {
        Self::simulated(config, catalog, num_nodes)
    }

    /// The embedded-simulation convenience constructor: builds a simulated
    /// network from the configuration (delay bound, successor-list length),
    /// bootstraps `num_nodes` fully stabilized Chord nodes named
    /// `rjoin-node-{i}`, and hands it to
    /// [`with_transport`](Self::with_transport).
    pub fn simulated(config: EngineConfig, catalog: Catalog, num_nodes: usize) -> Self {
        let mut network = Network::new(NetworkConfig {
            delay: config.network_delay,
            successor_list_len: config.successor_list_len,
        });
        let node_ids = network.bootstrap(num_nodes, "rjoin-node");
        Self::with_transport_and_nodes(config, catalog, network, node_ids)
    }

    /// Creates an engine over an injected transport. The caller builds and
    /// configures the network (membership, delay bound) however it likes —
    /// the engine adopts the ring's current members as its nodes, in ring
    /// order, and the transport's clock/delay govern delivery from then on.
    ///
    /// The embedded-simulation path ([`simulated`](Self::simulated)) is a
    /// thin wrapper over this constructor. Real networked deployments run
    /// the same per-node pipeline out of process instead — see the
    /// [`pipeline`](crate::pipeline) module, which `rjoin_transport` drives
    /// over TCP; both modes are served through one facade surface.
    pub fn with_transport(
        config: EngineConfig,
        catalog: Catalog,
        network: Network<RJoinMessage>,
    ) -> Self {
        let node_ids: Vec<Id> = network.dht().node_ids().collect();
        Self::with_transport_and_nodes(config, catalog, network, node_ids)
    }

    /// Shared tail of the constructors: one program cache and one configured
    /// [`NodeState`] per member, adopting `node_ids` in the given order.
    fn with_transport_and_nodes(
        config: EngineConfig,
        catalog: Catalog,
        network: Network<RJoinMessage>,
        node_ids: Vec<Id>,
    ) -> Self {
        let programs = Arc::new(Mutex::new(ProgramCache::default()));
        let nodes = node_ids
            .iter()
            .map(|id| {
                let mut state = NodeState::new(*id);
                state.share_programs(Arc::clone(&programs));
                state.configure_expiry(config.wheel_expiry, config.network_delay);
                state.configure_trigger_index(config.trigger_index);
                (*id, state)
            })
            .collect();
        let rng = StdRng::seed_from_u64(config.seed);
        RJoinEngine {
            config,
            catalog,
            network,
            nodes,
            node_ids,
            rng,
            next_query_seq: 0,
            answers: AnswerLog::new(),
            distinct_queries: HashSet::new(),
            qpl: NodeLoadMap::new(),
            sl: NodeLoadMap::new(),
            qpl_by_key: KeyLoadMap::new(),
            sl_by_key: KeyLoadMap::new(),
            shard_runtime: ShardRuntimeStats::default(),
            splits: SplitMap::new(),
            split_counters: SplitCounters::new(),
            hypercubes: Vec::new(),
            planner_counters: PlannerCounters::new(),
            programs,
        }
    }

    /// The identifiers of all nodes, in join order.
    pub fn node_ids(&self) -> &[Id] {
        &self.node_ids
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.network.now()
    }

    /// Advances the simulation clock (models idle time between events).
    pub fn advance_time(&mut self, ticks: SimTime) {
        let target = self.network.now() + ticks;
        self.network.advance_to(target);
    }

    /// Read access to the network-level traffic counters.
    pub fn traffic(&self) -> &TrafficStats {
        self.network.traffic()
    }

    /// The answers delivered so far.
    pub fn answers(&self) -> &AnswerLog {
        &self.answers
    }

    /// Cumulative query-processing load per node.
    pub fn qpl_per_node(&self) -> &NodeLoadMap {
        &self.qpl
    }

    /// Cumulative storage load per node.
    pub fn sl_per_node(&self) -> &NodeLoadMap {
        &self.sl
    }

    /// Query-processing load per index key, keyed by the ring identifier the
    /// key hashes to (input for identifier-movement rebalancing).
    pub fn qpl_by_key_id(&self) -> BTreeMap<Id, u64> {
        self.qpl_by_key.iter().map(|(k, v)| (Id(*k), v)).collect()
    }

    /// Storage load per index key, keyed by the ring identifier the key
    /// hashes to.
    pub fn sl_by_key_id(&self) -> BTreeMap<Id, u64> {
        self.sl_by_key.iter().map(|(k, v)| (Id(*k), v)).collect()
    }

    /// Total query-processing load across all nodes.
    pub fn total_qpl(&self) -> u64 {
        self.qpl.total()
    }

    /// Total (cumulative) storage load across all nodes.
    pub fn total_sl(&self) -> u64 {
        self.sl.total()
    }

    /// Read access to a node's RJoin state (used by tests and examples).
    pub fn node_state(&self, id: Id) -> Option<&NodeState> {
        self.nodes.get(&id)
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.network.in_flight()
    }

    /// Submits a continuous query from node `origin`. The query is validated
    /// against the catalog, planned (pipeline of rewrites vs hypercube
    /// placement, `rjoin_query::plan`) and indexed in the network; returns
    /// its id.
    ///
    /// A query with a cyclic join graph is rejected with
    /// [`QueryError::CyclicShape`] when the hypercube planner is disabled
    /// ([`EngineConfig::with_hypercube_planner`]) — the rewrite pipeline
    /// cannot express cyclic shapes.
    pub fn submit_query(
        &mut self,
        origin: impl Into<NodeId>,
        query: JoinQuery,
    ) -> Result<QueryId, EngineError> {
        let origin = origin.into().id();
        if !self.nodes.contains_key(&origin) {
            return Err(EngineError::UnknownNode { id: origin });
        }
        query.validate(&self.catalog)?;
        let id = QueryId { owner: origin, seq: self.next_query_seq };
        let hypercube = self.plan_submission(&query, id)?;
        self.next_query_seq += 1;
        if query.distinct() {
            self.distinct_queries.insert(id);
        }
        let mut pending = PendingQuery::input(id, origin, self.network.now(), query);
        pending.hypercube = hypercube;
        self.dispatch_query(origin, pending, true)?;
        Ok(id)
    }

    /// Runs the two-plan cost model for a validated query about to be
    /// submitted under `id`. Returns `None` when the query stays on the
    /// rewrite pipeline; otherwise registers the hypercube placement
    /// (resolving each axis member to its column offset) and returns the
    /// cell-space reference to carry on the [`PendingQuery`].
    fn plan_submission(
        &mut self,
        query: &JoinQuery,
        id: QueryId,
    ) -> Result<Option<HypercubeRef>, EngineError> {
        let graph = plan::JoinGraph::build(query);
        if graph.classes.is_empty() {
            self.planner_counters.pipeline_plans += 1;
            return Ok(None);
        }
        let shape = graph.shape();
        if !self.config.hypercube_planner {
            if shape == QueryShape::Cyclic {
                return Err(EngineError::Query(QueryError::CyclicShape));
            }
            self.planner_counters.pipeline_plans += 1;
            return Ok(None);
        }
        let hc_plan = graph.hypercube_plan(self.config.hypercube_cells.max(2));
        let take_hypercube = match plan::pipeline_cost(query, shape) {
            None => true,
            Some(pipe) => plan::hypercube_cost(&hc_plan) < pipe,
        };
        if !take_hypercube {
            self.planner_counters.pipeline_plans += 1;
            return Ok(None);
        }

        let grid = HypercubeGrid::new(hc_plan.shares());
        // A per-query synthetic base key: the `+` separator and hex owner
        // id keep it disjoint from every relation-derived index key.
        let base = HashedKey::new(format!("hcube+{:016x}+{}", id.owner.0, id.seq));
        let hcref = HypercubeRef { base, cells: grid.cells() };
        let mut bindings: Vec<(Name, Vec<(usize, usize)>)> =
            query.relations().iter().map(|rel| (rel.clone(), Vec::new())).collect();
        for (axis, hc_axis) in hc_plan.axes.iter().enumerate() {
            for member in &hc_axis.members {
                let schema = self.catalog.require_schema(&member.relation)?;
                let Some(col) = schema.index_of(&member.attribute) else {
                    // `validate` checked every attribute, so this is
                    // unreachable; losing one binding only costs replication.
                    continue;
                };
                if let Some((_, binds)) =
                    bindings.iter_mut().find(|(rel, _)| *rel == member.relation)
                {
                    binds.push((axis, col));
                }
            }
        }
        self.planner_counters.hypercube_plans += 1;
        self.planner_counters.cells_allocated += u64::from(grid.cells());
        self.planner_counters.shares_allocated +=
            grid.shares().iter().map(|&s| u64::from(s)).sum::<u64>();
        self.planner_counters.replicated_evals += u64::from(grid.cells());
        self.hypercubes.push(HypercubePlacement { hcref: hcref.clone(), grid, bindings });
        Ok(Some(hcref))
    }

    /// Publishes a tuple from node `origin`: the tuple is validated and
    /// indexed under every attribute-level and value-level key (Procedure 1).
    ///
    /// The payload is moved into one shared [`Arc`]; the `2 × arity` index
    /// copies all reference it, and every index key is interned (string
    /// derived + SHA-1 hashed exactly once) before it enters the network.
    ///
    /// With hot-key splitting enabled
    /// ([`EngineConfig::with_hot_key_splitting`]), publication is also where
    /// heavy hitters are detected: when the network is quiescent, each index
    /// key's observed tuple rate (the owning node's RIC tracker) is checked
    /// against the threshold and crossing keys are split before this tuple
    /// is routed. Index copies for a split key go to exactly one sub-key,
    /// chosen by a deterministic content hash of the tuple.
    pub fn publish_tuple(
        &mut self,
        origin: impl Into<NodeId>,
        tuple: Tuple,
    ) -> Result<(), EngineError> {
        let origin = origin.into().id();
        if !self.nodes.contains_key(&origin) {
            return Err(EngineError::UnknownNode { id: origin });
        }
        self.catalog.validate_tuple(&tuple)?;
        // The simulation clock never runs behind publication times, so RIC
        // windows and window joins see consistent time.
        self.network.advance_to(tuple.pub_time());
        let schema = self.catalog.require_schema(tuple.relation())?;
        let keys: Vec<(HashedKey, IndexLevel)> = tuple_index_keys(&tuple, schema)
            .into_iter()
            .map(|key| {
                let level = key.level();
                (key.hashed(), level)
            })
            .collect();
        self.maybe_split_hot_keys(&keys)?;
        let tuple = Arc::new(tuple);
        let mut items: Vec<(Id, RJoinMessage)> = Vec::with_capacity(keys.len());
        for (key, level) in keys {
            let targets = match self.splits.route_tuple(&key, &tuple) {
                None => vec![key],
                Some(cells) => {
                    self.split_counters.tuples_routed += 1;
                    self.split_counters.tuple_fanout += cells.len() as u64 - 1;
                    cells
                }
            };
            for key in targets {
                items.push((
                    key.id(),
                    RJoinMessage::NewTuple {
                        tuple: Arc::clone(&tuple),
                        key,
                        level,
                        publisher: origin,
                    },
                ));
            }
        }
        // Hypercube routing: for every registered plan this tuple's relation
        // participates in, hash its bound attributes to pin coordinates and
        // send one value-level copy to each cell of the resulting subcube
        // (replication across the axes the relation leaves unbound).
        for placement in &self.hypercubes {
            let Some((_, binds)) =
                placement.bindings.iter().find(|(rel, _)| rel.as_str() == tuple.relation())
            else {
                continue;
            };
            let mut bound: Vec<Option<u32>> = vec![None; placement.grid.dims()];
            let mut joinable = true;
            for &(axis, col) in binds {
                let coord =
                    partition_for_value(&tuple.values()[col], placement.grid.shares()[axis]);
                match bound[axis] {
                    None => bound[axis] = Some(coord),
                    Some(c) if c == coord => {}
                    Some(_) => {
                        // Two attributes of this tuple sit on one axis with
                        // different values: the closure forces them equal in
                        // any answer, so the tuple can never join this plan.
                        joinable = false;
                        break;
                    }
                }
            }
            if !joinable {
                continue;
            }
            let cells = placement.grid.subcube(&bound);
            self.planner_counters.tuples_routed += 1;
            self.planner_counters.tuple_copies += cells.len() as u64;
            for cell in cells {
                let key = placement.hcref.cell_key(cell);
                items.push((
                    key.id(),
                    RJoinMessage::NewTuple {
                        tuple: Arc::clone(&tuple),
                        key,
                        level: IndexLevel::Value,
                        publisher: origin,
                    },
                ));
            }
        }
        self.network.multi_send(origin, items, traffic_class::TUPLE)?;
        Ok(())
    }

    /// Heavy-hitter detection: splits every not-yet-split key in `keys`
    /// whose observed tuple rate over the last RIC window (read pure from
    /// the owning node's tracker) has reached the configured threshold.
    ///
    /// Runs only while the network is quiescent: like membership churn, a
    /// split re-homes stored state, and messages already in flight to the
    /// base key must not race the migration. Between drains every message
    /// referencing the base key has been delivered, so gating on
    /// `in_flight == 0` makes activation exact — and deterministic, because
    /// quiescence points and RIC state are identical across drivers.
    fn maybe_split_hot_keys(
        &mut self,
        keys: &[(HashedKey, IndexLevel)],
    ) -> Result<(), EngineError> {
        let Some(threshold) = self.config.hot_key_threshold else {
            return Ok(());
        };
        if self.network.in_flight() > 0 {
            return Ok(());
        }
        let partitions = self.config.hot_key_partitions.max(2);
        let now = self.network.now();
        let window = self.config.ric_window;
        for (key, _) in keys {
            if self.splits.is_split(key.ring()) {
                continue;
            }
            let owner = self.network.owner_of(key.id())?;
            let Some((tuple_rate, eval_rate)) = self.nodes.get(&owner).map(|s| {
                (
                    s.ric().rate_at(key.ring(), now, window, now),
                    s.eval_ric().rate_at(key.ring(), now, window, now),
                )
            }) else {
                continue;
            };
            if tuple_rate.max(eval_rate) >= threshold {
                // The share grid apportions the cells between the two
                // streams in proportion to their observed rates (Afrati's
                // shares applied to RJoin's two delivery streams).
                let grid = choose_grid(partitions, tuple_rate, eval_rate);
                self.activate_split(key.clone(), grid)?;
            }
        }
        Ok(())
    }

    /// Activates a split of `key` over the share grid and migrates the base
    /// key's stored state: each stored query moves to its identity
    /// column's cells, each stored value-level tuple and ALTT entry to its
    /// content row's cells — exactly where future arrivals will look for
    /// them. No-op if the key is already split.
    ///
    /// Exposed for harnesses via [`RJoinEngine::split_key`]; the engine
    /// itself calls it from the publication-time heat check.
    fn activate_split(&mut self, key: HashedKey, grid: SplitGrid) -> Result<(), EngineError> {
        let now = self.network.now();
        if !self.splits.insert(key.clone(), grid, now) {
            return Ok(());
        }
        self.split_counters.keys_split += 1;
        self.split_counters.partitions_created += grid.cells() as u64;

        let base_ring = key.ring();
        // Drop every cached RIC estimate for the base key: entries cached
        // before the split hold the pre-split hot rate, and the candidate
        // table would keep serving them for up to `ct_validity` ticks,
        // shunning the freshly split key. Activation is a quiescent-point
        // operation, so walking the node map here is safe and cheap.
        for state in self.nodes.values_mut() {
            state.candidate_table.remove(&base_ring);
        }
        let owner = self.network.owner_of(key.id())?;
        let Some(state) = self.nodes.get_mut(&owner) else {
            return Ok(());
        };
        let drained = state.drain_misplaced(|ring| ring != base_ring);
        let share = self.config.share_subjoins;
        let cells = grid.cells();
        for stored in drained.queries {
            let col = partition_for_query(stored.pending.id, grid.cols);
            for row in 0..grid.rows {
                let sub = key.split_part(row * grid.cols + col, cells);
                let new_owner = self.network.owner_of(sub.id())?;
                let mut replica = stored.clone();
                replica.key = sub;
                replica.fingerprint = None;
                if let Some(target) = self.nodes.get_mut(&new_owner) {
                    target.store_query_shared(replica, share);
                    self.split_counters.migrated_queries += 1;
                }
            }
        }
        for (_, bucket) in drained.tuples {
            for tuple in bucket {
                let row = partition_for_tuple(&tuple, grid.rows);
                for col in 0..grid.cols {
                    let sub = key.split_part(row * grid.cols + col, cells);
                    let new_owner = self.network.owner_of(sub.id())?;
                    if let Some(target) = self.nodes.get_mut(&new_owner) {
                        target.store_tuple(sub.ring(), Arc::clone(&tuple));
                        self.split_counters.migrated_tuples += 1;
                    }
                }
            }
        }
        for (_, bucket) in drained.altt {
            for (tuple, expires_at) in bucket {
                let row = partition_for_tuple(&tuple, grid.rows);
                for col in 0..grid.cols {
                    let sub = key.split_part(row * grid.cols + col, cells);
                    let new_owner = self.network.owner_of(sub.id())?;
                    if let Some(target) = self.nodes.get_mut(&new_owner) {
                        target.altt_insert(sub.ring(), Arc::clone(&tuple), expires_at);
                        self.split_counters.migrated_tuples += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Splits `key` over `partitions` sub-keys right now, regardless of its
    /// observed rate (harness/experiment entry point; the engine's own
    /// threshold-driven activation uses the same machinery). The share grid
    /// is chosen from the key's current telemetry exactly like the
    /// automatic path. Requires a quiescent network — like churn, splitting
    /// re-homes stored state and must not race in-flight messages.
    pub fn split_key(
        &mut self,
        key: &rjoin_query::IndexKey,
        partitions: u32,
    ) -> Result<(), EngineError> {
        assert_eq!(self.network.in_flight(), 0, "split_key requires a quiescent network");
        let hashed = key.hashed();
        let now = self.network.now();
        let window = self.config.ric_window;
        let owner = self.network.owner_of(hashed.id())?;
        let (tuple_rate, eval_rate) = self
            .nodes
            .get(&owner)
            .map(|s| {
                (
                    s.ric().rate_at(hashed.ring(), now, window, now),
                    s.eval_ric().rate_at(hashed.ring(), now, window, now),
                )
            })
            .unwrap_or((0, 0));
        let grid = choose_grid(partitions.max(2), tuple_rate, eval_rate);
        self.activate_split(hashed, grid)
    }

    /// Adds a node to the running network (churn): the identifier is derived
    /// from `label`, the ring is re-stabilized, and every bucket of
    /// application state whose key the new node now owns is handed over from
    /// its previous owner — the state transfer a real DHT performs when a
    /// node joins. Returns the new node's identifier.
    ///
    /// Membership changes are driver-level operations: call them between
    /// [`run_until_quiescent`](Self::run_until_quiescent) phases. A message
    /// already in flight to a node that subsequently leaves is lost, exactly
    /// as in a real deployment.
    pub fn join_node(&mut self, label: &str) -> Result<NodeId, EngineError> {
        let id = Id::hash_key(label);
        self.network.dht_mut().join(id)?;
        self.network.dht_mut().full_stabilize();
        let mut state = NodeState::new(id);
        state.share_programs(Arc::clone(&self.programs));
        state.configure_expiry(self.config.wheel_expiry, self.config.network_delay);
        state.configure_trigger_index(self.config.trigger_index);
        self.nodes.insert(id, state);
        self.node_ids.push(id);
        self.rehome_misplaced_state()?;
        Ok(NodeId(id))
    }

    /// Gracefully removes a node from the network (churn): the ring is
    /// re-stabilized and the departing node's stored queries, value-level
    /// tuples and ALTT entries are handed to the nodes now responsible for
    /// their keys, so continuous queries keep producing answers. RIC
    /// history and cached candidate-table entries are dropped (they only
    /// affect placement quality, not soundness). Returns the number of
    /// re-homed items.
    pub fn leave_node(&mut self, id: impl Into<NodeId>) -> Result<usize, EngineError> {
        let id = id.into().id();
        if !self.nodes.contains_key(&id) {
            return Err(EngineError::UnknownNode { id });
        }
        self.network.dht_mut().leave(id)?;
        self.network.dht_mut().full_stabilize();
        let state = self.nodes.remove(&id).expect("membership checked above");
        self.node_ids.retain(|n| *n != id);
        let drained = state.into_drained();
        let moved = drained.len();
        self.absorb_drained(drained)?;
        Ok(moved)
    }

    /// Splits the drained state by current key owner and hands each share to
    /// that node via [`NodeState::absorb`] (the single place that knows how
    /// re-homed state re-enters a node — queries go through the shared path,
    /// so structurally identical entries re-merge at their new home).
    fn absorb_drained(&mut self, drained: DrainedState) -> Result<(), EngineError> {
        let share = self.config.share_subjoins;
        let mut per_owner: HashMap<Id, DrainedState, RingBuildHasher> = HashMap::default();
        for stored in drained.queries {
            let owner = self.network.owner_of(stored.key.id())?;
            per_owner.entry(owner).or_default().queries.push(stored);
        }
        for (ring, bucket) in drained.tuples {
            let owner = self.network.owner_of(Id(ring))?;
            per_owner.entry(owner).or_default().tuples.push((ring, bucket));
        }
        for (ring, bucket) in drained.altt {
            let owner = self.network.owner_of(Id(ring))?;
            per_owner.entry(owner).or_default().altt.push((ring, bucket));
        }
        for (owner, share_of_owner) in per_owner {
            if let Some(state) = self.nodes.get_mut(&owner) {
                state.absorb(share_of_owner, share);
            }
        }
        Ok(())
    }

    /// After a membership change, moves every bucket that is no longer owned
    /// by the node holding it to the current owner (the handover a real DHT
    /// performs on join).
    fn rehome_misplaced_state(&mut self) -> Result<(), EngineError> {
        let network = &self.network;
        let mut moved: Vec<DrainedState> = Vec::new();
        for (node, state) in self.nodes.iter_mut() {
            let drained = state.drain_misplaced(|ring| {
                // On a lookup failure, keep the bucket where it is rather
                // than dropping state.
                network.owner_of(Id(ring)).map(|owner| owner == *node).unwrap_or(true)
            });
            if !drained.is_empty() {
                moved.push(drained);
            }
        }
        for drained in moved {
            self.absorb_drained(drained)?;
        }
        Ok(())
    }

    /// Processes a single delivery from the network. Returns `false` when no
    /// message was in flight.
    ///
    /// Single-stepping interleaves each delivery's effects (RIC-aware
    /// placement, sends) before the next delivery's handler, whereas the
    /// tick-draining drivers run *all* handlers of a tick before any
    /// effects. Within one tick a RIC rate read can therefore observe one
    /// arrival more under tick draining than under stepping, so don't mix
    /// the two drivers in a run whose exact placement/traffic trace matters.
    /// (Answer *soundness* is unaffected — only placement choices shift.)
    pub fn step(&mut self) -> Result<bool, EngineError> {
        match self.network.pop_next() {
            Some(delivery) => {
                self.process_batch(vec![delivery], false)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Drains the event queue until no message is in flight, one tick at a
    /// time, on the calling thread. Returns the number of messages
    /// processed.
    pub fn run_until_quiescent(&mut self) -> Result<u64, EngineError> {
        self.drain(false)
    }

    /// Like [`run_until_quiescent`](Self::run_until_quiescent), but
    /// parallelized according to [`EngineConfig::shards`]:
    ///
    /// * **`shards == 1`** (default): the single global event queue is
    ///   drained tick by tick and each fat tick's node-local handler work is
    ///   fanned out across CPU cores under [`std::thread::scope`], with all
    ///   engine-global effects applied on the calling thread in `(at, seq)`
    ///   order. This is **byte-identical** to the sequential driver: same
    ///   answers, same loads, same traffic, same RNG stream.
    /// * **`shards > 1`**: the drain runs on the sharded event-queue
    ///   runtime — one persistent worker per shard, each owning a contiguous
    ///   range of ring nodes, its own bucket queue and local virtual clock,
    ///   synchronized only through [`rjoin_net::ShardedNetwork`]'s
    ///   conservative watermark protocol. Long cascades that touch few
    ///   shards no longer serialize through a global tick barrier. Sharded
    ///   runs are deterministic, and their answers/loads/traffic are
    ///   identical for **every** shard count `> 1`; they may differ from
    ///   the single-queue trace only through placement-RNG draws (derived
    ///   per decision instead of from one global stream) and pruning-free
    ///   RIC reads — with an RNG-free placement strategy on an unwindowed
    ///   workload the sharded trace is byte-identical to the sequential one
    ///   too (see `tests/determinism.rs`).
    pub fn run_until_quiescent_parallel(&mut self) -> Result<u64, EngineError> {
        // The watermark protocol's lookahead is the delay bound δ, so the
        // sharded runtime requires δ >= 1; a zero-delay configuration (legal
        // for the single queue) falls back to the tick-batched driver
        // rather than silently changing delivery timing.
        if self.config.shards > 1 && self.network.delay() >= 1 {
            crate::shard_driver::drain_sharded(self)
        } else {
            self.drain(true)
        }
    }

    fn drain(&mut self, parallel: bool) -> Result<u64, EngineError> {
        let mut processed = 0u64;
        while let Some((_, batch)) = self.network.pop_tick() {
            processed += batch.len() as u64;
            self.process_batch(batch, parallel)?;
        }
        self.flush_expiry();
        Ok(processed)
    }

    /// Advances every node's timer wheel to the quiescent clock, so state
    /// snapshots taken between drains (stats, stored-query counts) reflect
    /// expiry up to now even on nodes the drained tick never delivered to.
    /// Safe at quiescence: the clock is monotonic, so no delivery at or
    /// before the current tick can still arrive.
    pub(crate) fn flush_expiry(&mut self) {
        let now = self.network.now();
        for state in self.nodes.values_mut() {
            state.advance_expiry(now);
        }
    }

    /// Removes every expired stored query and ALTT entry across all nodes,
    /// regardless of expiry mode: wheel-mode nodes advance to the current
    /// clock (normally a no-op after a drain), sweep-mode nodes run the full
    /// O(stored) scan the wheel replaces. Differential harnesses call this
    /// on both engines before comparing stored-state counts; like churn it
    /// requires a quiescent network.
    pub fn gc_expired_state(&mut self) {
        let now = self.network.now();
        for state in self.nodes.values_mut() {
            state.advance_expiry(now);
            state.sweep_expired(now);
        }
    }

    /// Processes one tick's deliveries: node-local phase (serial, or across
    /// threads for fat ticks), then the deterministic effect phase in
    /// `(at, seq)` order. The two drivers run the handlers against each
    /// node's state in the same per-node order and apply effects in the same
    /// global order, so their results are identical by construction.
    fn process_batch(
        &mut self,
        batch: Vec<Delivery<RJoinMessage>>,
        parallel: bool,
    ) -> Result<(), EngineError> {
        let now = self.network.now();
        let effects = if parallel && batch.len() >= PARALLEL_TICK_MIN_DELIVERIES {
            self.node_local_phase_parallel(batch, now)
        } else {
            self.node_local_phase_serial(batch, now)
        };

        // Effect phase: strictly in (at, seq) order, on the calling thread.
        for effect in effects {
            match effect {
                TickEffect::Lost => {}
                TickEffect::Answer(record) => {
                    if self.distinct_queries.contains(&record.query) {
                        self.answers.record_distinct(record);
                    } else {
                        self.answers.record(record);
                    }
                }
                TickEffect::Node { node, load, actions } => {
                    if let Some(load) = load {
                        self.qpl.incr(node);
                        self.qpl_by_key.incr(load.key);
                        if load.sl {
                            self.sl.incr(node);
                            self.sl_by_key.incr(load.key);
                        }
                    }
                    self.perform_actions(node, actions)?;
                }
            }
        }
        Ok(())
    }

    /// Serial node-local phase: handlers run in `(at, seq)` order directly
    /// against the node map — no grouping machinery, which keeps the common
    /// small-tick case as lean as single-stepping.
    fn node_local_phase_serial(
        &mut self,
        batch: Vec<Delivery<RJoinMessage>>,
        now: SimTime,
    ) -> Vec<TickEffect> {
        let mut effects = Vec::with_capacity(batch.len());
        for delivery in batch {
            let Some(state) = self.nodes.get_mut(&delivery.to) else {
                // The node left or failed after the message was sent: the
                // message is lost, exactly as in a real deployment.
                effects.push(TickEffect::Lost);
                continue;
            };
            let effect = match delivery.msg {
                RJoinMessage::Answer { query, row, produced_at } => {
                    TickEffect::Answer(AnswerRecord {
                        query,
                        row,
                        produced_at,
                        received_at: delivery.at,
                    })
                }
                msg => handle_node_msg(
                    state,
                    &self.catalog,
                    &self.config,
                    now,
                    delivery.at,
                    delivery.to,
                    msg,
                ),
            };
            effects.push(effect);
        }
        effects
    }

    /// Threaded node-local phase: deliveries are grouped by destination node
    /// (handlers are purely node-local), whole groups run concurrently under
    /// `std::thread::scope`, and the effects are stitched back into the
    /// original `(at, seq)` positions.
    fn node_local_phase_parallel(
        &mut self,
        batch: Vec<Delivery<RJoinMessage>>,
        now: SimTime,
    ) -> Vec<TickEffect> {
        let mut slots: Vec<Option<TickEffect>> = Vec::with_capacity(batch.len());
        slots.resize_with(batch.len(), || None);
        let mut groups: Vec<NodeGroup> = Vec::new();
        let mut group_of: HashMap<Id, usize, RingBuildHasher> = HashMap::default();

        for (pos, delivery) in batch.into_iter().enumerate() {
            // A node already pulled into a group this tick is no longer in
            // `self.nodes`, but it is very much alive.
            if !group_of.contains_key(&delivery.to) && !self.nodes.contains_key(&delivery.to) {
                slots[pos] = Some(TickEffect::Lost);
                continue;
            }
            match delivery.msg {
                RJoinMessage::Answer { query, row, produced_at } => {
                    let record = AnswerRecord { query, row, produced_at, received_at: delivery.at };
                    slots[pos] = Some(TickEffect::Answer(record));
                }
                msg => {
                    let group = *group_of.entry(delivery.to).or_insert_with(|| {
                        let state =
                            self.nodes.remove(&delivery.to).expect("membership checked above");
                        groups.push(NodeGroup {
                            node: delivery.to,
                            state,
                            items: Vec::new(),
                            effects: Vec::new(),
                        });
                        groups.len() - 1
                    });
                    groups[group].items.push((pos, delivery.at, msg));
                }
            }
        }

        let catalog = &self.catalog;
        let config = &self.config;
        let workers = available_workers().min(groups.len());
        if workers > 1 {
            let chunk_size = groups.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for chunk in groups.chunks_mut(chunk_size) {
                    scope.spawn(move || {
                        for group in chunk {
                            group.run(catalog, config, now);
                        }
                    });
                }
            });
        } else {
            for group in &mut groups {
                group.run(catalog, config, now);
            }
        }

        for group in groups {
            self.nodes.insert(group.node, group.state);
            for (pos, effect) in group.effects {
                slots[pos] = Some(effect);
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every delivery resolves to exactly one effect"))
            .collect()
    }

    /// Cumulative shared sub-join savings across all live nodes.
    pub fn sharing_counters(&self) -> SharingCounters {
        let mut total = SharingCounters::new();
        for state in self.nodes.values() {
            total.merge(state.sharing());
        }
        total
    }

    /// Cumulative compiled-predicate counters across all live nodes:
    /// programs compiled, fingerprint-cache hits, how many triggers ran on
    /// the compiled vs the interpreted path, and nanoseconds spent in the
    /// per-delivery trigger walks.
    pub fn compile_counters(&self) -> CompileCounters {
        let mut total = CompileCounters::new();
        for state in self.nodes.values() {
            total.merge(state.compile_counters());
        }
        total
    }

    /// Slab/wheel gauges and expiry counters summed across all live nodes:
    /// live and peak slab occupancy per store, scheduled wheel entries, and
    /// how many reclamations were wheel pops vs contact expirations.
    pub fn state_counters(&self) -> StateCounters {
        let mut total = StateCounters::new();
        for state in self.nodes.values() {
            total.merge(&state.state_counters());
        }
        total
    }

    /// Trigger-index probe counters summed across all live nodes: how many
    /// arrivals probed the index vs walked linearly, candidates handed out
    /// vs the bucket lengths a linear walk would have scanned, the residual
    /// share, and the peak number of indexed handles.
    pub fn probe_counters(&self) -> ProbeCounters {
        let mut total = ProbeCounters::new();
        for state in self.nodes.values() {
            total.merge(&state.probe_counters());
        }
        total
    }

    /// Total number of queries (input + rewritten) currently stored across
    /// all live nodes. A shared entry counts once regardless of how many
    /// subscribers ride on it — this is the stored-query load that sharing
    /// reduces.
    pub fn stored_queries_current(&self) -> u64 {
        self.nodes.values().map(|s| s.stored_query_count() as u64).sum()
    }

    /// Cumulative sharded-runtime observability counters: shard count of
    /// the latest sharded drain, per-shard tick activations, deliveries
    /// processed on shard workers, and blocked remote RIC reads. All zero
    /// until [`run_until_quiescent_parallel`](Self::run_until_quiescent_parallel)
    /// runs with `shards > 1`.
    pub fn shard_runtime_stats(&self) -> &ShardRuntimeStats {
        &self.shard_runtime
    }

    /// The active hot-key splits (empty unless
    /// [`EngineConfig::with_hot_key_splitting`] is enabled and a key
    /// crossed the threshold, or a harness called
    /// [`split_key`](Self::split_key)).
    pub fn split_map(&self) -> &SplitMap {
        &self.splits
    }

    /// Cumulative hot-key splitting counters.
    pub fn split_counters(&self) -> &SplitCounters {
        &self.split_counters
    }

    /// Cumulative two-plan planner counters: plans chosen per kind,
    /// hypercube cells/shares allocated, and the replication the hypercube
    /// plans cost (query copies per cell, tuple copies across unbound
    /// axes).
    pub fn planner_counters(&self) -> &PlannerCounters {
        &self.planner_counters
    }

    /// Builds a statistics snapshot in the units the paper's figures use.
    pub fn stats(&self) -> ExperimentStats {
        let traffic = self.network.traffic();
        let traffic_values: Vec<u64> =
            self.node_ids.iter().map(|id| traffic.sent_by(*id)).collect();
        let qpl_values: Vec<u64> = self.node_ids.iter().map(|id| self.qpl.get(id)).collect();
        let sl_values: Vec<u64> = self.node_ids.iter().map(|id| self.sl.get(id)).collect();
        let storage_values: Vec<u64> =
            self.node_ids.iter().map(|id| self.nodes[id].current_storage_load()).collect();
        let qpl_dist = Distribution::from_values(qpl_values);
        let sl_dist = Distribution::from_values(sl_values);
        ExperimentStats {
            nodes: self.node_ids.len(),
            traffic_total: traffic.total_sent(),
            traffic_ric: traffic.total_sent_class(traffic_class::RIC),
            traffic_per_node: Distribution::from_values(traffic_values),
            qpl_participants: qpl_dist.participants(),
            sl_participants: sl_dist.participants(),
            qpl_total: self.qpl.total(),
            sl_total: self.sl.total(),
            qpl: qpl_dist,
            sl: sl_dist,
            current_storage: Distribution::from_values(storage_values),
            answers: self.answers.len() as u64,
            stored_queries_current: self.stored_queries_current(),
            sharing: self.sharing_counters(),
            intra_shard_messages: traffic.intra_shard_sent(),
            cross_shard_messages: traffic.cross_shard_sent(),
            shard_runtime: self.shard_runtime.clone(),
            key_heat: Distribution::from_values(self.qpl_by_key.values()),
            splits: self.split_counters,
            planner: self.planner_counters,
            compile: self.compile_counters(),
            state: self.state_counters(),
            probe: self.probe_counters(),
        }
    }

    fn perform_actions(&mut self, from: Id, actions: Vec<Action>) -> Result<(), EngineError> {
        let mut env = SeqEnv {
            network: &mut self.network,
            nodes: &mut self.nodes,
            rng: &mut self.rng,
            splits: &self.splits,
            split_counters: &mut self.split_counters,
        };
        perform_actions_in(&mut env, &self.config, &self.catalog, from, actions)
    }

    /// Chooses the index key for a query (input or rewritten) and sends it
    /// there, charging RIC traffic according to Sections 6 and 7.
    fn dispatch_query(
        &mut self,
        from: Id,
        pending: PendingQuery,
        is_input: bool,
    ) -> Result<(), EngineError> {
        let mut env = SeqEnv {
            network: &mut self.network,
            nodes: &mut self.nodes,
            rng: &mut self.rng,
            splits: &self.splits,
            split_counters: &mut self.split_counters,
        };
        dispatch_query_in(&mut env, &self.config, &self.catalog, from, pending, is_input)
    }
}

/// The engine-global context an effect phase runs against: the transport it
/// sends through, the RIC information it reads, and the randomness its
/// placement decisions draw from.
///
/// Two implementations exist: `SeqEnv` (the single-queue drivers — global
/// RNG stream, lossy in-place RIC reads) and the sharded driver's per-worker
/// environment (per-decision RNG derived from the triggering message's
/// lineage, pure watermark-synchronized RIC reads). Keeping the *entire*
/// Sections 6–7 dispatch logic in [`dispatch_query_in`], generic over this
/// trait, is what guarantees the drivers can never drift apart in cost
/// accounting or placement rules.
pub trait EffectEnv {
    /// The transport this environment sends through.
    type Net: Transport<RJoinMessage>;

    /// The transport handle.
    fn net(&mut self) -> &mut Self::Net;

    /// The clock placement decisions and answers are stamped with.
    fn now(&self) -> SimTime;

    /// A still-valid cached RIC estimate from `node`'s candidate table.
    fn cached_ric(
        &self,
        node: Id,
        ring: u64,
        now: SimTime,
        validity: Option<SimTime>,
    ) -> Option<RicEntry>;

    /// Caches an RIC observation in `node`'s candidate table.
    fn cache_ric(&mut self, node: Id, ring: u64, entry: RicEntry);

    /// The rate of incoming tuples `owner` observed for key `ring` during
    /// the window ending at `now` (the content of one RIC request).
    fn observed_rate(&mut self, owner: Id, ring: u64, now: SimTime, window: SimTime) -> u64;

    /// Applies the placement strategy, drawing any random tie-breaks from
    /// this environment's randomness source.
    fn choose(
        &mut self,
        candidates: &[IndexKey],
        rates: &[u64],
        strategy: PlacementStrategy,
    ) -> usize;

    /// The engine's hot-key split registry (read-only during drains).
    fn splits(&self) -> &SplitMap;

    /// Books `extra` additional query copies sent because the chosen key
    /// was split (a query registers at every partition).
    fn note_query_fanout(&mut self, extra: u64);
}

/// The single-queue environment: global network, global node map, global
/// RNG stream drawn in `(at, seq)` effect order.
pub(crate) struct SeqEnv<'a> {
    pub(crate) network: &'a mut Network<RJoinMessage>,
    pub(crate) nodes: &'a mut NodeMap,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) splits: &'a SplitMap,
    pub(crate) split_counters: &'a mut SplitCounters,
}

impl EffectEnv for SeqEnv<'_> {
    type Net = Network<RJoinMessage>;

    fn net(&mut self) -> &mut Network<RJoinMessage> {
        self.network
    }

    fn now(&self) -> SimTime {
        self.network.now()
    }

    fn cached_ric(
        &self,
        node: Id,
        ring: u64,
        now: SimTime,
        validity: Option<SimTime>,
    ) -> Option<RicEntry> {
        self.nodes.get(&node).and_then(|s| s.cached_ric(ring, now, validity))
    }

    fn cache_ric(&mut self, node: Id, ring: u64, entry: RicEntry) {
        if let Some(state) = self.nodes.get_mut(&node) {
            state.candidate_table.insert(ring, entry);
        }
    }

    fn observed_rate(&mut self, owner: Id, ring: u64, now: SimTime, window: SimTime) -> u64 {
        self.nodes.get(&owner).map(|s| s.ric().rate(ring, now, window)).unwrap_or(0)
    }

    fn choose(
        &mut self,
        candidates: &[IndexKey],
        rates: &[u64],
        strategy: PlacementStrategy,
    ) -> usize {
        choose_candidate(candidates, rates, strategy, self.rng)
    }

    fn splits(&self) -> &SplitMap {
        self.splits
    }

    fn note_query_fanout(&mut self, extra: u64) {
        self.split_counters.query_fanout += extra;
    }
}

/// Applies the actions a node handler produced: answers travel by
/// `sendDirect`, rewritten queries are re-indexed through the full
/// placement pipeline. Generic over [`EffectEnv`] so the single-queue and
/// sharded drivers share it verbatim.
pub fn perform_actions_in<E: EffectEnv>(
    env: &mut E,
    config: &EngineConfig,
    catalog: &Catalog,
    from: Id,
    actions: Vec<Action>,
) -> Result<(), EngineError> {
    for action in actions {
        match action {
            Action::DeliverAnswer { query, owner, row } => {
                let produced_at = env.now();
                env.net().send_direct(
                    from,
                    owner,
                    RJoinMessage::Answer { query, row, produced_at },
                    traffic_class::ANSWER,
                );
            }
            Action::Reindex { pending } => {
                dispatch_query_in(env, config, catalog, from, *pending, false)?;
            }
        }
    }
    Ok(())
}

/// Chooses the index key for a query (input or rewritten) and sends it
/// there, charging RIC traffic according to Sections 6 and 7. The complete
/// dispatch pipeline — candidate derivation, RIC collection and caching,
/// placement, piggy-backing, send — shared by every driver.
pub fn dispatch_query_in<E: EffectEnv>(
    env: &mut E,
    config: &EngineConfig,
    catalog: &Catalog,
    from: Id,
    pending: PendingQuery,
    is_input: bool,
) -> Result<(), EngineError> {
    // A hypercube-planned input query bypasses candidate placement
    // entirely: it registers one replicated copy at every cell of its plan
    // (the Eval side of the hypercube), and all further evaluation is
    // cell-local. Rewritten descendants of such a query are stored in
    // place by the node procedures and never come back through dispatch.
    if pending.hypercube.is_some() {
        debug_assert!(is_input, "hypercube descendants are cell-local, never re-dispatched");
        let hc = pending.hypercube.clone().expect("checked above");
        let mut pending = Some(pending);
        for cell in 0..hc.cells {
            let key = hc.cell_key(cell);
            let p = if cell + 1 == hc.cells {
                pending.take().expect("taken once, on the last cell")
            } else {
                pending.as_ref().expect("taken only on the last cell").clone()
            };
            let msg =
                RJoinMessage::IndexQuery { pending: p, key: key.clone(), level: IndexLevel::Value };
            // No RIC exchange happens for cell placement, so the copy pays
            // the full routed path to the cell owner.
            env.net().send(from, key.id(), msg, traffic_class::QUERY_INDEX)?;
        }
        return Ok(());
    }
    let mut candidates = candidate_keys(&pending.query);
    if candidates.is_empty() {
        // A query with no conjuncts left but remaining relations (e.g. a
        // single-relation scan): fall back to an attribute-level key of
        // the first remaining relation.
        if let Some(rel) = pending.query.relations().first() {
            if let Ok(schema) = catalog.require_schema(rel) {
                if let Some(attr) = schema.attribute(0) {
                    candidates.push(IndexKey::attribute(rel.clone(), attr));
                }
            }
        }
    }
    if candidates.is_empty() {
        return Err(EngineError::NoCandidateKey);
    }
    if !is_input && config.rewritten_value_level_only {
        // Section 3 base algorithm: rewritten queries always go to the
        // value level (each rewrite introduces at least one value-level
        // candidate, so the filtered list is non-empty for chain joins).
        let value_only: Vec<IndexKey> =
            candidates.iter().filter(|c| c.level() == IndexLevel::Value).cloned().collect();
        if !value_only.is_empty() {
            candidates = value_only;
        }
    }

    let strategy = config.placement;
    let needs_rates = matches!(strategy, PlacementStrategy::RicAware | PlacementStrategy::Worst);
    let now = env.now();
    let mut rates = vec![0u64; candidates.len()];

    // Rate-less strategies never look at the non-chosen candidates, so
    // only rate-driven ones pay to intern the whole list. When they do,
    // each key is interned exactly once: the ring identifier computed
    // here serves the rates loop, the candidate table, the piggy-backed
    // RIC information *and* the final send — no key is hashed twice.
    let hashed: Vec<HashedKey> =
        if needs_rates { candidates.iter().map(IndexKey::hashed).collect() } else { Vec::new() };

    if needs_rates {
        let mut prev_hop = from;
        let mut requests = 0usize;
        for (i, hkey) in hashed.iter().enumerate() {
            // Reuse cached RIC information when allowed (Section 7). Cached
            // entries for split candidates are always split-aware: both
            // paths cache under the base ring identifier, and activation
            // purges every pre-split entry for the key, so whatever is
            // cached here was computed from the per-cell rates below.
            if strategy == PlacementStrategy::RicAware && config.reuse_ric {
                if let Some(entry) = env.cached_ric(from, hkey.ring(), now, config.ct_validity) {
                    rates[i] = entry.rate;
                    continue;
                }
            }
            // Split-aware candidate rate: for a split hot key the unit that
            // carries load is one *cell*, so the candidate's effective
            // rate is the maximum over its sub-keys (see
            // `placement::split_effective_rate`) — which is what makes a
            // freshly split key attractive again. Each cell owner is one
            // more chained RIC hop.
            let parts = env.splits().get(hkey.ring()).map(|e| e.grid.cells());
            let rate = match parts {
                None => {
                    let owner = env.net().owner_of(hkey.id())?;
                    let rate = env.observed_rate(owner, hkey.ring(), now, config.ric_window);
                    if strategy == PlacementStrategy::RicAware {
                        // Chained RIC request: previous hop forwards the
                        // request to the next candidate (k * O(log N)
                        // messages total).
                        env.net().charge_route(prev_hop, hkey.id(), traffic_class::RIC)?;
                        prev_hop = owner;
                        requests += 1;
                    }
                    rate
                }
                Some(parts) => {
                    let mut partition_rates = Vec::with_capacity(parts as usize);
                    for p in 0..parts {
                        let sub = hkey.split_part(p, parts);
                        let owner = env.net().owner_of(sub.id())?;
                        partition_rates.push(env.observed_rate(
                            owner,
                            sub.ring(),
                            now,
                            config.ric_window,
                        ));
                        if strategy == PlacementStrategy::RicAware {
                            env.net().charge_route(prev_hop, sub.id(), traffic_class::RIC)?;
                            prev_hop = owner;
                            requests += 1;
                        }
                    }
                    crate::placement::split_effective_rate(&partition_rates)
                }
            };
            rates[i] = rate;
            if strategy == PlacementStrategy::RicAware && config.reuse_ric {
                env.cache_ric(from, hkey.ring(), RicEntry { rate, observed_at: now });
            }
            // The Worst baseline uses oracle knowledge: no traffic is
            // charged for it (it exists only to bound the design space).
        }
        if strategy == PlacementStrategy::RicAware && requests > 0 {
            // The last contacted candidate returns the collected RIC
            // information (and every candidate's address) in one hop.
            env.net().charge_direct(prev_hop, traffic_class::RIC);
        }
    }

    let chosen = env.choose(&candidates, &rates, strategy);
    let level = candidates[chosen].level();
    // Under rate-driven strategies the chosen key was already interned
    // above (no re-derive, no second SHA-1); otherwise intern just the
    // winner now.
    let key = match hashed.get(chosen) {
        Some(h) => h.clone(),
        None => candidates[chosen].hashed(),
    };
    let class = if is_input { traffic_class::QUERY_INDEX } else { traffic_class::EVAL };

    let carried_ric: Vec<RicInfo> =
        if !is_input && config.reuse_ric && strategy == PlacementStrategy::RicAware {
            hashed
                .iter()
                .zip(&rates)
                .map(|(k, r)| RicInfo { key: k.clone(), rate: *r, observed_at: now })
                .collect()
        } else {
            Vec::new()
        };

    // Share routing for split keys: the query registers at its identity
    // column's cells (tuples visit their content row's cells, and the two
    // sets intersect in exactly one sub-key), so every (query, tuple) pair
    // still meets exactly once and the answer stream is identical to the
    // unsplit run. Replicated copies are the split's cost, booked as
    // fan-out.
    let targets: Vec<HashedKey> = match env.splits().route_query(&key, pending.id) {
        Some(cells) => {
            env.note_query_fanout(cells.len() as u64 - 1);
            cells
        }
        None => vec![key],
    };
    let last = targets.len() - 1;
    let mut pending = Some(pending);
    let mut carried_ric = Some(carried_ric);
    for (t, sub) in targets.into_iter().enumerate() {
        let sub_id = sub.id();
        // The last copy moves the pending query; earlier ones clone it
        // (the unsplit common case never clones).
        let (p, ric) = if t == last {
            (pending.take().expect("taken once"), carried_ric.take().expect("taken once"))
        } else {
            (
                pending.as_ref().expect("taken only on the last copy").clone(),
                carried_ric.as_ref().expect("taken only on the last copy").clone(),
            )
        };
        let msg = if is_input {
            RJoinMessage::IndexQuery { pending: p, key: sub, level }
        } else {
            RJoinMessage::Eval { pending: p, key: sub, level, carried_ric: ric }
        };
        if strategy == PlacementStrategy::RicAware {
            // After the RIC exchange the chooser knows the address of every
            // candidate node (for split candidates: of every partition
            // owner), so each copy travels in one hop.
            let owner = env.net().owner_of(sub_id)?;
            env.net().send_direct(from, owner, msg, class);
        } else {
            env.net().send(from, sub_id, msg, class)?;
        }
    }
    Ok(())
}

/// Number of worker threads the parallel driver may use.
fn available_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}
