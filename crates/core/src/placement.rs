//! Choice of the index key for a query among its candidates (Section 6),
//! and the candidate-rate model under hot-key splitting.
//!
//! # Two tiers of load balancing
//!
//! Placement is the upper half of a two-tier balancing story:
//!
//! * **Spread load** — many moderately warm keys landing on few nodes — is
//!   handled *below* RJoin by identifier movement
//!   ([`rjoin_dht::balance`]): nodes reposition on the ring so each owns a
//!   fair share of the per-key load. Placement helps by steering queries
//!   toward low-rate candidates in the first place.
//! * **Point-mass load** — one key hot enough to overwhelm whichever node
//!   owns it — cannot be fixed by either of the above: the key hashes to
//!   one identifier, so there is nothing to move and no colder candidate
//!   guaranteed to exist. That case is handled by **hot-key splitting**
//!   ([`crate::split`]): the key becomes `s` sub-keys, tuples route to one
//!   of them, queries register at all of them.
//!
//! Both tiers assume the query reached placement at all: cyclic join
//! graphs never do. They are diverted at submission by the two-plan
//! planner onto an n-dimensional cell grid
//! ([`crate::split::HypercubeGrid`]) whose per-cell replicas are fixed at
//! plan time — RIC-aware candidate choice only ever sees the pipeline's
//! rewritten queries.
//!
//! Candidate enumeration stays split-aware through
//! [`split_effective_rate`]: once a key is split, the unit that carries its
//! load is one *partition*, so the rate the placement decision should see
//! for that candidate is the maximum over its partitions (≈ `rate / s`
//! under the content hash) — a freshly split key becomes a viable
//! placement target again instead of being permanently shunned for its
//! pre-split history.

use crate::PlacementStrategy;
use rand::rngs::StdRng;
use rand::Rng;
use rjoin_query::IndexKey;

/// The effective rate of a split candidate key, given the observed rates of
/// its partitions: the maximum — the per-node burden a query copy stored at
/// the hottest partition would actually experience. An empty slice (a
/// degenerate split) is rated 0.
pub fn split_effective_rate(partition_rates: &[u64]) -> u64 {
    partition_rates.iter().copied().max().unwrap_or(0)
}

/// Chooses which candidate key a query should be indexed under, given the
/// (estimated) rate of incoming tuples of each candidate.
///
/// `candidates` and `rates` are parallel slices. Returns the index of the
/// chosen candidate.
///
/// * [`PlacementStrategy::RicAware`] — lowest rate wins; ties are broken in
///   favour of *value-level* candidates (Section 3 indexes rewritten queries
///   at the value level by default because it both spreads load better and
///   guarantees that an earlier-stored tuple can still be found), then by
///   first occurrence;
/// * [`PlacementStrategy::Worst`] — highest rate wins (the adversarial
///   baseline of Figure 2);
/// * [`PlacementStrategy::Random`] — uniform random;
/// * [`PlacementStrategy::FirstInClause`] — always the first candidate.
///
/// The randomized tie-break also matters for shared sub-join evaluation: a
/// deterministic "first candidate" rule was tried for co-locating
/// structurally identical queries, but collapsing every twin onto one
/// placement path loses answers at scale (all subscribers explore the same
/// single continuation instead of an ensemble), so sharing relies on the
/// natural collisions at rewrite sites instead.
///
/// # Panics
/// Panics if `candidates` is empty or the slices have different lengths.
pub fn choose_candidate(
    candidates: &[IndexKey],
    rates: &[u64],
    strategy: PlacementStrategy,
    rng: &mut StdRng,
) -> usize {
    assert!(!candidates.is_empty(), "placement requires at least one candidate");
    assert_eq!(candidates.len(), rates.len(), "candidates and rates must be parallel");
    match strategy {
        PlacementStrategy::RicAware => {
            let min_rate = *rates.iter().min().expect("non-empty rates");
            let minima: Vec<usize> = (0..rates.len()).filter(|&i| rates[i] == min_rate).collect();
            // Prefer value-level candidates among the minima (Section 3
            // indexes rewritten queries at the value level by default: it
            // spreads load better and lets the query find tuples that were
            // stored before it arrived). Remaining ties are broken randomly,
            // as the paper does when no further information is available —
            // a deterministic "first" rule would systematically favour the
            // lexicographically first relation, which under the Zipf
            // workload is also the hottest one.
            let value_minima: Vec<usize> = minima
                .iter()
                .copied()
                .filter(|&i| candidates[i].level() == rjoin_query::IndexLevel::Value)
                .collect();
            let pool = if value_minima.is_empty() { &minima } else { &value_minima };
            pool[rng.gen_range(0..pool.len())]
        }
        PlacementStrategy::Worst => {
            let mut worst = 0;
            for (i, &rate) in rates.iter().enumerate() {
                if rate > rates[worst] {
                    worst = i;
                }
            }
            worst
        }
        PlacementStrategy::Random => rng.gen_range(0..candidates.len()),
        PlacementStrategy::FirstInClause => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rjoin_relation::Value;

    fn candidates() -> Vec<IndexKey> {
        vec![
            IndexKey::attribute("R", "A"),
            IndexKey::attribute("S", "B"),
            IndexKey::value("S", "C", Value::from(3)),
        ]
    }

    #[test]
    fn ric_aware_picks_lowest_rate() {
        let mut rng = StdRng::seed_from_u64(0);
        let idx =
            choose_candidate(&candidates(), &[10, 2, 7], PlacementStrategy::RicAware, &mut rng);
        assert_eq!(idx, 1);
    }

    #[test]
    fn ric_aware_breaks_ties_in_favour_of_value_level() {
        let mut rng = StdRng::seed_from_u64(0);
        // All rates equal: the value-level candidate (index 2) wins the tie.
        let idx =
            choose_candidate(&candidates(), &[3, 3, 3], PlacementStrategy::RicAware, &mut rng);
        assert_eq!(idx, 2);
        // A strictly lower-rate attribute-level candidate still beats a
        // value-level one.
        let idx =
            choose_candidate(&candidates(), &[3, 1, 3], PlacementStrategy::RicAware, &mut rng);
        assert_eq!(idx, 1);
    }

    #[test]
    fn ric_aware_attribute_level_ties_are_randomised() {
        // Among equal-rate attribute-level candidates the choice is random,
        // so over many draws every candidate must be picked at least once.
        let mut rng = StdRng::seed_from_u64(1);
        let attrs = vec![
            IndexKey::attribute("R", "A"),
            IndexKey::attribute("S", "B"),
            IndexKey::attribute("P", "C"),
        ];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[choose_candidate(&attrs, &[3, 3, 3], PlacementStrategy::RicAware, &mut rng)] =
                true;
        }
        assert!(seen.iter().all(|s| *s), "tie-breaking should cover every candidate");
    }

    #[test]
    fn worst_picks_highest_rate() {
        let mut rng = StdRng::seed_from_u64(0);
        let idx = choose_candidate(&candidates(), &[10, 2, 70], PlacementStrategy::Worst, &mut rng);
        assert_eq!(idx, 2);
    }

    #[test]
    fn first_in_clause_ignores_rates() {
        let mut rng = StdRng::seed_from_u64(0);
        let idx = choose_candidate(
            &candidates(),
            &[10, 2, 0],
            PlacementStrategy::FirstInClause,
            &mut rng,
        );
        assert_eq!(idx, 0);
    }

    #[test]
    fn random_covers_all_candidates() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let idx =
                choose_candidate(&candidates(), &[1, 1, 1], PlacementStrategy::Random, &mut rng);
            seen[idx] = true;
        }
        assert!(seen.iter().all(|s| *s), "random placement should hit every candidate");
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = choose_candidate(&[], &[], PlacementStrategy::Random, &mut rng);
    }

    #[test]
    fn split_effective_rate_is_the_partition_maximum() {
        assert_eq!(split_effective_rate(&[3, 9, 1, 4]), 9);
        assert_eq!(split_effective_rate(&[7]), 7);
        assert_eq!(split_effective_rate(&[]), 0);
    }
}
