//! Messages exchanged by RJoin nodes and the query metadata they carry.

use rjoin_dht::{HashedKey, Id};
use rjoin_net::SimTime;
use rjoin_query::{IndexLevel, JoinQuery, SelectItem};
use rjoin_relation::{Timestamp, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A unique identifier for a submitted continuous query.
///
/// The paper builds `Key(q)` by concatenating the key of the submitting node
/// with a positive integer; this struct is the structured equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId {
    /// The node that submitted the query.
    pub owner: Id,
    /// Sequence number, unique per owner.
    pub seq: u64,
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.owner, self.seq)
    }
}

/// One continuation riding on a shared sub-join: the identity of an input
/// query whose evaluation has been merged into another, structurally
/// identical query, together with everything needed to fan a completed
/// answer back out to it — its owner node, its own insertion-time filter and
/// its (progressively resolved) `SELECT` list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subscriber {
    /// Identifier of the subscriber's original input query.
    pub id: QueryId,
    /// Node that submitted the subscriber's query (answers are sent here).
    pub owner: Id,
    /// Insertion time of the subscriber's query: tuples published earlier
    /// must not contribute to *this* subscriber's answers even when they
    /// trigger the shared entry for another subscriber.
    pub insert_time: Timestamp,
    /// The subscriber's `SELECT` list, resolved in lockstep with the shared
    /// query's rewriting (its select-resolution continuation).
    pub select: Vec<SelectItem>,
}

/// A hypercube-planned query's cell space: the synthetic base key its cells
/// are derived from and the total cell count.
///
/// The planner (`rjoin_query::plan`) gives a cyclic query a per-query
/// hypercube instead of a rewrite chain; the engine mints a synthetic base
/// key for it and every cell becomes one deterministic sub-key
/// ([`HashedKey::split_part`]), reusing the hot-key splitting key space.
/// Carrying the reference on the [`PendingQuery`] is what tells the node
/// procedures to evaluate rewritten descendants *inside* the cell instead
/// of re-indexing them across the network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HypercubeRef {
    /// The per-query synthetic base key.
    pub base: HashedKey,
    /// Total number of cells (`∏ s_i` of the plan's shares).
    pub cells: u32,
}

impl HypercubeRef {
    /// The interned key of cell `cell` (the base key itself for the
    /// degenerate single-cell plan — `split_part` requires at least two
    /// partitions).
    pub fn cell_key(&self, cell: u32) -> HashedKey {
        if self.cells <= 1 {
            self.base.clone()
        } else {
            self.base.split_part(cell, self.cells)
        }
    }
}

/// A query in flight: an input query or one of its rewritten descendants,
/// together with the metadata RJoin needs to evaluate it.
///
/// With shared sub-join evaluation enabled, one `PendingQuery` can carry the
/// continuations of several input queries whose sub-join structure is
/// identical: the fields below describe the *primary* subscriber (the first
/// query to claim the shared entry, whose `SELECT` list lives in `query`),
/// and `extra_subscribers` lists the others. The shared `WHERE` clause is
/// rewritten and re-indexed once; answers fan back out to every subscriber.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingQuery {
    /// Identifier of the (primary) original input query.
    pub id: QueryId,
    /// Node that submitted the (primary) query (answers are sent here).
    pub owner: Id,
    /// Insertion time `insT(q)` of the (primary) original query; only tuples
    /// published at or after this time may contribute to answers.
    pub insert_time: Timestamp,
    /// Number of join conjuncts in the original input query (used for
    /// reporting; the remaining joins are visible in `query`).
    pub original_joins: usize,
    /// The window `start` parameter (Section 5): publication time of the
    /// tuple that created this rewritten query. `None` for input queries.
    pub window_start: Option<Timestamp>,
    /// Earliest publication time among the tuples that contributed to this
    /// rewritten query. Together with [`window_max`](Self::window_max) this
    /// tracks the exact span of the partial combination, which the Section 5
    /// `start` parameter alone cannot: `start` follows the *first* (Proc. 2)
    /// or *latest* (Proc. 3) contribution, so a combination that picks up an
    /// older stored/ALTT tuple late would pass the pairwise `|start - now|`
    /// test while its true span already exceeds the window. `None` until a
    /// tuple contributes.
    pub window_min: Option<Timestamp>,
    /// Latest publication time among the contributing tuples (see
    /// [`window_min`](Self::window_min)).
    pub window_max: Option<Timestamp>,
    /// The (possibly already rewritten) query itself.
    pub query: JoinQuery,
    /// Additional input queries sharing this sub-join (empty when sharing is
    /// disabled or no structurally identical query was merged).
    pub extra_subscribers: Vec<Subscriber>,
    /// The hypercube cell space this query evaluates in, when the planner
    /// chose a hypercube plan over the rewrite pipeline. `None` for
    /// pipeline-planned queries. Inherited by every rewritten descendant:
    /// it marks the whole evaluation as cell-local.
    pub hypercube: Option<HypercubeRef>,
}

impl PendingQuery {
    /// Wraps a freshly submitted input query.
    pub fn input(id: QueryId, owner: Id, insert_time: Timestamp, query: JoinQuery) -> Self {
        PendingQuery {
            id,
            owner,
            insert_time,
            original_joins: query.join_count(),
            window_start: None,
            window_min: None,
            window_max: None,
            query,
            extra_subscribers: Vec::new(),
            hypercube: None,
        }
    }

    /// Whether this is an input query (never rewritten yet).
    pub fn is_input(&self) -> bool {
        self.window_start.is_none() && self.query.join_count() == self.original_joins
    }

    /// Derives the pending metadata for a rewritten descendant created by a
    /// tuple published at `tuple_pub_time`, following the inheritance rules
    /// of Section 5 (`start` inheritance is handled by the caller because it
    /// differs between Procedure 2 and Procedure 3).
    ///
    /// Extra subscribers do **not** carry over: the rewriting procedures
    /// re-attach the subscribers that remain eligible for the triggering
    /// tuple (see `Procedures` — a subscriber whose query was submitted
    /// after the tuple's publication must not ride on the child).
    pub fn child(&self, query: JoinQuery, window_start: Option<Timestamp>) -> Self {
        PendingQuery {
            id: self.id,
            owner: self.owner,
            insert_time: self.insert_time,
            original_joins: self.original_joins,
            window_start,
            window_min: self.window_min,
            window_max: self.window_max,
            query,
            extra_subscribers: Vec::new(),
            hypercube: self.hypercube.clone(),
        }
    }

    /// Records one more contributing tuple's publication time, keeping the
    /// exact `[window_min, window_max]` span of the partial combination up
    /// to date (called on every child the rewriting procedures produce).
    pub fn note_contribution(&mut self, pub_time: Timestamp) {
        self.window_min = Some(self.window_min.map_or(pub_time, |m| m.min(pub_time)));
        self.window_max = Some(self.window_max.map_or(pub_time, |m| m.max(pub_time)));
    }

    /// The primary subscriber's view of this query, in [`Subscriber`] form
    /// (used when this query is merged into an existing shared entry).
    pub fn primary_subscriber(&self) -> Subscriber {
        Subscriber {
            id: self.id,
            owner: self.owner,
            insert_time: self.insert_time,
            select: self.query.select().to_vec(),
        }
    }

    /// The earliest insertion time across the primary and every extra
    /// subscriber: the publication-time filter of the *shared entry* (a
    /// tuple older than every subscriber triggers nothing; per-subscriber
    /// eligibility is re-checked when answers or children are produced).
    pub fn min_insert_time(&self) -> Timestamp {
        self.extra_subscribers.iter().map(|s| s.insert_time).fold(self.insert_time, Timestamp::min)
    }

    /// Total number of subscribers (primary + extras).
    pub fn subscriber_count(&self) -> usize {
        1 + self.extra_subscribers.len()
    }
}

/// A cached or piggy-backed RIC observation about one candidate key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RicInfo {
    /// The candidate key, interned (string hashed onto the ring once).
    pub key: HashedKey,
    /// Estimated number of tuple arrivals per RIC window.
    pub rate: u64,
    /// Simulation time at which the estimate was taken.
    pub observed_at: SimTime,
}

/// Messages routed between RJoin nodes.
///
/// Index keys travel as interned [`HashedKey`]s — canonical string plus
/// precomputed ring identifier — so receivers never re-derive or re-hash
/// them, and tuple payloads are shared behind an [`Arc`] so that the
/// `2 × arity` copies Procedure 1 fans out all point at one allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RJoinMessage {
    /// A new tuple indexed under `key` (Procedure 1 → Procedure 2).
    NewTuple {
        /// The published tuple (shared across all its index-key copies).
        tuple: Arc<Tuple>,
        /// The index key under which this copy was sent.
        key: HashedKey,
        /// Whether the copy is an attribute-level or value-level copy.
        level: IndexLevel,
        /// The node that published the tuple.
        publisher: Id,
    },
    /// An input query being indexed at its first node.
    IndexQuery {
        /// The query and its metadata.
        pending: PendingQuery,
        /// The key under which it is being indexed.
        key: HashedKey,
        /// Whether `key` is attribute-level or value-level.
        level: IndexLevel,
    },
    /// A rewritten query being re-indexed (Procedure 3), carrying
    /// piggy-backed RIC information (Section 7).
    Eval {
        /// The rewritten query and its metadata.
        pending: PendingQuery,
        /// The key under which it is being indexed.
        key: HashedKey,
        /// Whether `key` is attribute-level or value-level.
        level: IndexLevel,
        /// RIC observations the sender already holds, forwarded so the
        /// receiver can reuse them for subsequent re-indexing decisions.
        carried_ric: Vec<RicInfo>,
    },
    /// An answer delivered directly to the node that submitted the query.
    Answer {
        /// The original query's identifier.
        query: QueryId,
        /// The answer row (fully resolved `SELECT` list).
        row: Vec<Value>,
        /// Simulation time at which the answer was produced.
        produced_at: SimTime,
    },
}

impl RJoinMessage {
    /// Short label used in debugging output.
    pub fn kind(&self) -> &'static str {
        match self {
            RJoinMessage::NewTuple { .. } => "NewTuple",
            RJoinMessage::IndexQuery { .. } => "IndexQuery",
            RJoinMessage::Eval { .. } => "Eval",
            RJoinMessage::Answer { .. } => "Answer",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjoin_query::parse_query;

    fn pending() -> PendingQuery {
        let q = parse_query("SELECT R.A, S.B FROM R, S WHERE R.A = S.A").unwrap();
        PendingQuery::input(QueryId { owner: Id(1), seq: 3 }, Id(1), 10, q)
    }

    #[test]
    fn query_id_display() {
        let id = QueryId { owner: Id(0xab), seq: 7 };
        assert_eq!(id.to_string(), "00000000000000ab#7");
    }

    #[test]
    fn input_query_metadata() {
        let p = pending();
        assert!(p.is_input());
        assert_eq!(p.original_joins, 1);
        assert_eq!(p.insert_time, 10);
        assert_eq!(p.window_start, None);
    }

    #[test]
    fn child_preserves_identity_and_times() {
        let p = pending();
        let rewritten = parse_query("SELECT 5, S.B FROM S WHERE S.A = 5").unwrap();
        let child = p.child(rewritten.clone(), Some(42));
        assert_eq!(child.id, p.id);
        assert_eq!(child.owner, p.owner);
        assert_eq!(child.insert_time, p.insert_time);
        assert_eq!(child.original_joins, 1);
        assert_eq!(child.window_start, Some(42));
        assert!(!child.is_input());
        assert_eq!(child.query, rewritten);
    }

    #[test]
    fn subscriber_helpers_track_min_insert_time() {
        let mut p = pending();
        assert_eq!(p.subscriber_count(), 1);
        assert_eq!(p.min_insert_time(), 10);
        let primary = p.primary_subscriber();
        assert_eq!(primary.id, p.id);
        assert_eq!(primary.insert_time, 10);
        assert_eq!(primary.select.len(), 2);

        p.extra_subscribers.push(Subscriber {
            id: QueryId { owner: Id(2), seq: 0 },
            owner: Id(2),
            insert_time: 4,
            select: vec![],
        });
        p.extra_subscribers.push(Subscriber {
            id: QueryId { owner: Id(3), seq: 0 },
            owner: Id(3),
            insert_time: 25,
            select: vec![],
        });
        assert_eq!(p.subscriber_count(), 3);
        assert_eq!(p.min_insert_time(), 4);
        // Children never inherit extras implicitly.
        let child = p.child(parse_query("SELECT 5, S.B FROM S WHERE S.A = 5").unwrap(), Some(1));
        assert!(child.extra_subscribers.is_empty());
    }

    #[test]
    fn hypercube_ref_cell_keys_are_deterministic_sub_keys() {
        let hc = HypercubeRef { base: HashedKey::new("hcube+0000000000000001+0"), cells: 8 };
        let k0 = hc.cell_key(0);
        let k7 = hc.cell_key(7);
        assert_eq!(k0.partition(), Some((0, 8)));
        assert_eq!(k7.partition(), Some((7, 8)));
        assert_eq!(k0.base_ring(), hc.base.ring());
        assert_ne!(k0.ring(), k7.ring());
        // The single-cell plan degenerates to the base key itself.
        let unit = HypercubeRef { base: hc.base.clone(), cells: 1 };
        assert_eq!(unit.cell_key(0), unit.base);
    }

    #[test]
    fn children_inherit_the_hypercube_reference() {
        let mut p = pending();
        assert!(p.hypercube.is_none());
        p.hypercube = Some(HypercubeRef { base: HashedKey::new("hcube+x+1"), cells: 4 });
        let child = p.child(parse_query("SELECT 5, S.B FROM S WHERE S.A = 5").unwrap(), Some(2));
        assert_eq!(child.hypercube, p.hypercube);
    }

    #[test]
    fn message_kinds() {
        let msg = RJoinMessage::Answer {
            query: QueryId { owner: Id(1), seq: 1 },
            row: vec![Value::from(1)],
            produced_at: 5,
        };
        assert_eq!(msg.kind(), "Answer");
    }
}
