//! RIC (Rate of Incoming tuple Count) tracking (Section 6).

use rjoin_dht::RingMap;
use rjoin_net::SimTime;
use std::collections::VecDeque;

/// Tracks, per index key, the arrival times of recent tuples so that a node
/// can answer "how many tuples arrived under this key during the last
/// observation window?" — the RIC information used to choose where to index
/// queries.
///
/// Keys are the 64-bit ring identifiers of the index keys (see
/// [`rjoin_dht::HashedKey`]): the identifier is computed once when a key
/// enters the system, so the tracker never hashes strings on the arrival
/// path.
///
/// Each arrival is recorded as `(now, tick)`: `now` is the node's clock at
/// arrival (the timestamp the rate window is measured against) and `tick`
/// is the raw delivery tick. The two differ only when the driver advanced
/// the global clock past still-pending deliveries; the sharded runtime
/// needs the raw tick to answer a remote rate request *as of* the reader's
/// tick ([`rate_at`](RicTracker::rate_at)), because under a compressed
/// clock several ticks share one `now`.
///
/// The paper's prediction model is deliberately simple ("we observe what has
/// happened during the last time window and assume a similar behaviour for
/// the future"); more sophisticated predictors can be plugged in locally,
/// which is why this tracker is a standalone component.
#[derive(Debug, Clone, Default)]
pub struct RicTracker {
    arrivals: RingMap<VecDeque<(SimTime, SimTime)>>,
    total_arrivals: u64,
}

impl RicTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the arrival of one tuple under the key with ring identifier
    /// `key` at clock time `now`, delivered at tick `at`.
    pub fn record_arrival(&mut self, key: u64, now: SimTime, at: SimTime) {
        self.arrivals.entry(key).or_default().push_back((now, at));
        self.total_arrivals += 1;
    }

    /// Like [`record_arrival`](Self::record_arrival), but first drops
    /// arrivals recorded more than `horizon` ticks before `now`, keeping
    /// the per-key deque bounded by the arrival rate times the horizon.
    ///
    /// With `horizon >= window + 2δ` this is invisible to every read: a
    /// dropped entry is strictly below the cutoff of any [`rate`](Self::rate)
    /// call (reads never use a clock older than the recording node's), and
    /// remote [`rate_at`](Self::rate_at) readers lag the owner by at most
    /// the shard lookahead δ.
    pub fn record_arrival_bounded(
        &mut self,
        key: u64,
        now: SimTime,
        at: SimTime,
        horizon: SimTime,
    ) {
        let times = self.arrivals.entry(key).or_default();
        let cutoff = now.saturating_sub(horizon);
        while let Some(&(front, _)) = times.front() {
            if front < cutoff {
                times.pop_front();
            } else {
                break;
            }
        }
        times.push_back((now, at));
        self.total_arrivals += 1;
    }

    /// Number of tuples that arrived under `key` during `(now - window, now]`.
    /// Also prunes arrivals that fell out of the window.
    ///
    /// This is the sequential driver's read: pruning is lossy on purpose
    /// (the tracker only keeps what the most recent window retained), which
    /// keeps the arrival deques short on the hot path.
    pub fn rate(&mut self, key: u64, now: SimTime, window: SimTime) -> u64 {
        let Some(times) = self.arrivals.get_mut(&key) else { return 0 };
        let cutoff = now.saturating_sub(window);
        while let Some(&(front, _)) = times.front() {
            if front <= cutoff && front != now {
                times.pop_front();
            } else {
                break;
            }
        }
        times.len() as u64
    }

    /// Pure (non-pruning) twin of [`rate`](Self::rate) used by the sharded
    /// runtime: counts the arrivals in `(now - window, now]` that were
    /// delivered at tick `max_tick` or earlier, without mutating anything.
    ///
    /// The tick bound makes a remote read exact under shard lookahead: the
    /// owning shard may already have processed deliveries *beyond* the
    /// reader's tick, and when a driver compressed the clock several of
    /// those share the reader's `now` — filtering by raw tick reproduces
    /// exactly the arrivals a sequential `(at, seq)`-ordered run would have
    /// observed at the reader's position. Being read-only it is also
    /// insensitive to the (non-deterministic) wall-clock order in which
    /// concurrent readers arrive, which the lossy pruning of
    /// [`rate`](Self::rate) is not.
    pub fn rate_at(&self, key: u64, now: SimTime, window: SimTime, max_tick: SimTime) -> u64 {
        let Some(times) = self.arrivals.get(&key) else { return 0 };
        // Entries are appended with non-decreasing clock *and* tick, so all
        // three bounds are prefix/suffix boundaries: count entries with
        // `clock in (now - window, now]` (the `== now` window-0 exception
        // collapses into the lower bound) and `tick <= max_tick`.
        let cutoff = now.saturating_sub(window);
        let lower = cutoff.saturating_add(1).min(now);
        let lo = times.partition_point(|&(t, _)| t < lower);
        let hi_now = times.partition_point(|&(t, _)| t <= now);
        let hi_tick = times.partition_point(|&(_, at)| at <= max_tick);
        (hi_now.min(hi_tick).saturating_sub(lo)) as u64
    }

    /// Total arrivals ever recorded (diagnostic).
    pub fn total_arrivals(&self) -> u64 {
        self.total_arrivals
    }

    /// Number of distinct keys with at least one recorded arrival.
    pub fn tracked_keys(&self) -> usize {
        self.arrivals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjoin_dht::HashedKey;

    fn k(text: &str) -> u64 {
        HashedKey::new(text).ring()
    }

    #[test]
    fn counts_arrivals_within_window() {
        let mut t = RicTracker::new();
        for time in [10, 20, 30, 40] {
            t.record_arrival(k("R+A"), time, time);
        }
        assert_eq!(t.rate(k("R+A"), 40, 100), 4);
        assert_eq!(t.rate(k("R+A"), 40, 15), 2); // 30 and 40 are within (25, 40]
        assert_eq!(t.rate(k("R+A"), 40, 5), 1); // only 40
        assert_eq!(t.rate(k("S+B"), 40, 100), 0);
    }

    #[test]
    fn pruning_is_permanent() {
        let mut t = RicTracker::new();
        t.record_arrival(k("k"), 1, 1);
        t.record_arrival(k("k"), 100, 100);
        // A narrow window at t=100 prunes the old arrival...
        assert_eq!(t.rate(k("k"), 100, 10), 1);
        // ...so a later wide query no longer sees it (the tracker only keeps
        // what the most recent window retained).
        assert_eq!(t.rate(k("k"), 100, 1000), 1);
        assert_eq!(t.total_arrivals(), 2);
        assert_eq!(t.tracked_keys(), 1);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let mut t = RicTracker::new();
        t.record_arrival(k("a"), 5, 5);
        t.record_arrival(k("b"), 5, 5);
        t.record_arrival(k("b"), 6, 6);
        assert_eq!(t.rate(k("a"), 10, 100), 1);
        assert_eq!(t.rate(k("b"), 10, 100), 2);
        assert_eq!(t.tracked_keys(), 2);
    }

    #[test]
    fn rate_at_same_tick_counts_current_arrival() {
        let mut t = RicTracker::new();
        t.record_arrival(k("k"), 50, 50);
        // window of zero ticks still counts the arrival at `now` itself.
        assert_eq!(t.rate(k("k"), 50, 0), 1);
        assert_eq!(t.rate_at(k("k"), 50, 0, 50), 1);
    }

    #[test]
    fn rate_at_is_pure_and_filters_by_tick() {
        let mut t = RicTracker::new();
        // Three arrivals sharing one compressed clock (`now`=50) but
        // delivered at ticks 10, 11 and 12, plus one genuinely later.
        t.record_arrival(k("k"), 50, 10);
        t.record_arrival(k("k"), 50, 11);
        t.record_arrival(k("k"), 50, 12);
        t.record_arrival(k("k"), 60, 60);
        // A reader at tick 11 sees only the first two, whatever the owner
        // has processed since.
        assert_eq!(t.rate_at(k("k"), 50, 100, 11), 2);
        // A reader at tick 12 sees all three compressed arrivals but not
        // the future one (now-bounded).
        assert_eq!(t.rate_at(k("k"), 50, 100, 12), 3);
        assert_eq!(t.rate_at(k("k"), 60, 100, 60), 4);
        // Narrow windows apply to the recorded clock, not the tick.
        assert_eq!(t.rate_at(k("k"), 60, 5, 60), 1);
        // rate_at never pruned anything.
        assert_eq!(t.rate(k("k"), 60, 1000), 4);
    }

    #[test]
    fn bounded_recording_drops_only_out_of_horizon_entries() {
        let mut t = RicTracker::new();
        t.record_arrival_bounded(k("k"), 10, 10, 20);
        t.record_arrival_bounded(k("k"), 25, 25, 20);
        // horizon 20 at now=35 drops the arrival at 10 (< 15), keeps 25.
        t.record_arrival_bounded(k("k"), 35, 35, 20);
        assert_eq!(t.rate_at(k("k"), 35, 1000, 35), 2);
        assert_eq!(t.total_arrivals(), 3, "totals count every arrival ever");
        // Reads inside the horizon are unaffected by the pruning.
        assert_eq!(t.rate_at(k("k"), 35, 20, 35), 2);
        assert_eq!(t.rate(k("k"), 35, 20), 2);
    }
}
