//! RIC (Rate of Incoming tuple Count) tracking (Section 6).

use rjoin_dht::RingMap;
use rjoin_net::SimTime;
use std::collections::VecDeque;

/// Tracks, per index key, the arrival times of recent tuples so that a node
/// can answer "how many tuples arrived under this key during the last
/// observation window?" — the RIC information used to choose where to index
/// queries.
///
/// Keys are the 64-bit ring identifiers of the index keys (see
/// [`rjoin_dht::HashedKey`]): the identifier is computed once when a key
/// enters the system, so the tracker never hashes strings on the arrival
/// path.
///
/// The paper's prediction model is deliberately simple ("we observe what has
/// happened during the last time window and assume a similar behaviour for
/// the future"); more sophisticated predictors can be plugged in locally,
/// which is why this tracker is a standalone component.
#[derive(Debug, Clone, Default)]
pub struct RicTracker {
    arrivals: RingMap<VecDeque<SimTime>>,
    total_arrivals: u64,
}

impl RicTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the arrival of one tuple under the key with ring identifier
    /// `key` at time `now`.
    pub fn record_arrival(&mut self, key: u64, now: SimTime) {
        self.arrivals.entry(key).or_default().push_back(now);
        self.total_arrivals += 1;
    }

    /// Number of tuples that arrived under `key` during `(now - window, now]`.
    /// Also prunes arrivals that fell out of the window.
    pub fn rate(&mut self, key: u64, now: SimTime, window: SimTime) -> u64 {
        let Some(times) = self.arrivals.get_mut(&key) else { return 0 };
        let cutoff = now.saturating_sub(window);
        while let Some(&front) = times.front() {
            if front <= cutoff && front != now {
                times.pop_front();
            } else {
                break;
            }
        }
        times.len() as u64
    }

    /// Total arrivals ever recorded (diagnostic).
    pub fn total_arrivals(&self) -> u64 {
        self.total_arrivals
    }

    /// Number of distinct keys with at least one recorded arrival.
    pub fn tracked_keys(&self) -> usize {
        self.arrivals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjoin_dht::HashedKey;

    fn k(text: &str) -> u64 {
        HashedKey::new(text).ring()
    }

    #[test]
    fn counts_arrivals_within_window() {
        let mut t = RicTracker::new();
        for time in [10, 20, 30, 40] {
            t.record_arrival(k("R+A"), time);
        }
        assert_eq!(t.rate(k("R+A"), 40, 100), 4);
        assert_eq!(t.rate(k("R+A"), 40, 15), 2); // 30 and 40 are within (25, 40]
        assert_eq!(t.rate(k("R+A"), 40, 5), 1); // only 40
        assert_eq!(t.rate(k("S+B"), 40, 100), 0);
    }

    #[test]
    fn pruning_is_permanent() {
        let mut t = RicTracker::new();
        t.record_arrival(k("k"), 1);
        t.record_arrival(k("k"), 100);
        // A narrow window at t=100 prunes the old arrival...
        assert_eq!(t.rate(k("k"), 100, 10), 1);
        // ...so a later wide query no longer sees it (the tracker only keeps
        // what the most recent window retained).
        assert_eq!(t.rate(k("k"), 100, 1000), 1);
        assert_eq!(t.total_arrivals(), 2);
        assert_eq!(t.tracked_keys(), 1);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let mut t = RicTracker::new();
        t.record_arrival(k("a"), 5);
        t.record_arrival(k("b"), 5);
        t.record_arrival(k("b"), 6);
        assert_eq!(t.rate(k("a"), 10, 100), 1);
        assert_eq!(t.rate(k("b"), 10, 100), 2);
        assert_eq!(t.tracked_keys(), 2);
    }

    #[test]
    fn rate_at_same_tick_counts_current_arrival() {
        let mut t = RicTracker::new();
        t.record_arrival(k("k"), 50);
        // window of zero ticks still counts the arrival at `now` itself.
        assert_eq!(t.rate(k("k"), 50, 0), 1);
    }
}
