//! Hot-key splitting: share-based partitioning for heavy-hitter keys.
//!
//! Identifier movement (Karger & Ruhl, `rjoin_dht::balance`) balances load
//! that is *spread over many keys* by letting lightly loaded nodes take over
//! part of a heavy node's arc. It is powerless against a **point mass**: a
//! single hot key hashes to one identifier, and whichever node owns that
//! identifier carries the key's entire load. Afrati, Ullman &
//! Vasilakopoulos's share-based partitioning solves exactly this case by
//! giving the heavy hitter a *share* of the network: the key is split into
//! `s` deterministic sub-keys ([`rjoin_dht::HashedKey::split_part`]), one
//! side of the join is **partitioned** over the sub-keys and the other side
//! is **replicated** to all of them.
//!
//! The share assignment follows the Shares/hypercube idea: a split key's
//! `s` sub-keys form an `r × c` **grid** ([`SplitGrid`]). A tuple routes to
//! one *row* by content hash ([`partition_for_tuple`]) and is indexed at
//! that row's `c` cells; a query routes to one *column* by identity hash
//! ([`partition_for_query`]) and registers at that column's `r` cells. The
//! two sets intersect in exactly one cell, so every `(stored query, tuple)`
//! pair still meets exactly once — the one rewrite/completion the unsplit
//! run would have performed at the base key happens at exactly one
//! sub-key, and the answer stream is the same multiset as the unsplit run
//! (`DISTINCT` duplicates are removed by the owner-side filter as before).
//! What changes is *where the work lands*: per cell, tuple deliveries
//! divide by `r` and `Eval` deliveries divide by `c`.
//!
//! The grid shape is the share: [`choose_grid`] apportions `s` between the
//! two dimensions in proportion to the key's observed tuple vs. `Eval`
//! rates (minimizing the dominant per-cell stream), so a tuple-hot key
//! gets an `(s, 1)` grid (pure tuple partitioning), an `Eval`-hot key gets
//! `(1, s)` (pure query partitioning), and a key heavy on both sides gets
//! a balanced rectangle — Afrati, Ullman & Vasilakopoulos's shares,
//! specialized to RJoin's two delivery streams.
//!
//! [`SplitMap`] is the engine-global registry of active splits. It is
//! mutated only between drains (split activation happens on the driver
//! thread, when a publication observes that a key's rate crossed the
//! configured threshold) and read-only during drains, which is what makes
//! the sharded driver's concurrent dispatch safe and deterministic.
//!
//! # From 2-D grids to N-dimensional hypercubes
//!
//! [`SplitGrid`] is the degenerate two-axis case of the general **shares**
//! model. [`HypercubeGrid`] lifts it to `k` axes for the hypercube query
//! plan (`rjoin_query::plan`): each axis is one join-attribute equivalence
//! class with share `s_i`, the grid spans `s_1 × … × s_k` cells, and the
//! share vector comes from the planner's `allocate_shares` — the
//! k-dimensional generalization of [`choose_grid`]'s rule of minimizing the
//! dominant per-cell stream.
//!
//! Routing generalizes the row/column rule to *subcubes*. A tuple hashes
//! each attribute its relation binds ([`partition_for_value`]) to pin a
//! coordinate on that axis, and is replicated across the axes it leaves
//! unbound: its copies land on the axis-aligned subcube
//! ([`HypercubeGrid::subcube`]) fixed by its bound coordinates. The
//! hypercube-planned query (the Eval side) replicates to **all** cells —
//! the `k`-axis analogue of a query registering at its column's whole row
//! set. Any full joining combination agrees on every class value, so it
//! pins every coordinate and its tuples co-occur in **exactly one** cell:
//! each answer is produced once globally, with no cross-cell coordination
//! and no per-cell dedup (`DISTINCT` still collapses owner-side).

use crate::messages::QueryId;
use rjoin_dht::{HashedKey, RingMap};
use rjoin_net::SimTime;
use rjoin_relation::Tuple;

/// The share grid of one split key: `rows × cols` sub-keys, tuples
/// partitioned over rows, queries over columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitGrid {
    /// Tuple-side partition count `r`.
    pub rows: u32,
    /// Query-side partition count `c`.
    pub cols: u32,
}

impl SplitGrid {
    /// A grid with the given dimensions.
    ///
    /// # Panics
    /// Panics unless the grid has at least two cells (a 1×1 grid is not a
    /// split) and both dimensions are non-zero.
    pub fn new(rows: u32, cols: u32) -> Self {
        assert!(rows >= 1 && cols >= 1, "grid dimensions must be non-zero");
        assert!(rows * cols >= 2, "a split needs at least two cells");
        SplitGrid { rows, cols }
    }

    /// Pure tuple partitioning: tuples route to one of `s` sub-keys,
    /// queries register at all of them.
    pub fn tuples(s: u32) -> Self {
        SplitGrid::new(s, 1)
    }

    /// Pure query partitioning: queries route to one of `s` sub-keys,
    /// tuples are indexed at all of them.
    pub fn queries(s: u32) -> Self {
        SplitGrid::new(1, s)
    }

    /// Total number of cells (sub-keys).
    pub fn cells(&self) -> u32 {
        self.rows * self.cols
    }

    /// The linear sub-key index of cell `(row, col)`.
    fn cell(&self, row: u32, col: u32) -> u32 {
        row * self.cols + col
    }
}

/// An N-dimensional share grid: the cell space of a hypercube-planned
/// query, one axis per join-attribute equivalence class.
///
/// [`SplitGrid`] is the two-axis special case (`rows × cols` with tuples
/// pinned on axis 0 and queries on axis 1); `HypercubeGrid` carries an
/// arbitrary share vector `s_1 … s_k` and linearizes cells in row-major
/// (mixed-radix, last axis fastest) order, matching `SplitGrid::cell`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HypercubeGrid {
    shares: Vec<u32>,
}

impl HypercubeGrid {
    /// A grid with the given per-axis shares.
    ///
    /// # Panics
    /// Panics if any share is zero (an axis with no partitions has no
    /// coordinates). A zero-axis grid is allowed: it has one cell, the
    /// centralized degenerate case.
    pub fn new(shares: Vec<u32>) -> Self {
        assert!(shares.iter().all(|&s| s >= 1), "every axis share must be non-zero");
        HypercubeGrid { shares }
    }

    /// Number of axes.
    pub fn dims(&self) -> usize {
        self.shares.len()
    }

    /// The per-axis shares.
    pub fn shares(&self) -> &[u32] {
        &self.shares
    }

    /// Total number of cells (`∏ s_i`; `1` for a zero-axis grid).
    pub fn cells(&self) -> u32 {
        self.shares.iter().product()
    }

    /// The linear index of the cell at `coords` (row-major, last axis
    /// fastest).
    ///
    /// # Panics
    /// Panics if `coords` has the wrong arity or a coordinate is out of its
    /// axis range.
    pub fn cell_of(&self, coords: &[u32]) -> u32 {
        assert_eq!(coords.len(), self.dims(), "coordinate arity must match the axis count");
        let mut cell = 0u32;
        for (i, (&c, &s)) in coords.iter().zip(&self.shares).enumerate() {
            assert!(c < s, "coordinate {c} out of range on axis {i} (share {s})");
            cell = cell * s + c;
        }
        cell
    }

    /// The linear indices of the axis-aligned subcube fixed by the bound
    /// coordinates: axes with `Some(c)` are pinned to `c`, axes with `None`
    /// range over their whole share. This is where a tuple's index copies
    /// land — `∏ s_i` over its unbound axes cells, in ascending linear
    /// order (deterministic everywhere).
    ///
    /// # Panics
    /// Panics if `bound` has the wrong arity or a pinned coordinate is out
    /// of range.
    pub fn subcube(&self, bound: &[Option<u32>]) -> Vec<u32> {
        assert_eq!(bound.len(), self.dims(), "binding arity must match the axis count");
        let copies: u32 =
            bound.iter().zip(&self.shares).map(|(b, &s)| if b.is_some() { 1 } else { s }).product();
        let mut cells = Vec::with_capacity(copies as usize);
        let mut coords: Vec<u32> = bound.iter().map(|b| b.unwrap_or(0)).collect();
        loop {
            cells.push(self.cell_of(&coords));
            // Odometer over the unbound axes, last axis fastest.
            let mut axis = self.dims();
            loop {
                if axis == 0 {
                    return cells;
                }
                axis -= 1;
                if bound[axis].is_some() {
                    continue;
                }
                coords[axis] += 1;
                if coords[axis] < self.shares[axis] {
                    break;
                }
                coords[axis] = 0;
            }
        }
    }
}

/// How a delivery (tuple copy or query) reaches a split key's cells: its
/// own partition's cell set — one cell when the other dimension is 1, a
/// row/column of cells otherwise.
pub type SplitRoute = Vec<HashedKey>;

/// One active split: the base key and its share grid.
#[derive(Debug, Clone)]
pub struct SplitEntry {
    /// The (unsplit) base key.
    pub key: HashedKey,
    /// The share grid.
    pub grid: SplitGrid,
    /// Simulation time at which the split was activated.
    pub split_at: SimTime,
}

/// Apportions `s` cells between the tuple and query dimensions in
/// proportion to the observed arrival rates: among the factor pairs
/// `(r, c)` with `r · c = s`, picks the one minimizing the dominant
/// per-cell stream `max(tuple_rate / r, eval_rate / c)`; ties break toward
/// the tuple side (larger `r`), whose stream is unbounded in a continuous
/// system. With a zero `Eval` rate this degenerates to [`SplitGrid::tuples`],
/// with a zero tuple rate to [`SplitGrid::queries`].
pub fn choose_grid(s: u32, tuple_rate: u64, eval_rate: u64) -> SplitGrid {
    let s = s.max(2);
    let mut best: Option<(u64, SplitGrid)> = None;
    for rows in (1..=s).rev() {
        if !s.is_multiple_of(rows) {
            continue;
        }
        let cols = s / rows;
        let cost = (tuple_rate / rows as u64).max(eval_rate / cols as u64);
        if best.is_none_or(|(c, _)| cost < c) {
            best = Some((cost, SplitGrid::new(rows, cols)));
        }
    }
    best.expect("s >= 2 always has the (s, 1) factorization").1
}

/// The engine-global registry of split hot keys, indexed by the base key's
/// ring identifier.
#[derive(Debug, Clone, Default)]
pub struct SplitMap {
    entries: RingMap<SplitEntry>,
}

impl SplitMap {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the key with base ring identifier `base_ring` is split.
    pub fn is_split(&self, base_ring: u64) -> bool {
        self.entries.contains_key(&base_ring)
    }

    /// The split entry for `base_ring`, if the key is split.
    pub fn get(&self, base_ring: u64) -> Option<&SplitEntry> {
        self.entries.get(&base_ring)
    }

    /// Registers a split of `key` over the given share grid. Returns
    /// `false` (and changes nothing) if the key was already split.
    pub fn insert(&mut self, key: HashedKey, grid: SplitGrid, split_at: SimTime) -> bool {
        if self.entries.contains_key(&key.ring()) {
            return false;
        }
        assert!(key.partition().is_none(), "sub-keys cannot be split again");
        self.entries.insert(key.ring(), SplitEntry { key, grid, split_at });
        true
    }

    /// Number of split keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no key is split.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the active splits.
    pub fn iter(&self) -> impl Iterator<Item = &SplitEntry> {
        self.entries.values()
    }

    /// The cells a **tuple** index copy addressed to `key` must reach: its
    /// content row's `c` cells. Returns `None` in the unsplit case so
    /// callers pay nothing on the (overwhelmingly common) cold path.
    pub fn route_tuple(&self, key: &HashedKey, tuple: &Tuple) -> Option<SplitRoute> {
        let entry = self.entries.get(&key.ring())?;
        let grid = entry.grid;
        let row = partition_for_tuple(tuple, grid.rows);
        Some((0..grid.cols).map(|col| key.split_part(grid.cell(row, col), grid.cells())).collect())
    }

    /// The cells a **query** (input or rewritten) dispatched to `key` must
    /// register at: its identity column's `r` cells. `None` when unsplit.
    pub fn route_query(&self, key: &HashedKey, id: QueryId) -> Option<SplitRoute> {
        let entry = self.entries.get(&key.ring())?;
        let grid = entry.grid;
        let col = partition_for_query(id, grid.cols);
        Some((0..grid.rows).map(|row| key.split_part(grid.cell(row, col), grid.cells())).collect())
    }
}

/// The partition a tuple belongs to among `parts` sub-keys of a split key:
/// an FNV-1a content hash over the tuple's relation, every attribute value
/// and the publication time, reduced mod `parts`.
///
/// Hashing the *whole* tuple (rather than the split key's own attribute
/// value) matters: for a value-level hot key every indexed tuple shares the
/// key's value, so only the remaining content can spread them. Publication
/// time is included so even fully identical payloads scatter. The function
/// is a pure content hash — independent of drivers, shard counts and
/// arrival order — so routing is deterministic everywhere.
pub fn partition_for_tuple(tuple: &Tuple, parts: u32) -> u32 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(tuple.relation().as_bytes());
    for value in tuple.values() {
        match value {
            rjoin_relation::Value::Int(v) => {
                eat(&[0x01]);
                eat(&v.to_le_bytes());
            }
            rjoin_relation::Value::Str(s) => {
                eat(&[0x02]);
                eat(s.as_bytes());
            }
        }
    }
    eat(&tuple.pub_time().to_le_bytes());
    (h % parts as u64) as u32
}

/// The axis coordinate a single attribute value pins among `share`
/// partitions: an FNV-1a hash over the tagged value bytes, reduced mod
/// `share`. This is the hypercube routing hash — two tuples agreeing on a
/// join attribute's value always pin the same coordinate on that class's
/// axis, whatever relation they come from, which is what makes a joining
/// combination meet in exactly one cell. Pure content hash: deterministic
/// across drivers, shard counts and arrival order.
pub fn partition_for_value(value: &rjoin_relation::Value, share: u32) -> u32 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    match value {
        rjoin_relation::Value::Int(v) => {
            eat(&[0x01]);
            eat(&v.to_le_bytes());
        }
        rjoin_relation::Value::Str(s) => {
            eat(&[0x02]);
            eat(s.as_bytes());
        }
    }
    (h % share as u64) as u32
}

/// The partition a query belongs to among `parts` sub-keys of a
/// query-partitioned split key: a mix of the query's identity (owner ring
/// id and per-owner sequence number) reduced mod `parts`. All rewritten
/// descendants of one input query share its [`QueryId`] and therefore its
/// partition, so a query's state for one split key never straddles
/// partitions; balance comes from the population of distinct queries.
pub fn partition_for_query(id: QueryId, parts: u32) -> u32 {
    (rjoin_dht::mix64(id.owner.0 ^ id.seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % parts as u64)
        as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjoin_relation::Value;

    fn tuple(values: [i64; 3], pub_time: u64) -> Tuple {
        Tuple::new("R", values.iter().map(|v| Value::from(*v)).collect(), pub_time)
    }

    #[test]
    fn partitioning_is_deterministic_and_in_range() {
        let t = tuple([1, 2, 3], 7);
        let p = partition_for_tuple(&t, 8);
        assert_eq!(p, partition_for_tuple(&t, 8));
        assert!(p < 8);
        assert_eq!(partition_for_tuple(&t, 1), 0);
    }

    #[test]
    fn partitioning_spreads_distinct_tuples() {
        // 64 tuples sharing the same value in attribute 0 (a value-level hot
        // key scenario) must still spread over the partitions.
        let mut seen = [false; 4];
        for i in 0..64 {
            let t = tuple([7, i, i * 3], 100 + i as u64);
            seen[partition_for_tuple(&t, 4) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "content hashing must reach every partition");
    }

    fn qid(owner: u64, seq: u64) -> QueryId {
        QueryId { owner: rjoin_dht::Id(owner), seq }
    }

    #[test]
    fn tuple_grid_routes_tuples_single_and_replicates_queries() {
        let mut splits = SplitMap::new();
        let hot = HashedKey::new("R+A");
        let cold = HashedKey::new("S+B");
        assert!(splits.insert(hot.clone(), SplitGrid::tuples(4), 10));
        assert!(!splits.insert(hot.clone(), SplitGrid::queries(8), 11), "double split is refused");
        assert_eq!(splits.len(), 1);
        assert!(splits.is_split(hot.ring()));
        assert!(!splits.is_split(cold.ring()));
        assert_eq!(splits.get(hot.ring()).unwrap().grid.cells(), 4);
        assert_eq!(splits.get(hot.ring()).unwrap().split_at, 10);

        let t = tuple([1, 2, 3], 5);
        let tuple_route = splits.route_tuple(&hot, &t).unwrap();
        assert_eq!(tuple_route.len(), 1, "an (s, 1) grid routes each tuple to one cell");
        assert_eq!(tuple_route[0].partition(), Some((partition_for_tuple(&t, 4), 4)));
        assert_eq!(tuple_route[0].base_ring(), hot.ring());
        assert!(splits.route_tuple(&cold, &t).is_none(), "cold keys route unchanged");

        let query_route = splits.route_query(&hot, qid(1, 1)).unwrap();
        assert_eq!(query_route.len(), 4, "an (s, 1) grid registers each query everywhere");
        for (p, sub) in query_route.iter().enumerate() {
            assert_eq!(sub.partition(), Some((p as u32, 4)));
        }
        assert!(splits.route_query(&cold, qid(1, 1)).is_none());
    }

    #[test]
    fn query_grid_routes_queries_single_and_replicates_tuples() {
        let mut splits = SplitMap::new();
        let hot = HashedKey::new("R+A+i:0");
        assert!(splits.insert(hot.clone(), SplitGrid::queries(4), 3));

        let query_route = splits.route_query(&hot, qid(7, 2)).unwrap();
        assert_eq!(query_route.len(), 1);
        assert_eq!(query_route[0].partition(), Some((partition_for_query(qid(7, 2), 4), 4)));
        let t = tuple([0, 2, 3], 5);
        assert_eq!(splits.route_tuple(&hot, &t).unwrap().len(), 4);
    }

    /// The hypercube property: whatever the grid shape, a tuple's cell set
    /// and a query's cell set intersect in exactly one sub-key.
    #[test]
    fn rectangular_grid_meets_exactly_once() {
        let mut splits = SplitMap::new();
        let hot = HashedKey::new("R+A");
        assert!(splits.insert(hot.clone(), SplitGrid::new(4, 2), 0));
        for i in 0..24 {
            let t = tuple([i, i * 7, 3], 50 + i as u64);
            let t_cells = splits.route_tuple(&hot, &t).unwrap();
            assert_eq!(t_cells.len(), 2, "a (4, 2) grid indexes each tuple at its row's cells");
            for owner in 0..24u64 {
                let q_cells = splits.route_query(&hot, qid(owner * 31, owner)).unwrap();
                assert_eq!(q_cells.len(), 4, "each query registers at its column's cells");
                let meets = t_cells.iter().filter(|cell| q_cells.contains(cell)).count();
                assert_eq!(meets, 1, "every (query, tuple) pair must meet exactly once");
            }
        }
    }

    #[test]
    fn query_partitioning_is_deterministic_and_spreads() {
        assert_eq!(partition_for_query(qid(3, 9), 8), partition_for_query(qid(3, 9), 8));
        assert_eq!(partition_for_query(qid(3, 9), 1), 0);
        let mut seen = [false; 4];
        for owner in 0..32u64 {
            seen[partition_for_query(qid(owner * 977, owner), 4) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "query identities must reach every partition");
    }

    #[test]
    fn choose_grid_apportions_shares_by_rate() {
        // Pure tuple heat: all cells to the tuple side.
        assert_eq!(choose_grid(8, 100, 0), SplitGrid::tuples(8));
        // Pure Eval heat: all cells to the query side.
        assert_eq!(choose_grid(8, 0, 100), SplitGrid::queries(8));
        // Balanced heat: a balanced rectangle.
        let g = choose_grid(8, 100, 100);
        assert!(g.cells() == 8 && g.rows >= 2 && g.cols >= 2, "balanced heat gets a rectangle");
        assert_eq!(g.rows, 4, "ties break toward the tuple side");
        // Lopsided heat leans the grid accordingly.
        assert_eq!(choose_grid(8, 400, 90), SplitGrid::new(8, 1));
        assert_eq!(choose_grid(16, 400, 100), SplitGrid::new(8, 2));
        // A prime cell count still has the two pure factorizations.
        assert_eq!(choose_grid(7, 10, 1000), SplitGrid::queries(7));
        // The clamp: s < 2 is raised to 2.
        assert_eq!(choose_grid(1, 5, 0), SplitGrid::tuples(2));
    }

    #[test]
    fn hypercube_grid_linearizes_row_major() {
        let g = HypercubeGrid::new(vec![2, 3, 2]);
        assert_eq!(g.dims(), 3);
        assert_eq!(g.cells(), 12);
        assert_eq!(g.cell_of(&[0, 0, 0]), 0);
        assert_eq!(g.cell_of(&[0, 0, 1]), 1);
        assert_eq!(g.cell_of(&[0, 1, 0]), 2);
        assert_eq!(g.cell_of(&[1, 2, 1]), 11);
    }

    #[test]
    fn hypercube_grid_matches_split_grid_linearization() {
        // A two-axis hypercube is exactly a SplitGrid: same cell numbering.
        let sg = SplitGrid::new(4, 2);
        let hg = HypercubeGrid::new(vec![4, 2]);
        assert_eq!(sg.cells(), hg.cells());
        for row in 0..4 {
            for col in 0..2 {
                assert_eq!(sg.cell(row, col), hg.cell_of(&[row, col]));
            }
        }
        // A tuple pinned on axis 0 covers the same cells as its grid row;
        // a query pinned on axis 1 covers the same cells as its column.
        assert_eq!(hg.subcube(&[Some(2), None]), vec![4, 5]);
        assert_eq!(hg.subcube(&[None, Some(1)]), vec![1, 3, 5, 7]);
    }

    #[test]
    fn subcube_enumerates_unbound_axes() {
        let g = HypercubeGrid::new(vec![2, 2, 2]);
        assert_eq!(g.subcube(&[Some(1), Some(0), Some(1)]), vec![5]);
        assert_eq!(g.subcube(&[Some(0), None, Some(1)]), vec![1, 3]);
        assert_eq!(g.subcube(&[None, None, None]), (0..8).collect::<Vec<_>>());
        // The degenerate zero-axis grid has the single centralized cell.
        let unit = HypercubeGrid::new(Vec::new());
        assert_eq!(unit.cells(), 1);
        assert_eq!(unit.subcube(&[]), vec![0]);
    }

    /// The meeting property in k dimensions: tuples bound on complementary
    /// axis subsets co-occur in exactly one cell when their pins agree.
    #[test]
    fn hypercube_subcubes_meet_exactly_once() {
        let g = HypercubeGrid::new(vec![3, 2, 4]);
        for a in 0..3 {
            for b in 0..2 {
                for c in 0..4 {
                    let t1 = g.subcube(&[Some(a), Some(b), None]);
                    let t2 = g.subcube(&[None, Some(b), Some(c)]);
                    let meets = t1.iter().filter(|cell| t2.contains(cell)).count();
                    assert_eq!(meets, 1, "agreeing pins must intersect in one cell");
                    let full = g.subcube(&[Some(a), Some(b), Some(c)]);
                    assert_eq!(full.len(), 1);
                    assert!(t1.contains(&full[0]) && t2.contains(&full[0]));
                }
            }
        }
    }

    #[test]
    fn value_partitioning_is_deterministic_and_spreads() {
        let v = Value::from(42);
        assert_eq!(partition_for_value(&v, 8), partition_for_value(&v, 8));
        assert_eq!(partition_for_value(&v, 1), 0);
        assert_eq!(
            partition_for_value(&Value::from(7), 8),
            partition_for_value(&Value::from(7), 8),
            "the coordinate depends only on the value, not the carrying tuple"
        );
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[partition_for_value(&Value::from(i), 4) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "value hashing must reach every partition");
        // Int and Str never alias (tagged hashing).
        assert!(
            (0..32).any(|i| partition_for_value(&Value::from(i), 64)
                != partition_for_value(&Value::from(i.to_string().as_str()), 64)),
            "tagged hashing must distinguish representations somewhere"
        );
    }

    #[test]
    #[should_panic(expected = "sub-keys cannot be split again")]
    fn split_map_rejects_sub_keys() {
        let mut splits = SplitMap::new();
        let sub = HashedKey::new("R+A").split_part(0, 2);
        splits.insert(sub, SplitGrid::tuples(2), 0);
    }
}
