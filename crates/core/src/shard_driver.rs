//! The sharded drain: persistent per-shard workers with conservative
//! clock synchronization.
//!
//! [`drain_sharded`] is the `shards > 1` implementation behind
//! [`RJoinEngine::run_until_quiescent_parallel`](crate::RJoinEngine::run_until_quiescent_parallel).
//! Where the tick-parallel driver of PR 2 fans *one global tick* out across
//! threads and re-synchronizes at a barrier, this driver partitions the ring
//! into contiguous identifier ranges and gives each range a persistent
//! worker with its own [`rjoin_net::ShardedNetwork`] queue and local clock;
//! shards only coordinate through the conservative watermark protocol, so
//! independent cascades on different shards proceed concurrently even when
//! every tick is thin.
//!
//! Each shard runs the same two-phase tick the other drivers use:
//!
//! 1. **handler phase** — Procedures 1–3 against the shard's own
//!    [`NodeState`](crate::NodeState)s, in ascending lineage order; then the
//!    shard publishes its `handled_through` watermark,
//! 2. **effect phase** — load accounting, answer buffering and the full
//!    Sections 6–7 dispatch pipeline ([`dispatch_query_in`] via
//!    [`perform_actions_in`]), shared verbatim with the single-queue
//!    drivers through the [`EffectEnv`] trait.
//!
//! Engine-global observations are funneled through per-shard buffers —
//! answers tagged `(at, lineage)`, per-shard load maps and traffic stats —
//! and merged deterministically after the workers finish, so the drain's
//! observable results are a pure function of the workload for every shard
//! count.
//!
//! The handler phase runs the compiled predicate-program hot loop
//! unchanged: each shard's `NodeState`s carry their own program caches and
//! [`CompileCounters`](rjoin_metrics::CompileCounters), so compiled batch
//! execution needs no cross-shard coordination and the engine's
//! [`compile_counters`](crate::RJoinEngine::compile_counters) aggregate is
//! a plain per-node merge after the drain, exactly like the sequential
//! driver.
//!
//! Two ingredients replace the global mutable state of the sequential
//! effect phase:
//!
//! * **per-decision randomness** — placement tie-breaks draw from a fresh
//!   RNG seeded by `(engine seed, triggering lineage, decision index)`
//!   instead of one global stream, making every decision independent of
//!   execution order and shard count;
//! * **watermark-synchronized RIC reads** — a rate request for a key owned
//!   by another shard blocks until that shard's handlers have run through
//!   the reader's tick, then reads the pure
//!   [`RicTracker::rate_at`](crate::RicTracker::rate_at) snapshot bounded
//!   by the reader's tick. Handlers never block on remote state and
//!   `handled_through` is published *before* each effect phase, so these
//!   reads cannot deadlock (see the protocol notes on
//!   [`rjoin_net::ShardedNetwork`]).
//!
//! # Execution modes
//!
//! The **worker count** is decoupled from the shard count: it comes from
//! [`EngineConfig::workers`], falling back to the `RJOIN_WORKERS`
//! environment variable and then to the machine's available parallelism.
//!
//! * `workers >= shards` — every shard gets its own persistent worker
//!   thread under [`std::thread::scope`], coordinated purely through the
//!   watermark protocol (the fully concurrent mode).
//! * `1 < workers < shards` — a **pooled** scheduler drives the shards
//!   global-minimum tick by tick, fanning each tick's handler phases and
//!   then its effect phases across the worker pool; `mark_all_handled`
//!   between the phases keeps remote RIC reads non-blocking.
//! * `workers == 1` — the same tick loop runs **cooperatively** on the
//!   calling thread, preserving the sharded semantics bit for bit while
//!   paying no context-switch or condvar cost (the right mode for
//!   single-core hosts).
//!
//! All three modes produce identical results by construction (the
//! per-shard effect phases of one tick touch disjoint state and only
//! perform pure watermark-gated reads), so a workload's outputs depend
//! neither on the machine nor on the worker count.

use crate::answers::AnswerRecord;
use crate::config::{EngineConfig, PlacementStrategy};
use crate::engine::{
    handle_node_msg, perform_actions_in, EffectEnv, KeyLoadMap, NodeLoadMap, NodeMap, RJoinEngine,
    TickEffect,
};
use crate::error::EngineError;
use crate::messages::RJoinMessage;
use crate::node_state::RicEntry;
use crate::placement::choose_candidate;
use crate::split::SplitMap;
use crate::RicTracker;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rjoin_dht::{Id, RingBuildHasher};
use rjoin_net::{
    lineage_seed, Lineage, ShardDelivery, ShardHandle, ShardLocal, ShardPoll, ShardedNetwork,
    SimTime, Transport,
};
use rjoin_query::IndexKey;
use rjoin_relation::Catalog;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// Shared directory of every node's RIC tracker, the one piece of node
/// state readable across shard workers (each tracker behind its own lock).
type RicDirectory = HashMap<Id, Arc<Mutex<RicTracker>>, RingBuildHasher>;

/// The sharded driver's [`EffectEnv`]: shard-local transport and node
/// states, watermark-synchronized remote RIC reads, per-decision RNG.
struct ShardEnv<'e, 'n, 'a> {
    handle: &'e mut ShardHandle<'n, 'a, RJoinMessage>,
    nodes: &'e mut NodeMap,
    ric_dir: &'e RicDirectory,
    /// The engine's hot-key split registry — frozen for the whole drain
    /// (splits only activate between drains), so shared read-only access
    /// across workers is race-free and deterministic.
    splits: &'e SplitMap,
    /// This shard's share of the query fan-out counter (merged after the
    /// drain).
    query_fanout: &'e mut u64,
    engine_seed: u64,
    /// Lineage of the delivery whose effects are being applied.
    lineage: Lineage,
    /// Placement decisions made so far within this effect.
    decisions: u64,
    /// The tick being processed (the bound for remote RIC reads).
    tick: SimTime,
}

impl<'n, 'a> EffectEnv for ShardEnv<'_, 'n, 'a> {
    type Net = ShardHandle<'n, 'a, RJoinMessage>;

    fn net(&mut self) -> &mut Self::Net {
        self.handle
    }

    fn now(&self) -> SimTime {
        Transport::<RJoinMessage>::now(&*self.handle)
    }

    fn cached_ric(
        &self,
        node: Id,
        ring: u64,
        now: SimTime,
        validity: Option<SimTime>,
    ) -> Option<RicEntry> {
        // The dispatching node always lives on this worker's shard.
        self.nodes.get(&node).and_then(|s| s.cached_ric(ring, now, validity))
    }

    fn cache_ric(&mut self, node: Id, ring: u64, entry: RicEntry) {
        if let Some(state) = self.nodes.get_mut(&node) {
            state.candidate_table.insert(ring, entry);
        }
    }

    fn observed_rate(&mut self, owner: Id, ring: u64, now: SimTime, window: SimTime) -> u64 {
        let shard = self.handle.shard_of(owner);
        if !self.handle.wait_handled(shard, self.tick) {
            // Aborted while waiting; the run's results are discarded.
            return 0;
        }
        self.ric_dir
            .get(&owner)
            .map(|tracker| tracker.lock().expect("ric lock").rate_at(ring, now, window, self.tick))
            .unwrap_or(0)
    }

    fn choose(
        &mut self,
        candidates: &[IndexKey],
        rates: &[u64],
        strategy: PlacementStrategy,
    ) -> usize {
        let seed = lineage_seed(self.engine_seed, self.lineage, self.decisions);
        self.decisions += 1;
        let mut rng = StdRng::seed_from_u64(seed);
        choose_candidate(candidates, rates, strategy, &mut rng)
    }

    fn splits(&self) -> &SplitMap {
        self.splits
    }

    fn note_query_fanout(&mut self, extra: u64) {
        *self.query_fanout += extra;
    }
}

/// Per-shard buffers of engine-global observations, merged after the drain.
#[derive(Default)]
struct ShardTally {
    /// Raw answer deliveries tagged with `(arrival tick, lineage)` for the
    /// deterministic global merge.
    answers: Vec<(SimTime, Lineage, AnswerRecord)>,
    qpl: NodeLoadMap,
    sl: NodeLoadMap,
    qpl_by_key: KeyLoadMap,
    sl_by_key: KeyLoadMap,
    /// Extra query copies this shard sent to partitions of split hot keys.
    query_fanout: u64,
    processed: u64,
    error: Option<EngineError>,
}

/// Everything one shard hands back after the drain.
struct WorkerOutcome {
    local: ShardLocal<RJoinMessage>,
    nodes: NodeMap,
    tally: ShardTally,
}

/// Handler phase of one tick on one shard: Procedures 1–3 in lineage
/// order, purely node-local.
fn run_handlers(
    nodes: &mut NodeMap,
    catalog: &Catalog,
    config: &EngineConfig,
    now: SimTime,
    deliveries: Vec<ShardDelivery<RJoinMessage>>,
) -> Vec<(Lineage, TickEffect)> {
    let mut effects: Vec<(Lineage, TickEffect)> = Vec::with_capacity(deliveries.len());
    for d in deliveries {
        if !nodes.contains_key(&d.to) {
            // The node left after the message was sent: lost, exactly as
            // under the single-queue drivers.
            effects.push((d.lineage, TickEffect::Lost));
            continue;
        }
        let effect = match d.msg {
            RJoinMessage::Answer { query, row, produced_at } => {
                TickEffect::Answer(AnswerRecord { query, row, produced_at, received_at: d.at })
            }
            msg => {
                let state = nodes.get_mut(&d.to).expect("membership checked above");
                handle_node_msg(state, catalog, config, now, d.at, d.to, msg)
            }
        };
        effects.push((d.lineage, effect));
    }
    effects
}

/// Effect phase of one tick on one shard, in lineage order. Returns `false`
/// after signalling an abort if a dispatch failed.
#[allow(clippy::too_many_arguments)]
fn apply_effects(
    handle: &mut ShardHandle<'_, '_, RJoinMessage>,
    nodes: &mut NodeMap,
    tally: &mut ShardTally,
    catalog: &Catalog,
    config: &EngineConfig,
    ric_dir: &RicDirectory,
    splits: &SplitMap,
    tick: SimTime,
    effects: Vec<(Lineage, TickEffect)>,
) -> bool {
    for (lineage, effect) in effects {
        match effect {
            TickEffect::Lost => {}
            TickEffect::Answer(record) => {
                tally.answers.push((record.received_at, lineage, record));
            }
            TickEffect::Node { node, load, actions } => {
                if let Some(load) = load {
                    tally.qpl.incr(node);
                    tally.qpl_by_key.incr(load.key);
                    if load.sl {
                        tally.sl.incr(node);
                        tally.sl_by_key.incr(load.key);
                    }
                }
                if actions.is_empty() {
                    continue;
                }
                handle.begin_effect(lineage);
                let mut env = ShardEnv {
                    handle,
                    nodes,
                    ric_dir,
                    splits,
                    query_fanout: &mut tally.query_fanout,
                    engine_seed: config.seed,
                    lineage,
                    decisions: 0,
                    tick,
                };
                if let Err(e) = perform_actions_in(&mut env, config, catalog, node, actions) {
                    tally.error = Some(e);
                    return false;
                }
            }
        }
    }
    true
}

/// One shard's threaded worker loop: poll → handler phase → publish
/// handled → effect phase → finish tick, until global quiescence (or
/// abort).
fn run_worker(
    snet: &ShardedNetwork<'_, RJoinMessage>,
    local: ShardLocal<RJoinMessage>,
    mut nodes: NodeMap,
    catalog: &Catalog,
    config: &EngineConfig,
    ric_dir: &RicDirectory,
    splits: &SplitMap,
) -> WorkerOutcome {
    let mut handle = ShardHandle::new(snet, local);
    let mut tally = ShardTally::default();

    loop {
        match handle.poll() {
            ShardPoll::Quiescent | ShardPoll::Aborted => break,
            ShardPoll::Tick { tick, now, deliveries } => {
                let count = deliveries.len();
                tally.processed += count as u64;
                let effects = run_handlers(&mut nodes, catalog, config, now, deliveries);
                // Unblock remote readers before running our own effects.
                handle.mark_handled(tick);
                let ok = apply_effects(
                    &mut handle,
                    &mut nodes,
                    &mut tally,
                    catalog,
                    config,
                    ric_dir,
                    splits,
                    tick,
                    effects,
                );
                handle.finish_tick(count, now);
                if !ok {
                    snet.abort();
                    break;
                }
            }
        }
    }

    WorkerOutcome { local: handle.into_local(), nodes, tally }
}

/// Cooperative single-threaded scheduler: drives every shard from the
/// calling thread, one global-minimum tick at a time — all shards' handler
/// phases first, then all effect phases. Semantically identical to the
/// threaded mode (per-tick effect phases touch disjoint state), but pays
/// no thread or wakeup cost, which matters on single-core hosts.
fn run_cooperative(
    snet: &ShardedNetwork<'_, RJoinMessage>,
    locals: Vec<ShardLocal<RJoinMessage>>,
    parts: Vec<NodeMap>,
    catalog: &Catalog,
    config: &EngineConfig,
    ric_dir: &RicDirectory,
    splits: &SplitMap,
) -> Vec<WorkerOutcome> {
    struct CoopShard<'n, 'a> {
        handle: ShardHandle<'n, 'a, RJoinMessage>,
        nodes: NodeMap,
        tally: ShardTally,
    }
    snet.set_cooperative(true);
    let mut shards: Vec<CoopShard<'_, '_>> = locals
        .into_iter()
        .zip(parts)
        .map(|(local, nodes)| CoopShard {
            handle: ShardHandle::new(snet, local),
            nodes,
            tally: ShardTally::default(),
        })
        .collect();

    // Handler-phase output of one cooperative round: the shard index, its
    // floor-clamped clock, the delivery count and the staged effects.
    type Staged = (usize, SimTime, usize, Vec<(Lineage, TickEffect)>);
    // Runs until all queues are empty: quiescent.
    'drain: while let Some(tick) =
        shards.iter_mut().filter_map(|s| s.handle.next_event_time()).min()
    {
        // Handler phase on every shard holding deliveries at `tick`.
        let mut staged: Vec<Staged> = Vec::new();
        for (i, shard) in shards.iter_mut().enumerate() {
            if let Some((now, deliveries)) = shard.handle.try_take_tick(tick) {
                let count = deliveries.len();
                shard.tally.processed += count as u64;
                let effects = run_handlers(&mut shard.nodes, catalog, config, now, deliveries);
                staged.push((i, now, count, effects));
            }
        }
        // All handlers of `tick` ran; remote rate reads must never block.
        snet.mark_all_handled(tick);
        // Effect phase, shard by shard (the order is immaterial: effects
        // touch disjoint shard state and only perform pure remote reads).
        for (i, now, count, effects) in staged {
            let shard = &mut shards[i];
            let ok = apply_effects(
                &mut shard.handle,
                &mut shard.nodes,
                &mut shard.tally,
                catalog,
                config,
                ric_dir,
                splits,
                tick,
                effects,
            );
            shard.handle.finish_tick(count, now);
            if !ok {
                snet.abort();
                break 'drain;
            }
        }
    }

    shards
        .into_iter()
        .map(|s| WorkerOutcome { local: s.handle.into_local(), nodes: s.nodes, tally: s.tally })
        .collect()
}

/// Pooled scheduler for `1 < workers < shards`: the cooperative
/// global-minimum tick loop, executed by a pool of **persistent** worker
/// threads (spawned once per drain, not per tick — per-tick spawn/join
/// would dominate thin-tick workloads). Each worker owns a static chunk of
/// shards; the rounds are coordinated by a reusable [`Barrier`]:
///
/// 1. every worker publishes its chunk's earliest event time, the barrier
///    leader reduces them to the global minimum tick (or termination),
/// 2. handler phase on every chunk, then `mark_all_handled(tick)` behind a
///    barrier — so the concurrent effect phases' remote RIC reads never
///    block,
/// 3. effect phase + `finish_tick` on every chunk, and a final barrier so
///    the next round's inbox drain observes every send of this tick.
///
/// Workers only touch their own shards and the schedule is the same
/// global-minimum order the cooperative scheduler runs, so the results are
/// byte-identical to every other execution mode.
#[allow(clippy::too_many_arguments)]
fn run_pooled(
    snet: &ShardedNetwork<'_, RJoinMessage>,
    locals: Vec<ShardLocal<RJoinMessage>>,
    parts: Vec<NodeMap>,
    catalog: &Catalog,
    config: &EngineConfig,
    ric_dir: &RicDirectory,
    splits: &SplitMap,
    workers: usize,
) -> Vec<WorkerOutcome> {
    /// Handler-phase output staged for this round's effect phase:
    /// `(floor-clamped clock, delivery count, effects)`.
    type StagedTick = (SimTime, usize, Vec<(Lineage, TickEffect)>);
    struct PoolShard<'n, 'a> {
        handle: ShardHandle<'n, 'a, RJoinMessage>,
        nodes: NodeMap,
        tally: ShardTally,
        staged: Option<StagedTick>,
        ok: bool,
    }
    // Nobody parks on the progress condvar: rounds are coordinated by the
    // barrier alone, exactly like the cooperative scheduler.
    snet.set_cooperative(true);
    let shards: Vec<PoolShard<'_, '_>> = locals
        .into_iter()
        .zip(parts)
        .map(|(local, nodes)| PoolShard {
            handle: ShardHandle::new(snet, local),
            nodes,
            tally: ShardTally::default(),
            staged: None,
            ok: true,
        })
        .collect();
    let chunk_size = shards.len().div_ceil(workers).max(1);
    let mut chunks: Vec<Vec<PoolShard<'_, '_>>> = Vec::new();
    {
        let mut shards = shards;
        while !shards.is_empty() {
            let rest = shards.split_off(chunk_size.min(shards.len()));
            chunks.push(shards);
            shards = rest;
        }
    }
    let pool = chunks.len();
    let barrier = Barrier::new(pool);
    // Per-worker earliest event times, reduced by the barrier leader into
    // the shared next-tick word (`u64::MAX` = quiescent, stop).
    let chunk_mins: Vec<AtomicU64> = (0..pool).map(|_| AtomicU64::new(u64::MAX)).collect();
    let next_tick = AtomicU64::new(u64::MAX);
    let failed = AtomicBool::new(false);

    let outcomes: Vec<Vec<WorkerOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(i, mut chunk)| {
                let (barrier, chunk_mins, next_tick, failed) =
                    (&barrier, &chunk_mins, &next_tick, &failed);
                scope.spawn(move || {
                    loop {
                        // Round start: publish this chunk's earliest event
                        // time; the leader reduces to the global minimum.
                        let local_min = chunk
                            .iter_mut()
                            .filter_map(|s| s.handle.next_event_time())
                            .min()
                            .unwrap_or(u64::MAX);
                        chunk_mins[i].store(local_min, Ordering::SeqCst);
                        if barrier.wait().is_leader() {
                            let global = chunk_mins
                                .iter()
                                .map(|m| m.load(Ordering::SeqCst))
                                .min()
                                .unwrap_or(u64::MAX);
                            let stop = failed.load(Ordering::SeqCst) || snet.is_aborted();
                            next_tick.store(if stop { u64::MAX } else { global }, Ordering::SeqCst);
                        }
                        barrier.wait();
                        let tick = next_tick.load(Ordering::SeqCst);
                        if tick == u64::MAX {
                            break;
                        }
                        // Handler phase on this chunk's shards at `tick`.
                        for shard in chunk.iter_mut() {
                            if let Some((now, deliveries)) = shard.handle.try_take_tick(tick) {
                                let count = deliveries.len();
                                shard.tally.processed += count as u64;
                                let effects = run_handlers(
                                    &mut shard.nodes,
                                    catalog,
                                    config,
                                    now,
                                    deliveries,
                                );
                                shard.staged = Some((now, count, effects));
                            }
                        }
                        // All handlers of `tick` ran: remote rate reads in
                        // the concurrent effect phases below never block.
                        if barrier.wait().is_leader() {
                            snet.mark_all_handled(tick);
                        }
                        barrier.wait();
                        for shard in chunk.iter_mut() {
                            if let Some((now, count, effects)) = shard.staged.take() {
                                let ok = apply_effects(
                                    &mut shard.handle,
                                    &mut shard.nodes,
                                    &mut shard.tally,
                                    catalog,
                                    config,
                                    ric_dir,
                                    splits,
                                    tick,
                                    effects,
                                );
                                shard.handle.finish_tick(count, now);
                                if !ok {
                                    shard.ok = false;
                                    failed.store(true, Ordering::SeqCst);
                                    snet.abort();
                                }
                            }
                        }
                        // Close the round: the next inbox drain must observe
                        // every send of this tick.
                        barrier.wait();
                    }
                    chunk
                        .into_iter()
                        .map(|s| WorkerOutcome {
                            local: s.handle.into_local(),
                            nodes: s.nodes,
                            tally: s.tally,
                        })
                        .collect::<Vec<WorkerOutcome>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("pool worker must not panic")).collect()
    });
    outcomes.into_iter().flatten().collect()
}

/// Resolves how many worker threads a sharded drain may use: the explicit
/// [`EngineConfig::workers`] pin, else the `RJOIN_WORKERS` environment
/// variable, else the machine's available parallelism. Purely an execution
/// choice — results are identical for every value.
fn resolve_workers(config: &EngineConfig) -> usize {
    if let Some(workers) = config.workers {
        return workers.max(1);
    }
    if let Some(workers) =
        std::env::var("RJOIN_WORKERS").ok().and_then(|v| v.trim().parse::<usize>().ok())
    {
        if workers >= 1 {
            return workers;
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Drains the engine's event queue on the sharded runtime. See the module
/// docs for the architecture; the observable results (answers, loads,
/// traffic) are deterministic and shard-count-invariant for every
/// `shards > 1`.
pub(crate) fn drain_sharded(engine: &mut RJoinEngine) -> Result<u64, EngineError> {
    let pending = engine.network.drain_in_flight();
    if pending.is_empty() {
        return Ok(0);
    }

    // Shared directory of RIC trackers (the only cross-shard node state).
    let ric_dir: RicDirectory =
        engine.nodes.iter().map(|(id, state)| (*id, state.ric_handle())).collect();

    let mut snet = ShardedNetwork::new(
        engine.network.dht(),
        engine.network.delay(),
        engine.network.now(),
        &engine.node_ids,
        engine.config.shards,
    );
    // Seed in global (at, seq) order: root lineages are numbered by the
    // position in this order, which no shard count can change.
    for d in pending {
        snet.seed(d.at, d.to, d.from, d.msg);
    }
    let shard_count = snet.shards();

    // Partition the node states by shard.
    let mut parts: Vec<NodeMap> = (0..shard_count).map(|_| NodeMap::default()).collect();
    for (id, state) in engine.nodes.drain() {
        parts[snet.shard_of(id)].insert(id, state);
    }
    let locals: Vec<ShardLocal<RJoinMessage>> =
        (0..shard_count).map(|i| snet.take_local(i)).collect();

    let catalog = &engine.catalog;
    let config = &engine.config;
    let snet_ref = &snet;
    let ric_dir_ref = &ric_dir;
    let splits_ref = &engine.splits;

    let workers = resolve_workers(config);
    let outcomes: Vec<WorkerOutcome> = if workers <= 1 {
        run_cooperative(snet_ref, locals, parts, catalog, config, ric_dir_ref, splits_ref)
    } else if workers < shard_count {
        run_pooled(snet_ref, locals, parts, catalog, config, ric_dir_ref, splits_ref, workers)
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = locals
                .into_iter()
                .zip(parts)
                .map(|(local, part)| {
                    scope.spawn(move || {
                        run_worker(snet_ref, local, part, catalog, config, ric_dir_ref, splits_ref)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard worker must not panic")).collect()
        })
    };

    let final_clock = snet.final_clock();
    drop(snet);
    drop(ric_dir);

    // Deterministic merge: states and order-insensitive counters first.
    let mut raw_answers: Vec<(SimTime, Lineage, AnswerRecord)> = Vec::new();
    let mut processed = 0u64;
    let mut ticks = 0u64;
    let mut deliveries = 0u64;
    let mut blocked = 0u64;
    let mut error: Option<EngineError> = None;
    for outcome in outcomes {
        engine.nodes.extend(outcome.nodes);
        engine.network.traffic_mut().merge(outcome.local.traffic());
        engine.qpl.merge(&outcome.tally.qpl);
        engine.sl.merge(&outcome.tally.sl);
        engine.qpl_by_key.merge(&outcome.tally.qpl_by_key);
        engine.sl_by_key.merge(&outcome.tally.sl_by_key);
        engine.split_counters.query_fanout += outcome.tally.query_fanout;
        processed += outcome.tally.processed;
        ticks += outcome.local.ticks;
        deliveries += outcome.local.deliveries;
        blocked += outcome.local.blocked_reads;
        raw_answers.extend(outcome.tally.answers);
        if error.is_none() {
            // Shards are visited in index order, so the reported error is
            // the lowest-shard one — deterministic.
            error = outcome.tally.error;
        }
    }
    engine.network.advance_to(final_clock);
    // Same post-drain expiry flush as the single-queue driver, so state
    // snapshots are identical across drivers at quiescence.
    engine.flush_expiry();
    engine.shard_runtime.absorb_drain(shard_count, ticks, deliveries, blocked);

    // Answers enter the global log in (arrival tick, lineage) order — the
    // sharded counterpart of the single queue's (at, seq) order.
    raw_answers.sort_unstable_by_key(|(at, lineage, _)| (*at, *lineage));
    for (_, _, record) in raw_answers {
        if engine.distinct_queries.contains(&record.query) {
            engine.answers.record_distinct(record);
        } else {
            engine.answers.record(record);
        }
    }

    match error {
        Some(e) => Err(e),
        None => Ok(processed),
    }
}
