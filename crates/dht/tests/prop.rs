//! Property-based tests for the Chord ring: interval arithmetic, ownership
//! and lookup correctness on random rings.

use proptest::prelude::*;
use rjoin_dht::{ChordNetwork, Id};

proptest! {
    /// `in_open_closed_interval` partitions the ring: for any `from != to`,
    /// every identifier is either in `(from, to]` or in `(to, from]`, never
    /// both and never neither.
    #[test]
    fn open_closed_intervals_partition_the_ring(from in any::<u64>(), to in any::<u64>(), x in any::<u64>()) {
        prop_assume!(from != to);
        let (from, to, x) = (Id(from), Id(to), Id(x));
        let in_first = x.in_open_closed_interval(from, to);
        let in_second = x.in_open_closed_interval(to, from);
        prop_assert!(in_first ^ in_second, "exactly one of the two half-open arcs must contain x");
    }

    /// Clockwise distances around the ring sum to a full revolution.
    #[test]
    fn distances_sum_to_full_circle(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let (a, b) = (Id(a), Id(b));
        prop_assert_eq!(a.distance_to(b).wrapping_add(b.distance_to(a)), 0u64);
    }

    /// The open interval is contained in the open-closed interval.
    #[test]
    fn open_subset_of_open_closed(from in any::<u64>(), to in any::<u64>(), x in any::<u64>()) {
        let (from, to, x) = (Id(from), Id(to), Id(x));
        if x.in_open_interval(from, to) {
            prop_assert!(x.in_open_closed_interval(from, to));
        }
    }

    /// Hashing is deterministic and, over a batch of distinct keys, produces
    /// distinct identifiers (no collisions at test scale).
    #[test]
    fn hashing_is_deterministic_and_collision_free(n in 2usize..64) {
        let ids: Vec<Id> = (0..n).map(|i| Id::hash_key(&format!("prop-key-{i}"))).collect();
        let again: Vec<Id> = (0..n).map(|i| Id::hash_key(&format!("prop-key-{i}"))).collect();
        prop_assert_eq!(&ids, &again);
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), ids.len());
    }

    /// On a fully stabilized ring of random size, `lookup` from any node
    /// returns the ground-truth successor of the key, and the hop count is
    /// bounded by the ring size.
    #[test]
    fn lookup_agrees_with_ground_truth(nodes in 2usize..48, key_seed in any::<u64>(), from_pick in any::<usize>()) {
        let mut net = ChordNetwork::new(4);
        for i in 0..nodes {
            net.join(Id::hash_key(&format!("prop-node-{i}"))).unwrap();
        }
        net.full_stabilize();
        let ids: Vec<Id> = net.node_ids().collect();
        let from = ids[from_pick % ids.len()];
        let key = Id(key_seed);
        let expected = net.successor_of(key).unwrap();
        let result = net.lookup(from, key).unwrap();
        prop_assert_eq!(result.owner, expected);
        prop_assert!(result.hops() <= nodes, "hops {} exceed ring size {}", result.hops(), nodes);
        prop_assert_eq!(result.path().first().copied(), Some(from));
        prop_assert_eq!(result.path().last().copied(), Some(expected));
    }

    /// Every key is owned by exactly one node, and ownership moves to the
    /// successor when that node leaves.
    #[test]
    fn ownership_transfers_on_leave(nodes in 3usize..32, key_seed in any::<u64>()) {
        let mut net = ChordNetwork::new(4);
        for i in 0..nodes {
            net.join(Id::hash_key(&format!("leave-node-{i}"))).unwrap();
        }
        net.full_stabilize();
        let key = Id(key_seed);
        let owner = net.successor_of(key).unwrap();
        let next = net.successor_of(Id(owner.0.wrapping_add(1))).unwrap();
        net.leave(owner).unwrap();
        let new_owner = net.successor_of(key).unwrap();
        if next != owner {
            prop_assert_eq!(new_owner, next);
        }
    }
}
