//! Churn stress tests: the ring keeps answering lookups correctly while
//! nodes join, leave and crash, provided stabilization keeps running — the
//! operating regime the RJoin paper assumes from the Chord layer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rjoin_dht::{ChordNetwork, Id, ID_BITS};

fn fresh_ring(n: usize, label: &str) -> ChordNetwork {
    let mut net = ChordNetwork::new(8);
    for i in 0..n {
        net.join(Id::hash_key(&format!("{label}-{i}"))).unwrap();
    }
    net.full_stabilize();
    net
}

/// Interleaves joins, graceful leaves, crashes, stabilization rounds and
/// lookups; every lookup must return the ground-truth owner.
#[test]
fn lookups_stay_correct_under_interleaved_churn() {
    let mut net = fresh_ring(64, "churn-base");
    let mut rng = StdRng::seed_from_u64(2008);
    let mut next_node = 0usize;

    for round in 0..60 {
        // One membership change per round.
        match rng.gen_range(0..3) {
            0 => {
                let id = Id::hash_key(&format!("churn-new-{next_node}"));
                next_node += 1;
                let _ = net.join(id);
            }
            1 => {
                if net.len() > 8 {
                    let victims: Vec<Id> = net.node_ids().collect();
                    let victim = victims[rng.gen_range(0..victims.len())];
                    net.leave(victim).unwrap();
                }
            }
            _ => {
                if net.len() > 8 {
                    let victims: Vec<Id> = net.node_ids().collect();
                    let victim = victims[rng.gen_range(0..victims.len())];
                    net.fail(victim).unwrap();
                }
            }
        }
        // A few stabilization rounds, as the periodic protocol would run.
        for _ in 0..4 {
            net.stabilize_round();
        }
        // Lookups from random live nodes must return the true successor.
        let members: Vec<Id> = net.node_ids().collect();
        for probe in 0..5 {
            let from = members[rng.gen_range(0..members.len())];
            let key = Id::hash_key(&format!("churn-key-{round}-{probe}"));
            let expected = net.successor_of(key).unwrap();
            let result = net.lookup(from, key).unwrap();
            assert_eq!(result.owner, expected, "round {round}, probe {probe}");
        }
    }
    assert!(net.len() >= 8);
}

/// After a burst of simultaneous crashes (within the successor-list bound),
/// enough stabilization rounds restore both correctness and logarithmic
/// routing.
#[test]
fn ring_recovers_logarithmic_routing_after_crash_burst() {
    let mut net = fresh_ring(128, "burst");
    let victims: Vec<Id> = net.node_ids().step_by(9).collect();
    for v in &victims {
        net.fail(*v).unwrap();
    }
    for _ in 0..(2 * ID_BITS as usize) {
        net.stabilize_round();
    }
    let avg = net.average_lookup_hops(100);
    assert!(avg <= 2.0 * (net.len() as f64).log2(), "average hops {avg} too high after recovery");

    let from = net.node_ids().next().unwrap();
    for i in 0..50 {
        let key = Id::hash_key(&format!("burst-key-{i}"));
        assert_eq!(net.lookup(from, key).unwrap().owner, net.successor_of(key).unwrap());
    }
}

/// Keys always have exactly one owner: partitioning the key space across the
/// live nodes is a total function even while membership changes.
#[test]
fn every_key_has_exactly_one_owner_under_churn() {
    let mut net = fresh_ring(32, "ownership");
    let keys: Vec<Id> = (0..200).map(|i| Id::hash_key(&format!("own-key-{i}"))).collect();
    for step in 0..10 {
        // Ownership is a function of the live membership only.
        let owners: Vec<Id> = keys.iter().map(|k| net.successor_of(*k).unwrap()).collect();
        for owner in &owners {
            assert!(net.contains(*owner));
        }
        // Change membership.
        if step % 2 == 0 {
            net.join(Id::hash_key(&format!("own-new-{step}"))).unwrap();
        } else {
            let victim = net.node_ids().nth(step).unwrap();
            net.leave(victim).unwrap();
        }
        net.full_stabilize();
    }
}
