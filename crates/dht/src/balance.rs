//! Identifier-movement load balancing (Karger & Ruhl, SPAA'04).
//!
//! The RJoin paper's Figure 9 experiment plugs the low-level load-balancing
//! technique of [19] under RJoin: a node may change its position on the
//! identifier circle, thereby choosing which identifiers it is responsible
//! for. This module implements the simulation-side version of that idea:
//! given the observed load contributed by each *key*, it repeatedly moves
//! the least-loaded node so that it splits the arc of the most-loaded node
//! in half (by load, not by identifier span).

use crate::{ChordNetwork, DhtError, Id};
use std::collections::BTreeMap;

/// A single identifier movement performed by [`rebalance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Movement {
    /// The node's identifier before the move.
    pub from: Id,
    /// The node's identifier after the move.
    pub to: Id,
}

/// Aggregates per-key loads into per-node loads according to current ring
/// ownership.
pub fn node_loads(
    network: &ChordNetwork,
    key_loads: &BTreeMap<Id, u64>,
) -> Result<BTreeMap<Id, u64>, DhtError> {
    let mut loads: BTreeMap<Id, u64> = network.node_ids().map(|id| (id, 0)).collect();
    for (&key, &load) in key_loads {
        let owner = network.successor_of(key)?;
        *loads.entry(owner).or_insert(0) += load;
    }
    Ok(loads)
}

/// Finds the identifier at which a new node should be placed so that it
/// takes over (roughly) half of `heavy`'s load. Returns `None` if the heavy
/// node owns fewer than two loaded keys (a single hot key cannot be split by
/// moving identifiers).
fn split_point(
    network: &ChordNetwork,
    key_loads: &BTreeMap<Id, u64>,
    heavy: Id,
) -> Option<Id> {
    // Collect the heavy node's keys ordered clockwise from its predecessor.
    let pred = network.predecessor_of(heavy).ok()?;
    let mut owned: Vec<(Id, u64)> = key_loads
        .iter()
        .filter(|(k, load)| {
            **load > 0
                && network.successor_of(**k).map(|o| o == heavy).unwrap_or(false)
        })
        .map(|(k, l)| (*k, *l))
        .collect();
    if owned.len() < 2 {
        return None;
    }
    // Sort by clockwise distance from the predecessor so prefix sums follow
    // ring order within the arc (pred, heavy].
    owned.sort_by_key(|(k, _)| pred.distance_to(*k));
    let total: u64 = owned.iter().map(|(_, l)| l).sum();
    let mut acc = 0u64;
    for (key, load) in &owned[..owned.len() - 1] {
        acc += load;
        if acc * 2 >= total {
            return Some(*key);
        }
    }
    // Fall back to the penultimate key: the new node takes everything but
    // the last key.
    owned.get(owned.len() - 2).map(|(k, _)| *k)
}

/// Performs up to `max_moves` identifier movements, each time moving the
/// currently least-loaded node so that it splits the load of the currently
/// most-loaded node. Loads are recomputed after every move. Returns the
/// movements actually performed.
///
/// The network is left fully stabilized.
pub fn rebalance(
    network: &mut ChordNetwork,
    key_loads: &BTreeMap<Id, u64>,
    max_moves: usize,
) -> Result<Vec<Movement>, DhtError> {
    let mut movements = Vec::new();
    for _ in 0..max_moves {
        let loads = node_loads(network, key_loads)?;
        if loads.len() < 3 {
            break;
        }
        let (&heavy, &heavy_load) =
            loads.iter().max_by_key(|(_, l)| **l).expect("non-empty loads");
        let (&light, &light_load) =
            loads.iter().min_by_key(|(_, l)| **l).expect("non-empty loads");
        if heavy == light || heavy_load == 0 {
            break;
        }
        // Moving only pays off if the light node is carrying much less than
        // half of what the heavy node carries (Karger-Ruhl's ε-balance
        // condition, with ε = 1/4).
        if light_load * 4 > heavy_load {
            break;
        }
        let Some(split) = split_point(network, key_loads, heavy) else {
            break;
        };
        if network.contains(split) || split == light {
            break;
        }
        network.move_node(light, split)?;
        movements.push(Movement { from: light, to: split });
    }
    network.full_stabilize();
    Ok(movements)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize) -> ChordNetwork {
        let mut net = ChordNetwork::new(4);
        for i in 0..n {
            net.join(Id::hash_key(&format!("balance-node-{i}"))).unwrap();
        }
        net.full_stabilize();
        net
    }

    fn skewed_key_loads(net: &ChordNetwork, keys: usize) -> BTreeMap<Id, u64> {
        // Give every key load 1, except keys owned by one specific node,
        // which get load 50 each — creating a clear hotspot.
        let hot_owner = net.node_ids().nth(2).unwrap();
        let mut loads = BTreeMap::new();
        for i in 0..keys {
            let key = Id::hash_key(&format!("load-key-{i}"));
            let load = if net.successor_of(key).unwrap() == hot_owner { 50 } else { 1 };
            loads.insert(key, load);
        }
        loads
    }

    #[test]
    fn node_loads_sum_matches_key_loads() {
        let net = build(16);
        let key_loads = skewed_key_loads(&net, 200);
        let loads = node_loads(&net, &key_loads).unwrap();
        assert_eq!(
            loads.values().sum::<u64>(),
            key_loads.values().sum::<u64>()
        );
        assert_eq!(loads.len(), 16);
    }

    #[test]
    fn rebalance_reduces_maximum_load() {
        let mut net = build(32);
        let key_loads = skewed_key_loads(&net, 400);
        let before = node_loads(&net, &key_loads).unwrap();
        let max_before = *before.values().max().unwrap();

        let movements = rebalance(&mut net, &key_loads, 8).unwrap();
        assert!(!movements.is_empty(), "expected at least one movement");

        let after = node_loads(&net, &key_loads).unwrap();
        let max_after = *after.values().max().unwrap();
        assert!(
            max_after < max_before,
            "max load should drop: before {max_before}, after {max_after}"
        );
        // Total load is preserved.
        assert_eq!(
            before.values().sum::<u64>(),
            after.values().sum::<u64>()
        );
        // The ring still has the same number of nodes.
        assert_eq!(net.len(), 32);
    }

    #[test]
    fn rebalance_is_a_noop_on_uniform_load() {
        let mut net = build(16);
        let mut key_loads = BTreeMap::new();
        for i in 0..160 {
            key_loads.insert(Id::hash_key(&format!("uniform-{i}")), 1u64);
        }
        // With near-uniform load the ε-balance condition prevents movement
        // churn (some movement may still happen if hashing is unlucky, but
        // the ring size must be preserved and lookups must stay correct).
        let _ = rebalance(&mut net, &key_loads, 4).unwrap();
        assert_eq!(net.len(), 16);
        let from = net.node_ids().next().unwrap();
        let key = Id::hash_key("sanity");
        assert_eq!(net.lookup(from, key).unwrap().owner, net.successor_of(key).unwrap());
    }

    #[test]
    fn rebalance_with_single_hot_key_does_not_loop() {
        let mut net = build(8);
        let mut key_loads = BTreeMap::new();
        key_loads.insert(Id::hash_key("the-one-hot-key"), 1000u64);
        let movements = rebalance(&mut net, &key_loads, 10).unwrap();
        // A single hot key cannot be split, so no movement should occur.
        assert!(movements.is_empty());
        assert_eq!(net.len(), 8);
    }
}
