//! DHT-level load balancing: identifier movement for spread load, split
//! planning for point-mass load.
//!
//! Two different shapes of imbalance need two different tools:
//!
//! * **Spread load** — many keys, unevenly apportioned to nodes by the
//!   accident of hashing. The Karger & Ruhl (SPAA'04) identifier-movement
//!   technique of the paper's Figure 9 experiment fixes this *below* RJoin:
//!   a node may change its position on the identifier circle, thereby
//!   choosing which identifiers it is responsible for. [`rebalance`]
//!   implements the simulation-side version: given the observed load
//!   contributed by each *key*, it repeatedly moves the least-loaded node
//!   so that it splits the arc of the most-loaded node in half (by load,
//!   not by identifier span).
//! * **Point-mass load** — one key hot enough to overwhelm its owner.
//!   Identifier movement is structurally unable to help: a single key
//!   occupies a single identifier, so wherever the arc is cut, the whole
//!   key lands on one side ([`rebalance`] detects this and stops —
//!   `split_point` returns `None` when the heavy node owns fewer than two
//!   loaded keys). The remedy is one level *up*: [`plan_splits`] identifies
//!   such heavy hitters and proposes a **share** for each (Afrati, Ullman &
//!   Vasilakopoulos), i.e. a partition count for hot-key splitting, which
//!   the RJoin engine executes by salting sub-keys onto the ring
//!   (`rjoin_dht::HashedKey::split_part`, driven by `rjoin-core`'s split
//!   subsystem).
//!
//! A balancing pass should therefore run [`rebalance`] for the spread tier
//! and feed [`plan_splits`]'s output to the engine for the point-mass tier;
//! the two compose, and neither subsumes the other.

use crate::{ChordNetwork, DhtError, Id};
use std::collections::BTreeMap;

/// A single identifier movement performed by [`rebalance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Movement {
    /// The node's identifier before the move.
    pub from: Id,
    /// The node's identifier after the move.
    pub to: Id,
}

/// Aggregates per-key loads into per-node loads according to current ring
/// ownership.
pub fn node_loads(
    network: &ChordNetwork,
    key_loads: &BTreeMap<Id, u64>,
) -> Result<BTreeMap<Id, u64>, DhtError> {
    let mut loads: BTreeMap<Id, u64> = network.node_ids().map(|id| (id, 0)).collect();
    for (&key, &load) in key_loads {
        let owner = network.successor_of(key)?;
        *loads.entry(owner).or_insert(0) += load;
    }
    Ok(loads)
}

/// Finds the identifier at which a new node should be placed so that it
/// takes over (roughly) half of `heavy`'s load. Returns `None` if the heavy
/// node owns fewer than two loaded keys (a single hot key cannot be split by
/// moving identifiers).
fn split_point(network: &ChordNetwork, key_loads: &BTreeMap<Id, u64>, heavy: Id) -> Option<Id> {
    // Collect the heavy node's keys ordered clockwise from its predecessor.
    let pred = network.predecessor_of(heavy).ok()?;
    let mut owned: Vec<(Id, u64)> = key_loads
        .iter()
        .filter(|(k, load)| {
            **load > 0 && network.successor_of(**k).map(|o| o == heavy).unwrap_or(false)
        })
        .map(|(k, l)| (*k, *l))
        .collect();
    if owned.len() < 2 {
        return None;
    }
    // Sort by clockwise distance from the predecessor so prefix sums follow
    // ring order within the arc (pred, heavy].
    owned.sort_by_key(|(k, _)| pred.distance_to(*k));
    let total: u64 = owned.iter().map(|(_, l)| l).sum();
    let mut acc = 0u64;
    for (key, load) in &owned[..owned.len() - 1] {
        acc += load;
        if acc * 2 >= total {
            return Some(*key);
        }
    }
    // Fall back to the penultimate key: the new node takes everything but
    // the last key.
    owned.get(owned.len() - 2).map(|(k, _)| *k)
}

/// Performs up to `max_moves` identifier movements, each time moving the
/// currently least-loaded node so that it splits the load of the currently
/// most-loaded node. Loads are recomputed after every move. Returns the
/// movements actually performed.
///
/// The network is left fully stabilized.
pub fn rebalance(
    network: &mut ChordNetwork,
    key_loads: &BTreeMap<Id, u64>,
    max_moves: usize,
) -> Result<Vec<Movement>, DhtError> {
    let mut movements = Vec::new();
    for _ in 0..max_moves {
        let loads = node_loads(network, key_loads)?;
        if loads.len() < 3 {
            break;
        }
        let (&heavy, &heavy_load) = loads.iter().max_by_key(|(_, l)| **l).expect("non-empty loads");
        let (&light, &light_load) = loads.iter().min_by_key(|(_, l)| **l).expect("non-empty loads");
        if heavy == light || heavy_load == 0 {
            break;
        }
        // Moving only pays off if the light node is carrying much less than
        // half of what the heavy node carries (Karger-Ruhl's ε-balance
        // condition, with ε = 1/4).
        if light_load * 4 > heavy_load {
            break;
        }
        let Some(split) = split_point(network, key_loads, heavy) else {
            break;
        };
        if network.contains(split) || split == light {
            break;
        }
        network.move_node(light, split)?;
        movements.push(Movement { from: light, to: split });
    }
    network.full_stabilize();
    Ok(movements)
}

/// A heavy hitter [`plan_splits`] proposes to partition: the key, its
/// observed load, and the suggested number of sub-keys (its *share*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitPlan {
    /// Ring identifier of the hot key.
    pub key: Id,
    /// The key's observed load.
    pub load: u64,
    /// Suggested partition count: enough sub-keys that each carries about
    /// one fair (per-node) share, clamped to `[2, max_partitions]`.
    pub partitions: u32,
}

/// Identifies the point-mass keys identifier movement cannot balance: every
/// key whose individual load exceeds the fair per-node share (total load /
/// node count) by more than 2× is proposed for splitting, with a partition
/// count that brings its per-partition load back to roughly one fair share.
/// Returned heaviest-first; an empty result means the spread tier
/// ([`rebalance`]) is sufficient.
pub fn plan_splits(
    network: &ChordNetwork,
    key_loads: &BTreeMap<Id, u64>,
    max_partitions: u32,
) -> Vec<SplitPlan> {
    let nodes = network.len() as u64;
    let total: u64 = key_loads.values().sum();
    if nodes == 0 || total == 0 {
        return Vec::new();
    }
    let fair_share = (total / nodes).max(1);
    let max_partitions = max_partitions.max(2);
    let mut plans: Vec<SplitPlan> = key_loads
        .iter()
        .filter(|(_, &load)| load > 2 * fair_share)
        .map(|(&key, &load)| SplitPlan {
            key,
            load,
            partitions: u32::try_from(load.div_ceil(fair_share))
                .unwrap_or(max_partitions)
                .clamp(2, max_partitions),
        })
        .collect();
    plans.sort_by(|a, b| b.load.cmp(&a.load).then_with(|| a.key.cmp(&b.key)));
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize) -> ChordNetwork {
        let mut net = ChordNetwork::new(4);
        for i in 0..n {
            net.join(Id::hash_key(&format!("balance-node-{i}"))).unwrap();
        }
        net.full_stabilize();
        net
    }

    fn skewed_key_loads(net: &ChordNetwork, keys: usize) -> BTreeMap<Id, u64> {
        // Give every key load 1, except keys owned by one specific node,
        // which get load 50 each — creating a clear hotspot.
        let hot_owner = net.node_ids().nth(2).unwrap();
        let mut loads = BTreeMap::new();
        for i in 0..keys {
            let key = Id::hash_key(&format!("load-key-{i}"));
            let load = if net.successor_of(key).unwrap() == hot_owner { 50 } else { 1 };
            loads.insert(key, load);
        }
        loads
    }

    #[test]
    fn node_loads_sum_matches_key_loads() {
        let net = build(16);
        let key_loads = skewed_key_loads(&net, 200);
        let loads = node_loads(&net, &key_loads).unwrap();
        assert_eq!(loads.values().sum::<u64>(), key_loads.values().sum::<u64>());
        assert_eq!(loads.len(), 16);
    }

    #[test]
    fn rebalance_reduces_maximum_load() {
        let mut net = build(32);
        let key_loads = skewed_key_loads(&net, 400);
        let before = node_loads(&net, &key_loads).unwrap();
        let max_before = *before.values().max().unwrap();

        let movements = rebalance(&mut net, &key_loads, 8).unwrap();
        assert!(!movements.is_empty(), "expected at least one movement");

        let after = node_loads(&net, &key_loads).unwrap();
        let max_after = *after.values().max().unwrap();
        assert!(
            max_after < max_before,
            "max load should drop: before {max_before}, after {max_after}"
        );
        // Total load is preserved.
        assert_eq!(before.values().sum::<u64>(), after.values().sum::<u64>());
        // The ring still has the same number of nodes.
        assert_eq!(net.len(), 32);
    }

    #[test]
    fn rebalance_is_a_noop_on_uniform_load() {
        let mut net = build(16);
        let mut key_loads = BTreeMap::new();
        for i in 0..160 {
            key_loads.insert(Id::hash_key(&format!("uniform-{i}")), 1u64);
        }
        // With near-uniform load the ε-balance condition prevents movement
        // churn (some movement may still happen if hashing is unlucky, but
        // the ring size must be preserved and lookups must stay correct).
        let _ = rebalance(&mut net, &key_loads, 4).unwrap();
        assert_eq!(net.len(), 16);
        let from = net.node_ids().next().unwrap();
        let key = Id::hash_key("sanity");
        assert_eq!(net.lookup(from, key).unwrap().owner, net.successor_of(key).unwrap());
    }

    #[test]
    fn rebalance_with_single_hot_key_does_not_loop() {
        let mut net = build(8);
        let mut key_loads = BTreeMap::new();
        key_loads.insert(Id::hash_key("the-one-hot-key"), 1000u64);
        let movements = rebalance(&mut net, &key_loads, 10).unwrap();
        // A single hot key cannot be split, so no movement should occur.
        assert!(movements.is_empty());
        assert_eq!(net.len(), 8);
    }

    /// The point-mass edge case at the `split_point` level: a heavy node
    /// owning zero or one loaded key has no identifier at which its load
    /// could be divided, so the planner must return `None` — this is
    /// exactly the hole that hot-key splitting fills one level up.
    #[test]
    fn split_point_returns_none_for_a_single_loaded_key() {
        let net = build(8);
        let hot_key = Id::hash_key("the-one-hot-key");
        let owner = net.successor_of(hot_key).unwrap();

        let mut single = BTreeMap::new();
        single.insert(hot_key, 1000u64);
        assert_eq!(split_point(&net, &single, owner), None);

        // No loaded key at all: same.
        let empty = BTreeMap::new();
        assert_eq!(split_point(&net, &empty, owner), None);

        // A second loaded key owned by the same node makes the arc
        // divisible again.
        let mut two = single.clone();
        let mut i = 0;
        let second = loop {
            let candidate = Id::hash_key(&format!("second-key-{i}"));
            if net.successor_of(candidate).unwrap() == owner {
                break candidate;
            }
            i += 1;
        };
        two.insert(second, 900u64);
        let split = split_point(&net, &two, owner);
        assert!(split.is_some(), "two loaded keys on one node are divisible");
        assert!(
            split == Some(hot_key) || split == Some(second),
            "the split lands on one of the owned keys"
        );
    }

    /// Identifier movement leaves the single-hot-key maximum untouched even
    /// with light keys elsewhere: the hot key's whole load stays on one
    /// node however many moves are allowed.
    #[test]
    fn rebalance_cannot_reduce_a_point_mass() {
        let mut net = build(16);
        let mut key_loads = BTreeMap::new();
        key_loads.insert(Id::hash_key("viral-key"), 800u64);
        for i in 0..30 {
            key_loads.insert(Id::hash_key(&format!("light-{i}")), 1u64);
        }
        let _ = rebalance(&mut net, &key_loads, 12).unwrap();
        let after = node_loads(&net, &key_loads).unwrap();
        assert!(
            *after.values().max().unwrap() >= 800,
            "no identifier movement can divide a single key's load"
        );
    }

    #[test]
    fn plan_splits_flags_the_point_mass_with_a_share() {
        let net = build(16);
        let hot = Id::hash_key("viral-key");
        let mut key_loads = BTreeMap::new();
        key_loads.insert(hot, 800u64);
        for i in 0..32 {
            key_loads.insert(Id::hash_key(&format!("light-{i}")), 1u64);
        }
        let plans = plan_splits(&net, &key_loads, 8);
        assert_eq!(plans.len(), 1, "only the point mass is flagged");
        assert_eq!(plans[0].key, hot);
        assert_eq!(plans[0].load, 800);
        // 832 total over 16 nodes = fair share 52; 800 needs > 8 partitions,
        // clamped to the maximum.
        assert_eq!(plans[0].partitions, 8);
        // A generous cap yields the exact share: ceil(800 / 52) = 16.
        assert_eq!(plan_splits(&net, &key_loads, 64)[0].partitions, 16);
    }

    #[test]
    fn plan_splits_is_empty_for_spread_load() {
        let net = build(16);
        let mut key_loads = BTreeMap::new();
        for i in 0..160 {
            key_loads.insert(Id::hash_key(&format!("uniform-{i}")), 3u64);
        }
        assert!(plan_splits(&net, &key_loads, 8).is_empty());
        assert!(plan_splits(&net, &BTreeMap::new(), 8).is_empty());
    }

    #[test]
    fn plan_splits_orders_heaviest_first() {
        let net = build(8);
        let mut key_loads = BTreeMap::new();
        key_loads.insert(Id::hash_key("hot-a"), 400u64);
        key_loads.insert(Id::hash_key("hot-b"), 900u64);
        for i in 0..16 {
            key_loads.insert(Id::hash_key(&format!("light-{i}")), 2u64);
        }
        let plans = plan_splits(&net, &key_loads, 16);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].key, Id::hash_key("hot-b"));
        assert_eq!(plans[1].key, Id::hash_key("hot-a"));
        assert!(plans[0].partitions >= plans[1].partitions);
    }
}
