//! Interned key identities: a canonical key string paired with its ring
//! identifier, hashed exactly once.
//!
//! The RJoin hot path used to re-derive the canonical string of an index key
//! and re-run SHA-1 over it at every layer (publication, placement, delivery,
//! per-node storage). A [`HashedKey`] computes the ring [`Id`] once at
//! construction and then travels through messages and node state as a cheap
//! `Arc<str>` clone, so every downstream consumer can key its maps by the
//! precomputed 64-bit ring identifier instead of the string.
//!
//! Ring identifiers are SHA-1 prefixes and therefore already uniformly
//! distributed, so maps keyed by them do not need SipHash on top: the
//! [`RingHasher`] build hasher passes the `u64` through (with a cheap
//! avalanche step for safety against accidental structure) and [`RingMap`] /
//! [`RingSet`] are the corresponding container aliases.

use crate::id::Id;
use serde::json::{JsonError, JsonValue};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// A canonical index-key string together with its ring identifier.
///
/// Construction hashes the string once ([`Id::hash_key`]); cloning is an
/// `Arc` reference bump. Equality compares the text (so distinct keys are
/// distinct even under a — cosmically unlikely — 64-bit digest collision),
/// while hashing uses the precomputed ring identifier, which is consistent
/// because equal texts always produce equal identifiers.
#[derive(Debug, Clone)]
pub struct HashedKey {
    text: Arc<str>,
    id: Id,
}

impl HashedKey {
    /// Interns `text`, hashing it onto the identifier ring exactly once.
    pub fn new(text: impl Into<Arc<str>>) -> Self {
        let text = text.into();
        let id = Id::hash_key(&text);
        HashedKey { text, id }
    }

    /// The canonical key string.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// The interned string, shareable without copying.
    pub fn text(&self) -> &Arc<str> {
        &self.text
    }

    /// The precomputed ring identifier `Hash(text)`.
    pub fn id(&self) -> Id {
        self.id
    }

    /// The ring identifier as a raw `u64`, the map key used throughout the
    /// hot path.
    pub fn ring(&self) -> u64 {
        self.id.0
    }
}

impl PartialEq for HashedKey {
    fn eq(&self, other: &Self) -> bool {
        // Fast path on the digest; fall back to the text so behaviour is
        // correct even under digest collisions.
        self.id == other.id && self.text == other.text
    }
}

impl Eq for HashedKey {}

impl std::hash::Hash for HashedKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Equal texts imply equal ids, so hashing the id alone is consistent
        // with `Eq` — and free, because the id was computed at construction.
        state.write_u64(self.id.0);
    }
}

impl PartialOrd for HashedKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HashedKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.text.cmp(&other.text)
    }
}

impl fmt::Display for HashedKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for HashedKey {
    fn from(s: &str) -> Self {
        HashedKey::new(s)
    }
}

impl From<String> for HashedKey {
    fn from(s: String) -> Self {
        HashedKey::new(s)
    }
}

// Serialized as the bare canonical string; the ring identifier is re-derived
// on deserialization, so the wire format carries no redundancy.
impl Serialize for HashedKey {
    fn serialize_json(&self) -> JsonValue {
        JsonValue::Str(self.text.to_string())
    }
}

impl Deserialize for HashedKey {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Str(s) => Ok(HashedKey::new(s.as_str())),
            other => Err(JsonError::expected("string", other)),
        }
    }
}

/// A hasher for keys that are already uniformly distributed ring
/// identifiers (SHA-1 prefixes): instead of running SipHash over 8 bytes it
/// applies one cheap 64-bit avalanche round, which preserves the uniformity
/// of the digest while still decorrelating accidental arithmetic structure.
#[derive(Debug, Clone, Copy, Default)]
pub struct RingHasher {
    state: u64,
}

impl Hasher for RingHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic path (used e.g. when a tuple of keys is hashed): fold the
        // bytes in 8-byte chunks through the same mix.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, i: u64) {
        // splitmix64 finalizer: full avalanche in three shifts and two
        // multiplies — far cheaper than SipHash for a single word.
        let mut z = self.state ^ i;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.state = z ^ (z >> 31);
    }
}

/// `BuildHasher` for [`RingHasher`]-backed maps.
pub type RingBuildHasher = BuildHasherDefault<RingHasher>;

/// A hash map keyed by `u64` ring identifiers.
pub type RingMap<V> = HashMap<u64, V, RingBuildHasher>;

/// A hash set of `u64` ring identifiers.
pub type RingSet = HashSet<u64, RingBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{BuildHasher, Hash};

    #[test]
    fn hashed_key_matches_hash_key() {
        let k = HashedKey::new("R+A+i:7");
        assert_eq!(k.id(), Id::hash_key("R+A+i:7"));
        assert_eq!(k.ring(), Id::hash_key("R+A+i:7").0);
        assert_eq!(k.as_str(), "R+A+i:7");
        assert_eq!(k.to_string(), "R+A+i:7");
    }

    #[test]
    fn clones_share_the_interned_text() {
        let k = HashedKey::new("R+A");
        let c = k.clone();
        assert!(Arc::ptr_eq(k.text(), c.text()));
        assert_eq!(k, c);
    }

    #[test]
    fn equality_and_std_hash_are_consistent() {
        let a = HashedKey::new("R+A");
        let b = HashedKey::from("R+A".to_string());
        let c = HashedKey::from("R+B");
        assert_eq!(a, b);
        assert_ne!(a, c);

        let hash = |k: &HashedKey| {
            let mut h = DefaultHasher::new();
            k.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn ordering_follows_the_text() {
        let mut keys = [HashedKey::new("S+B"), HashedKey::new("R+A")];
        keys.sort();
        assert_eq!(keys[0].as_str(), "R+A");
    }

    #[test]
    fn serde_round_trips_through_the_string_form() {
        let k = HashedKey::new("R+A+s:x");
        let v = k.serialize_json();
        let back = HashedKey::deserialize_json(&v).unwrap();
        assert_eq!(back, k);
        assert_eq!(back.id(), k.id());
        assert!(HashedKey::deserialize_json(&JsonValue::Int(3)).is_err());
    }

    #[test]
    fn ring_map_stores_and_finds_by_ring_id() {
        let mut m: RingMap<&str> = RingMap::default();
        let k = HashedKey::new("R+A");
        m.insert(k.ring(), "hello");
        assert_eq!(m.get(&k.ring()), Some(&"hello"));
        assert_eq!(m.get(&HashedKey::new("S+B").ring()), None);
    }

    #[test]
    fn ring_hasher_avalanches_single_words() {
        let b = RingBuildHasher::default();
        let h1 = b.hash_one(1u64);
        let h2 = b.hash_one(2u64);
        assert_ne!(h1, h2);
        // Deterministic across builders (no per-instance randomness).
        assert_eq!(h1, RingBuildHasher::default().hash_one(1u64));
    }
}
