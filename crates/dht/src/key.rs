//! Interned key identities: a canonical key string paired with its ring
//! identifier, hashed exactly once.
//!
//! The RJoin hot path used to re-derive the canonical string of an index key
//! and re-run SHA-1 over it at every layer (publication, placement, delivery,
//! per-node storage). A [`HashedKey`] computes the ring [`Id`] once at
//! construction and then travels through messages and node state as a cheap
//! `Arc<str>` clone, so every downstream consumer can key its maps by the
//! precomputed 64-bit ring identifier instead of the string.
//!
//! # Partitioned keys (hot-key splitting)
//!
//! A single hot key is a point mass on the identifier circle: no identifier
//! movement can divide it, because all of its load lands on whichever node
//! owns that one identifier. Share-based partitioning (Afrati, Ullman &
//! Vasilakopoulos) splits such a key into `s` deterministic **sub-keys**:
//! [`HashedKey::split_part`] derives partition `p` of `s` by salting the
//! partition coordinates into the base ring identifier, so the `s` sub-keys
//! scatter uniformly over the ring while all sharing the interned canonical
//! text. Tuples indexed under the hot key are routed to exactly one sub-key
//! and queries are registered at all `s` of them; the base identifier stays
//! recoverable via [`HashedKey::base_ring`] so telemetry can aggregate the
//! partitions back into one logical key.
//!
//! Ring identifiers are SHA-1 prefixes and therefore already uniformly
//! distributed, so maps keyed by them do not need SipHash on top: the
//! [`RingHasher`] build hasher passes the `u64` through (with a cheap
//! avalanche step for safety against accidental structure) and [`RingMap`] /
//! [`RingSet`] are the corresponding container aliases.

use crate::id::Id;
use serde::json::{JsonError, JsonValue};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// Upper bound on the per-thread intern table of [`HashedKey::intern`]. The
/// key universe of a workload is small (relations × attributes × observed
/// values), so the cap exists only as a backstop against adversarial key
/// churn; when it is hit the table is cleared and re-fills.
const INTERN_CAPACITY: usize = 1 << 16;

/// FNV-1a over the key bytes: the intern table's probe hashes the full key
/// string on every call, so the default SipHash (designed for DoS resistance
/// the table does not need — it is per-thread, capped and cleared on
/// overflow) would dominate the probe cost for the short canonical key
/// strings the hot path uses.
#[derive(Default)]
pub struct StrHasher(u64);

impl Hasher for StrHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut hash = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = hash;
    }

    fn write_u8(&mut self, b: u8) {
        // `str` hashing appends a length-prefix terminator byte; fold it in
        // like any other byte.
        self.write(&[b]);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

thread_local! {
    /// Per-thread memo of canonical key text → ring identifier, so repeated
    /// hashes of the same key skip both the SHA-1 digest and the `Arc<str>`
    /// allocation. Thread-local (rather than shared) keeps the lookup
    /// lock-free under the sharded runtime's worker threads.
    static INTERN_TABLE: RefCell<HashMap<Arc<str>, Id, BuildHasherDefault<StrHasher>>> =
        RefCell::new(HashMap::default());
}

/// A canonical index-key string together with its ring identifier.
///
/// Construction hashes the string once ([`Id::hash_key`]); cloning is an
/// `Arc` reference bump. Equality compares the text (so distinct keys are
/// distinct even under a — cosmically unlikely — 64-bit digest collision),
/// while hashing uses the precomputed ring identifier, which is consistent
/// because equal texts always produce equal identifiers.
#[derive(Debug, Clone)]
pub struct HashedKey {
    text: Arc<str>,
    id: Id,
    /// Partition coordinates `(p, s)` for sub-keys of a split hot key
    /// (`p < s`, `s >= 2`); `None` for ordinary unsplit keys. The partition
    /// is salted into `id`, so two sub-keys of one base key have distinct
    /// ring identifiers and distinct storage buckets.
    partition: Option<(u32, u32)>,
}

/// Mixes a partition coordinate pair into a base ring identifier. One
/// splitmix-style avalanche round over the packed `(p, s)` word keeps the
/// sub-key identifiers uniform on the ring (partition 0 is *not* the base
/// identifier: the base key retires entirely once split).
fn salt_partition(base: u64, part: u32, parts: u32) -> u64 {
    let packed = ((parts as u64) << 32) | part as u64;
    mix64(base ^ packed.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The splitmix64 finalizer: full 64-bit avalanche in three shifts and two
/// multiplies. The one mixing primitive shared by [`RingHasher`], the
/// partition salt and `rjoin-core`'s partition hashes.
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl HashedKey {
    /// Interns `text`, hashing it onto the identifier ring exactly once.
    pub fn new(text: impl Into<Arc<str>>) -> Self {
        let text = text.into();
        let id = Id::hash_key(&text);
        HashedKey { text, id, partition: None }
    }

    /// Like [`HashedKey::new`], but memoized through a per-thread intern
    /// table: repeated calls with the same text reuse both the cached ring
    /// identifier (skipping SHA-1) and the cached `Arc<str>` (skipping the
    /// allocation). The hot path derives the same handful of canonical key
    /// strings once per tuple per layer, so this turns the dominant digest
    /// cost into a hash-map probe.
    pub fn intern(text: &str) -> Self {
        INTERN_TABLE.with(|table| {
            let mut table = table.borrow_mut();
            if let Some((cached, id)) = table.get_key_value(text) {
                return HashedKey { text: Arc::clone(cached), id: *id, partition: None };
            }
            if table.len() >= INTERN_CAPACITY {
                table.clear();
            }
            let text: Arc<str> = Arc::from(text);
            let id = Id::hash_key(&text);
            table.insert(Arc::clone(&text), id);
            HashedKey { text, id, partition: None }
        })
    }

    /// The canonical key string.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// The interned string, shareable without copying.
    pub fn text(&self) -> &Arc<str> {
        &self.text
    }

    /// The precomputed ring identifier: `Hash(text)` for unsplit keys, the
    /// partition-salted identifier for sub-keys of a split hot key.
    pub fn id(&self) -> Id {
        self.id
    }

    /// The ring identifier as a raw `u64`, the map key used throughout the
    /// hot path.
    pub fn ring(&self) -> u64 {
        self.id.0
    }

    /// Sub-key `part` of `parts` of this key: same interned text, ring
    /// identifier salted with the partition coordinates. Splitting an
    /// already-split key re-partitions from the base identifier (partitions
    /// do not nest).
    ///
    /// # Panics
    /// Panics unless `parts >= 2` and `part < parts`.
    pub fn split_part(&self, part: u32, parts: u32) -> HashedKey {
        assert!(parts >= 2, "a split needs at least two partitions");
        assert!(part < parts, "partition index out of range");
        let base = self.base_ring();
        HashedKey {
            text: Arc::clone(&self.text),
            id: Id(salt_partition(base, part, parts)),
            partition: Some((part, parts)),
        }
    }

    /// The partition coordinates `(p, s)` of a sub-key, `None` for unsplit
    /// keys.
    pub fn partition(&self) -> Option<(u32, u32)> {
        self.partition
    }

    /// The ring identifier of the *unsplit* base key — `ring()` for
    /// ordinary keys, the pre-salt identifier for sub-keys. This is the
    /// aggregation key that folds all partitions of one logical hot key
    /// back together (telemetry, split-map lookups).
    pub fn base_ring(&self) -> u64 {
        match self.partition {
            None => self.id.0,
            Some(_) => Id::hash_key(&self.text).0,
        }
    }
}

impl PartialEq for HashedKey {
    fn eq(&self, other: &Self) -> bool {
        // Fast path on the digest; fall back to the text (and the partition
        // coordinates) so behaviour is correct even under digest collisions.
        self.id == other.id && self.partition == other.partition && self.text == other.text
    }
}

impl Eq for HashedKey {}

impl std::hash::Hash for HashedKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Equal texts imply equal ids, so hashing the id alone is consistent
        // with `Eq` — and free, because the id was computed at construction.
        state.write_u64(self.id.0);
    }
}

impl PartialOrd for HashedKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HashedKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.text.cmp(&other.text).then_with(|| self.partition.cmp(&other.partition))
    }
}

impl fmt::Display for HashedKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)?;
        if let Some((part, parts)) = self.partition {
            write!(f, "[{part}/{parts}]")?;
        }
        Ok(())
    }
}

impl From<&str> for HashedKey {
    fn from(s: &str) -> Self {
        HashedKey::new(s)
    }
}

impl From<String> for HashedKey {
    fn from(s: String) -> Self {
        HashedKey::new(s)
    }
}

/// ASCII unit separator: joins the canonical text and the partition suffix
/// in the serialized form. The canonical key grammar (`Rel+Attr[+value]`)
/// never produces control characters, so the split form is unambiguous.
const PARTITION_SEP: char = '\u{1f}';

// Serialized as the bare canonical string (with a `\u{1f}p/s` suffix for
// sub-keys of a split hot key); the ring identifier is re-derived on
// deserialization, so the wire format carries no redundancy.
impl Serialize for HashedKey {
    fn serialize_json(&self) -> JsonValue {
        match self.partition {
            None => JsonValue::Str(self.text.to_string()),
            Some((part, parts)) => {
                JsonValue::Str(format!("{}{PARTITION_SEP}{part}/{parts}", self.text))
            }
        }
    }
}

impl Deserialize for HashedKey {
    fn deserialize_json(v: &JsonValue) -> Result<Self, JsonError> {
        match v {
            JsonValue::Str(s) => match s.split_once(PARTITION_SEP) {
                None => Ok(HashedKey::new(s.as_str())),
                Some((text, coords)) => {
                    let parsed = coords
                        .split_once('/')
                        .and_then(|(p, n)| Some((p.parse().ok()?, n.parse().ok()?)))
                        .filter(|&(p, n): &(u32, u32)| n >= 2 && p < n);
                    match parsed {
                        Some((part, parts)) => Ok(HashedKey::new(text).split_part(part, parts)),
                        None => Err(JsonError::expected("key partition suffix", v)),
                    }
                }
            },
            other => Err(JsonError::expected("string", other)),
        }
    }
}

/// A hasher for keys that are already uniformly distributed ring
/// identifiers (SHA-1 prefixes): instead of running SipHash over 8 bytes it
/// applies one cheap 64-bit avalanche round, which preserves the uniformity
/// of the digest while still decorrelating accidental arithmetic structure.
#[derive(Debug, Clone, Copy, Default)]
pub struct RingHasher {
    state: u64,
}

impl Hasher for RingHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic path (used e.g. when a tuple of keys is hashed): fold the
        // bytes in 8-byte chunks through the same mix.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, i: u64) {
        // splitmix64 finalizer: far cheaper than SipHash for a single word.
        self.state = mix64(self.state ^ i);
    }
}

/// `BuildHasher` for [`RingHasher`]-backed maps.
pub type RingBuildHasher = BuildHasherDefault<RingHasher>;

/// A hash map keyed by `u64` ring identifiers.
pub type RingMap<V> = HashMap<u64, V, RingBuildHasher>;

/// A hash set of `u64` ring identifiers.
pub type RingSet = HashSet<u64, RingBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{BuildHasher, Hash};

    #[test]
    fn hashed_key_matches_hash_key() {
        let k = HashedKey::new("R+A+i:7");
        assert_eq!(k.id(), Id::hash_key("R+A+i:7"));
        assert_eq!(k.ring(), Id::hash_key("R+A+i:7").0);
        assert_eq!(k.as_str(), "R+A+i:7");
        assert_eq!(k.to_string(), "R+A+i:7");
    }

    #[test]
    fn clones_share_the_interned_text() {
        let k = HashedKey::new("R+A");
        let c = k.clone();
        assert!(Arc::ptr_eq(k.text(), c.text()));
        assert_eq!(k, c);
    }

    #[test]
    fn equality_and_std_hash_are_consistent() {
        let a = HashedKey::new("R+A");
        let b = HashedKey::from("R+A".to_string());
        let c = HashedKey::from("R+B");
        assert_eq!(a, b);
        assert_ne!(a, c);

        let hash = |k: &HashedKey| {
            let mut h = DefaultHasher::new();
            k.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn ordering_follows_the_text() {
        let mut keys = [HashedKey::new("S+B"), HashedKey::new("R+A")];
        keys.sort();
        assert_eq!(keys[0].as_str(), "R+A");
    }

    #[test]
    fn serde_round_trips_through_the_string_form() {
        let k = HashedKey::new("R+A+s:x");
        let v = k.serialize_json();
        let back = HashedKey::deserialize_json(&v).unwrap();
        assert_eq!(back, k);
        assert_eq!(back.id(), k.id());
        assert!(HashedKey::deserialize_json(&JsonValue::Int(3)).is_err());
    }

    #[test]
    fn split_parts_share_text_but_scatter_ring_ids() {
        let base = HashedKey::new("R+A");
        let parts: Vec<HashedKey> = (0..4).map(|p| base.split_part(p, 4)).collect();
        for (p, key) in parts.iter().enumerate() {
            assert!(Arc::ptr_eq(base.text(), key.text()), "sub-keys share the interned text");
            assert_eq!(key.partition(), Some((p as u32, 4)));
            assert_eq!(key.base_ring(), base.ring());
            assert_ne!(key.ring(), base.ring(), "partition salt must move the identifier");
            assert_ne!(*key, base);
        }
        // All sub-key identifiers are pairwise distinct.
        let mut rings: Vec<u64> = parts.iter().map(HashedKey::ring).collect();
        rings.sort_unstable();
        rings.dedup();
        assert_eq!(rings.len(), 4);
        // Deterministic: the same coordinates always give the same sub-key.
        assert_eq!(base.split_part(2, 4), parts[2]);
        // Different partition counts are different splits.
        assert_ne!(base.split_part(0, 2).ring(), base.split_part(0, 4).ring());
        // Re-splitting a sub-key re-partitions from the base, not the salt.
        assert_eq!(parts[1].split_part(3, 8), base.split_part(3, 8));
    }

    #[test]
    fn split_part_display_shows_coordinates() {
        let k = HashedKey::new("R+A").split_part(1, 3);
        assert_eq!(k.to_string(), "R+A[1/3]");
        assert_eq!(k.as_str(), "R+A");
    }

    #[test]
    #[should_panic(expected = "partition index out of range")]
    fn split_part_rejects_out_of_range_partitions() {
        let _ = HashedKey::new("R+A").split_part(3, 3);
    }

    #[test]
    fn serde_round_trips_partitioned_keys() {
        let k = HashedKey::new("R+A+i:7").split_part(2, 5);
        let v = k.serialize_json();
        let back = HashedKey::deserialize_json(&v).unwrap();
        assert_eq!(back, k);
        assert_eq!(back.ring(), k.ring());
        assert_eq!(back.partition(), Some((2, 5)));
        // A malformed partition suffix is rejected, not silently dropped.
        let bad = JsonValue::Str(format!("R+A{}9/2", '\u{1f}'));
        assert!(HashedKey::deserialize_json(&bad).is_err());
    }

    #[test]
    fn ring_map_stores_and_finds_by_ring_id() {
        let mut m: RingMap<&str> = RingMap::default();
        let k = HashedKey::new("R+A");
        m.insert(k.ring(), "hello");
        assert_eq!(m.get(&k.ring()), Some(&"hello"));
        assert_eq!(m.get(&HashedKey::new("S+B").ring()), None);
    }

    #[test]
    fn ring_hasher_avalanches_single_words() {
        let b = RingBuildHasher::default();
        let h1 = b.hash_one(1u64);
        let h2 = b.hash_one(2u64);
        assert_ne!(h1, h2);
        // Deterministic across builders (no per-instance randomness).
        assert_eq!(h1, RingBuildHasher::default().hash_one(1u64));
    }
}
