//! Per-node Chord routing state.

use crate::{Id, ID_BITS};
use serde::{Deserialize, Serialize};

/// Length of the successor list each node maintains for fault tolerance.
///
/// The Chord paper recommends `O(log N)` entries; 8 is ample for the
/// 10^3-node networks used in the RJoin experiments.
pub const SUCCESSOR_LIST_LEN: usize = 8;

/// The finger table of a Chord node: entry `k` points to
/// `Successor(n + 2^k)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FingerTable {
    entries: Vec<Option<Id>>,
}

impl FingerTable {
    /// Creates an empty finger table with [`ID_BITS`] entries.
    pub fn new() -> Self {
        FingerTable { entries: vec![None; ID_BITS as usize] }
    }

    /// Number of entries (always [`ID_BITS`]).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no finger has been set yet.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(Option::is_none)
    }

    /// The `k`-th finger, if known.
    pub fn get(&self, k: usize) -> Option<Id> {
        self.entries.get(k).copied().flatten()
    }

    /// Sets the `k`-th finger.
    pub fn set(&mut self, k: usize, target: Option<Id>) {
        if k < self.entries.len() {
            self.entries[k] = target;
        }
    }

    /// Removes every finger pointing at `dead` (used when a node failure is
    /// detected).
    pub fn clear_references_to(&mut self, dead: Id) {
        for entry in &mut self.entries {
            if *entry == Some(dead) {
                *entry = None;
            }
        }
    }

    /// Iterates over the set fingers from the *highest* index down, which is
    /// the order `closest_preceding_finger` scans them.
    pub fn iter_desc(&self) -> impl Iterator<Item = (usize, Id)> + '_ {
        self.entries.iter().enumerate().rev().filter_map(|(k, entry)| entry.map(|id| (k, id)))
    }
}

impl Default for FingerTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Routing state of a single Chord node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChordNode {
    /// The node's identifier (its position on the ring).
    id: Id,
    /// Immediate successors, closest first. The first entry is *the*
    /// successor used for ownership decisions.
    successors: Vec<Id>,
    /// The predecessor, if known.
    predecessor: Option<Id>,
    /// The finger table.
    fingers: FingerTable,
    /// Index of the next finger to refresh in `fix_fingers` (round-robin, as
    /// in the Chord paper's periodic maintenance).
    next_finger: u32,
}

impl ChordNode {
    /// Creates a node that only knows about itself (a one-node ring).
    pub fn new(id: Id) -> Self {
        ChordNode {
            id,
            successors: vec![id],
            predecessor: None,
            fingers: FingerTable::new(),
            next_finger: 0,
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> Id {
        self.id
    }

    /// The node's current successor (itself on a one-node ring).
    pub fn successor(&self) -> Id {
        self.successors.first().copied().unwrap_or(self.id)
    }

    /// The full successor list, closest first.
    pub fn successor_list(&self) -> &[Id] {
        &self.successors
    }

    /// The node's predecessor, if known.
    pub fn predecessor(&self) -> Option<Id> {
        self.predecessor
    }

    /// Sets the predecessor pointer.
    pub fn set_predecessor(&mut self, pred: Option<Id>) {
        self.predecessor = pred;
    }

    /// Replaces the successor list (keeps at most [`SUCCESSOR_LIST_LEN`]
    /// entries and always keeps the list non-empty by falling back to the
    /// node itself).
    pub fn set_successors(&mut self, mut successors: Vec<Id>) {
        successors.dedup();
        successors.truncate(SUCCESSOR_LIST_LEN);
        if successors.is_empty() {
            successors.push(self.id);
        }
        self.successors = successors;
    }

    /// Removes a failed node from the successor list and predecessor/finger
    /// pointers.
    pub fn forget(&mut self, dead: Id) {
        self.successors.retain(|s| *s != dead);
        if self.successors.is_empty() {
            self.successors.push(self.id);
        }
        if self.predecessor == Some(dead) {
            self.predecessor = None;
        }
        self.fingers.clear_references_to(dead);
    }

    /// Read access to the finger table.
    pub fn fingers(&self) -> &FingerTable {
        &self.fingers
    }

    /// Write access to the finger table.
    pub fn fingers_mut(&mut self) -> &mut FingerTable {
        &mut self.fingers
    }

    /// Index of the next finger to refresh; advances round-robin.
    pub fn take_next_finger(&mut self) -> u32 {
        let k = self.next_finger;
        self.next_finger = (self.next_finger + 1) % ID_BITS;
        k
    }

    /// The closest node preceding `key` among this node's fingers and
    /// successor, per the Chord routing rule. Returns `None` if no known
    /// node strictly precedes `key` (the caller then falls back to the
    /// successor).
    pub fn closest_preceding_node(&self, key: Id) -> Option<Id> {
        self.closest_preceding_live_node(key, |_| true)
    }

    /// Like [`closest_preceding_node`](Self::closest_preceding_node) but
    /// skips candidates rejected by `alive` (used by read-only lookups that
    /// must route around dead pointers without repairing them).
    pub fn closest_preceding_live_node(
        &self,
        key: Id,
        mut alive: impl FnMut(Id) -> bool,
    ) -> Option<Id> {
        for (_, finger) in self.fingers.iter_desc() {
            if finger.in_open_interval(self.id, key) && alive(finger) {
                return Some(finger);
            }
        }
        // Also consider the successor list: right after a join or failure
        // the finger table may not mention the immediate successor yet.
        for s in &self.successors {
            if s.in_open_interval(self.id, key) && alive(*s) {
                return Some(*s);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_node_is_its_own_successor() {
        let n = ChordNode::new(Id(42));
        assert_eq!(n.successor(), Id(42));
        assert_eq!(n.predecessor(), None);
        assert!(n.fingers().is_empty());
    }

    #[test]
    fn successor_list_is_bounded_and_non_empty() {
        let mut n = ChordNode::new(Id(1));
        n.set_successors((0..20).map(Id).collect());
        assert_eq!(n.successor_list().len(), SUCCESSOR_LIST_LEN);
        n.set_successors(vec![]);
        assert_eq!(n.successor_list(), &[Id(1)]);
    }

    #[test]
    fn forget_removes_dead_node_everywhere() {
        let mut n = ChordNode::new(Id(1));
        n.set_successors(vec![Id(5), Id(9)]);
        n.set_predecessor(Some(Id(5)));
        n.fingers_mut().set(3, Some(Id(5)));
        n.forget(Id(5));
        assert_eq!(n.successor(), Id(9));
        assert_eq!(n.predecessor(), None);
        assert_eq!(n.fingers().get(3), None);
    }

    #[test]
    fn forget_last_successor_falls_back_to_self() {
        let mut n = ChordNode::new(Id(1));
        n.set_successors(vec![Id(5)]);
        n.forget(Id(5));
        assert_eq!(n.successor(), Id(1));
    }

    #[test]
    fn closest_preceding_node_prefers_far_fingers() {
        let mut n = ChordNode::new(Id(0));
        n.set_successors(vec![Id(10)]);
        n.fingers_mut().set(3, Some(Id(10)));
        n.fingers_mut().set(10, Some(Id(1000)));
        // Looking up key 2000: finger 1000 precedes it and is the closest.
        assert_eq!(n.closest_preceding_node(Id(2000)), Some(Id(1000)));
        // Looking up key 500: only finger 10 precedes it.
        assert_eq!(n.closest_preceding_node(Id(500)), Some(Id(10)));
        // Looking up key 5: nothing precedes it.
        assert_eq!(n.closest_preceding_node(Id(5)), None);
    }

    #[test]
    fn next_finger_round_robin() {
        let mut n = ChordNode::new(Id(0));
        assert_eq!(n.take_next_finger(), 0);
        assert_eq!(n.take_next_finger(), 1);
        for _ in 2..ID_BITS {
            n.take_next_finger();
        }
        assert_eq!(n.take_next_finger(), 0);
    }

    #[test]
    fn finger_table_iter_desc_orders_high_to_low() {
        let mut ft = FingerTable::new();
        ft.set(2, Some(Id(4)));
        ft.set(60, Some(Id(9)));
        let collected: Vec<(usize, Id)> = ft.iter_desc().collect();
        assert_eq!(collected, vec![(60, Id(9)), (2, Id(4))]);
        assert_eq!(ft.len(), ID_BITS as usize);
        assert!(!ft.is_empty());
    }
}
