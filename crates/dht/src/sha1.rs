//! A from-scratch SHA-1 implementation.
//!
//! Chord derives node and key identifiers by hashing keys with a
//! cryptographic hash function such as SHA-1 (Section 2 of the RJoin paper).
//! To keep the dependency footprint to the allowed crates we implement SHA-1
//! here; it is validated against the FIPS 180-1 test vectors. SHA-1 is used
//! purely for identifier placement (uniformity), not for security.

/// Output size of SHA-1 in bytes.
pub const DIGEST_LEN: usize = 20;

/// Streaming SHA-1 hasher.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    length: u64,
    buffer: [u8; 64],
    buffered: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a new hasher with the standard initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0],
            length: 0,
            buffer: [0u8; 64],
            buffered: 0,
        }
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut input = data;
        // Fill a partially filled buffer first.
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffered = 0;
            }
        }
        // Process full blocks directly from the input.
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut buf = [0u8; 64];
            buf.copy_from_slice(block);
            self.process_block(&buf);
            input = rest;
        }
        // Stash the remainder.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Finishes the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.length.wrapping_mul(8);
        // Append the 0x80 terminator.
        self.update(&[0x80]);
        // NB: update() above also bumped self.length, but the final length
        // field must describe the original message only, so we captured it
        // before padding.
        while self.buffered != 56 {
            self.update(&[0x00]);
        }
        // Append the message length in bits, big-endian, without going
        // through update()'s length accounting (the value is already fixed).
        let mut block = [0u8; 64];
        block[..56].copy_from_slice(&self.buffer[..56]);
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        self.process_block(&block);

        let mut digest = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            digest[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        digest
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &word) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(word);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut hasher = Sha1::new();
    hasher.update(data);
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8; DIGEST_LEN]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn empty_message() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let mut hasher = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            hasher.update(&chunk);
        }
        assert_eq!(hex(&hasher.finalize()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog, repeatedly and at length";
        let one_shot = sha1(data);
        // Feed in awkward chunk sizes to exercise buffering paths.
        for chunk_size in [1, 3, 7, 13, 63, 64, 65] {
            let mut hasher = Sha1::new();
            for chunk in data.chunks(chunk_size) {
                hasher.update(chunk);
            }
            assert_eq!(hasher.finalize(), one_shot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn messages_around_block_boundary() {
        // Lengths 55..=66 exercise the padding edge cases: the digest must be
        // stable under chunked feeding and distinct across lengths.
        let mut digests = Vec::new();
        for len in 55usize..=66 {
            let data = vec![b'x'; len];
            let one_shot = sha1(&data);
            let mut hasher = Sha1::new();
            for chunk in data.chunks(5) {
                hasher.update(chunk);
            }
            assert_eq!(hasher.finalize(), one_shot, "length {len}");
            digests.push(one_shot);
        }
        digests.sort();
        digests.dedup();
        assert_eq!(digests.len(), 12, "digests for different lengths must differ");
    }
}
