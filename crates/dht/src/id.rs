//! Identifiers on the Chord ring.

use crate::sha1::sha1;
use crate::ID_BITS;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 64-bit identifier on the Chord ring.
///
/// Node identifiers and item (key) identifiers share the same space; an item
/// with identifier `k` is owned by `Successor(k)`, the first node whose
/// identifier is equal to or follows `k` clockwise (Section 2 of the paper).
///
/// Identifiers are produced by hashing textual keys with SHA-1 and keeping
/// the first 8 bytes (big-endian). With 10^3 nodes and ~10^5 distinct keys,
/// the collision probability in a 2^64 space is negligible, so the
/// truncation preserves the behaviour the paper relies on.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Id(pub u64);

impl Id {
    /// Hashes a textual key onto the identifier ring.
    pub fn hash_key(key: &str) -> Id {
        let digest = sha1(key.as_bytes());
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&digest[..8]);
        Id(u64::from_be_bytes(bytes))
    }

    /// Hashes arbitrary bytes onto the identifier ring.
    pub fn hash_bytes(data: &[u8]) -> Id {
        let digest = sha1(data);
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&digest[..8]);
        Id(u64::from_be_bytes(bytes))
    }

    /// The identifier `self + 2^k (mod 2^m)`, i.e. the start of the `k`-th
    /// finger interval.
    pub fn finger_start(&self, k: u32) -> Id {
        debug_assert!(k < ID_BITS);
        Id(self.0.wrapping_add(1u64 << k))
    }

    /// Clockwise distance from `self` to `other` on the ring.
    pub fn distance_to(&self, other: Id) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// Whether `self` lies in the *open* interval `(from, to)` on the ring
    /// (clockwise). The interval wraps around zero when `to <= from`; the
    /// degenerate interval `(x, x)` denotes the whole ring minus `x`.
    pub fn in_open_interval(&self, from: Id, to: Id) -> bool {
        if from == to {
            return *self != from;
        }
        from.distance_to(*self) > 0 && from.distance_to(*self) < from.distance_to(to)
    }

    /// Whether `self` lies in the half-open interval `(from, to]` on the
    /// ring (clockwise). The degenerate interval `(x, x]` denotes the whole
    /// ring (every identifier is a successor candidate when a single node is
    /// present).
    pub fn in_open_closed_interval(&self, from: Id, to: Id) -> bool {
        if from == to {
            return true;
        }
        from.distance_to(*self) > 0 && from.distance_to(*self) <= from.distance_to(to)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl From<u64> for Id {
    fn from(v: u64) -> Self {
        Id(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spread() {
        let a = Id::hash_key("R+A");
        let b = Id::hash_key("R+A");
        let c = Id::hash_key("R+B");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hash_bytes_matches_hash_key_for_utf8() {
        assert_eq!(Id::hash_key("abc"), Id::hash_bytes(b"abc"));
    }

    #[test]
    fn finger_start_wraps() {
        let id = Id(u64::MAX);
        assert_eq!(id.finger_start(0), Id(0));
        assert_eq!(Id(0).finger_start(3), Id(8));
    }

    #[test]
    fn distance_is_clockwise() {
        assert_eq!(Id(10).distance_to(Id(15)), 5);
        assert_eq!(Id(15).distance_to(Id(10)), u64::MAX - 4);
        assert_eq!(Id(7).distance_to(Id(7)), 0);
    }

    #[test]
    fn open_interval_without_wrap() {
        assert!(Id(5).in_open_interval(Id(1), Id(10)));
        assert!(!Id(1).in_open_interval(Id(1), Id(10)));
        assert!(!Id(10).in_open_interval(Id(1), Id(10)));
        assert!(!Id(11).in_open_interval(Id(1), Id(10)));
    }

    #[test]
    fn open_interval_with_wrap() {
        // Interval (u64::MAX - 5, 5) wraps through zero.
        let from = Id(u64::MAX - 5);
        let to = Id(5);
        assert!(Id(0).in_open_interval(from, to));
        assert!(Id(u64::MAX).in_open_interval(from, to));
        assert!(!Id(6).in_open_interval(from, to));
        assert!(!Id(u64::MAX - 5).in_open_interval(from, to));
    }

    #[test]
    fn open_closed_interval_contains_upper_bound() {
        assert!(Id(10).in_open_closed_interval(Id(1), Id(10)));
        assert!(!Id(1).in_open_closed_interval(Id(1), Id(10)));
        assert!(Id(2).in_open_closed_interval(Id(1), Id(10)));
        assert!(!Id(11).in_open_closed_interval(Id(1), Id(10)));
    }

    #[test]
    fn degenerate_intervals() {
        // (x, x) is the whole ring minus x; (x, x] is the whole ring.
        assert!(Id(3).in_open_interval(Id(7), Id(7)));
        assert!(!Id(7).in_open_interval(Id(7), Id(7)));
        assert!(Id(7).in_open_closed_interval(Id(7), Id(7)));
        assert!(Id(3).in_open_closed_interval(Id(7), Id(7)));
    }

    #[test]
    fn display_is_fixed_width_hex() {
        assert_eq!(Id(0xff).to_string(), "00000000000000ff");
    }
}
